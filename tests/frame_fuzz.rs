//! Fuzz-style property tests for the wire frame codec.
//!
//! The framing layer (`oat::net::frame`) is the outermost parser of every
//! byte that arrives off a socket — from peers, clients, or strangers. Its
//! contract under hostile input is narrow and absolute: `read_frame`
//! returns `Ok` or `Err`, it never panics, and a frame that round-trips
//! through `write_frame` decodes to exactly what was written. These
//! properties drive random payloads, truncations, bit flips, and raw
//! garbage through the codec to pin that contract.
//!
//! (Runs on the vendored offline `proptest` subset: no shrinking, but
//! deterministic per-test seeds, so any failure reproduces with plain
//! `cargo test`.)

use std::io;

use oat::net::frame::{
    decode_batch, encode_batch, is_clean_close, read_frame, write_frame, TAG_ACK, TAG_REQ_BATCH,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// An arbitrary frame: any tag, payload up to 512 bytes.
fn frame_strategy() -> impl Strategy<Value = (u8, Vec<u8>)> {
    (0u8..=255, vec(any::<u8>(), 0..=512))
}

/// An arbitrary batch: up to 12 items, each any tag with up to 128
/// payload bytes (batch members are client request/response frames,
/// which are small).
fn batch_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    vec((0u8..=255, vec(any::<u8>(), 0..=128)), 0..=12)
}

/// Encodes `(tag, payload)` with the real writer.
fn encode(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, tag, payload).expect("small frame always encodes");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_is_identity((tag, payload) in frame_strategy()) {
        let buf = encode(tag, &payload);
        prop_assert_eq!(buf.len(), 5 + payload.len(), "header is [u32 len][u8 tag]");
        let mut r = &buf[..];
        let (got_tag, got_payload) = read_frame(&mut r).expect("valid frame decodes");
        prop_assert_eq!(got_tag, tag);
        prop_assert_eq!(got_payload, payload);
        prop_assert!(r.is_empty(), "decoder consumes exactly one frame");
    }

    #[test]
    fn every_truncation_errs_and_never_panics(
        (tag, payload) in frame_strategy(),
        cut in any::<usize>(),
    ) {
        // Every proper prefix of a valid frame is an error — either a
        // truncated header or a short body — and is always UnexpectedEof,
        // which the node runtime treats as a dead connection.
        let buf = encode(tag, &payload);
        let cut = cut % buf.len(); // strictly shorter than the frame
        let mut r = &buf[..cut];
        let err = read_frame(&mut r).expect_err("truncated frame must not decode");
        prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {}", cut);
        prop_assert!(is_clean_close(&err));
    }

    #[test]
    fn oversized_length_headers_are_rejected_without_allocating(
        extra in 0u32..=u32::MAX - (64 << 20) - 1,
        junk in vec(any::<u8>(), 0..=64),
    ) {
        // A length field beyond MAX_FRAME (64 MiB) is InvalidData up
        // front; the decoder must not trust it and try to allocate or
        // read that many bytes.
        let len = (64u32 << 20) + 1 + extra;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&junk);
        let err = read_frame(&mut &buf[..]).expect_err("oversized frame must not decode");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData, "len = {}", len);
    }

    #[test]
    fn bit_flips_never_panic_and_corrupt_lengths_err(
        (tag, payload) in frame_strategy(),
        bit in any::<usize>(),
    ) {
        // Flip one bit anywhere in the encoded frame. The decoder must
        // return *something* without panicking; flips that land in the
        // length field either still describe a plausible frame (handled
        // as truncation/garbage) or are rejected as InvalidData.
        let mut buf = encode(tag, &payload);
        let bit = bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        let flipped_length_field = bit < 32;
        match read_frame(&mut &buf[..]) {
            // A payload/tag flip decodes to a same-length frame with the
            // corrupted bytes — framing itself cannot detect that, the
            // typed payload decoders above it do. (A *length* flip may
            // legitimately decode a shorter frame out of the same bytes.)
            Ok((_, body)) => prop_assert!(
                flipped_length_field || body.len() == payload.len(),
                "payload/tag flip changed the frame length"
            ),
            Err(e) => prop_assert!(
                matches!(e.kind(), io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData),
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in vec(any::<u8>(), 0..=256)) {
        // Raw noise straight off a socket: decode as many frames as the
        // bytes happen to spell out, then hit a clean error. Nothing in
        // this loop may panic, and progress must be monotone.
        let mut r = &bytes[..];
        loop {
            let before = r.len();
            match read_frame(&mut r) {
                Ok((_, body)) => {
                    prop_assert_eq!(before - r.len(), 5 + body.len());
                }
                Err(e) => {
                    prop_assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                        ),
                        "unexpected error kind {:?}",
                        e.kind()
                    );
                    break;
                }
            }
        }
    }

    #[test]
    fn back_to_back_frames_with_a_torn_tail(
        frames in vec(frame_strategy(), 1..=6),
        cut in any::<usize>(),
    ) {
        // A buffer of whole frames followed by a torn final frame: every
        // whole frame decodes intact, the tail errs, nothing panics.
        // This is exactly what a killed connection leaves in a reader.
        let mut buf = Vec::new();
        for (tag, payload) in &frames {
            buf.extend_from_slice(&encode(*tag, payload));
        }
        let (last_tag, last_payload) = &frames[frames.len() - 1];
        let tail = encode(*last_tag, last_payload);
        let keep = cut % tail.len();
        buf.extend_from_slice(&tail[..keep]);

        let mut r = &buf[..];
        for (i, (tag, payload)) in frames.iter().enumerate() {
            let (got_tag, got_payload) = read_frame(&mut r)
                .unwrap_or_else(|e| panic!("whole frame {i} failed to decode: {e}"));
            prop_assert_eq!(got_tag, *tag);
            prop_assert_eq!(&got_payload, payload);
        }
        let err = read_frame(&mut r).expect_err("torn tail must not decode");
        prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn batch_roundtrip_is_identity(items in batch_strategy()) {
        // A batch payload rides inside an ordinary frame: encode the
        // items, wrap, unwrap with the real reader, decode — and get
        // back exactly what went in, in order.
        let payload = encode_batch(&items);
        let buf = encode(TAG_REQ_BATCH, &payload);
        let mut r = &buf[..];
        let (tag, body) = read_frame(&mut r).expect("valid frame decodes");
        prop_assert_eq!(tag, TAG_REQ_BATCH);
        prop_assert!(r.is_empty());
        let got = decode_batch(&body).expect("valid batch decodes");
        prop_assert_eq!(got, items);
    }

    #[test]
    fn truncated_batch_payloads_err_and_never_panic(
        items in batch_strategy(),
        cut in any::<usize>(),
    ) {
        // Every proper prefix of a valid batch payload is InvalidData:
        // the declared count demands all items and the decoder demands
        // exact consumption, so no truncation can sneak through as a
        // shorter-but-valid batch.
        let payload = encode_batch(&items);
        let cut = cut % payload.len(); // count field makes len >= 4
        let err = decode_batch(&payload[..cut]).expect_err("truncated batch must not decode");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {}", cut);
    }

    #[test]
    fn batch_trailing_garbage_is_rejected(
        items in batch_strategy(),
        junk in vec(any::<u8>(), 1..=32),
    ) {
        // A batch frame must be exactly self-describing — bytes beyond
        // the final declared item are a protocol violation, not slack.
        let mut payload = encode_batch(&items);
        payload.extend_from_slice(&junk);
        let err = decode_batch(&payload).expect_err("trailing bytes must not decode");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn batch_bit_flips_never_panic(items in batch_strategy(), bit in any::<usize>()) {
        // Flip one bit anywhere in the encoded batch. The decoder must
        // return without panicking; if the flipped bytes still spell a
        // self-consistent batch, decoding is canonical (re-encoding
        // reproduces the flipped bytes exactly).
        let mut payload = encode_batch(&items);
        let bit = bit % (payload.len() * 8);
        payload[bit / 8] ^= 1 << (bit % 8);
        match decode_batch(&payload) {
            Ok(got) => prop_assert_eq!(encode_batch(&got), payload),
            Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData),
        }
    }

    #[test]
    fn random_garbage_batch_payloads_never_panic(bytes in vec(any::<u8>(), 0..=256)) {
        // Raw noise handed to the batch decoder: a declared count in
        // the billions must not cause an allocation — the decoder errs
        // on the first missing item instead — and any accidental Ok is
        // canonical.
        match decode_batch(&bytes) {
            Ok(items) => prop_assert_eq!(encode_batch(&items), bytes),
            Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData),
        }
    }
}

#[test]
fn writer_refuses_frames_beyond_max_frame() {
    // write_frame's own guard: a payload that would overflow the length
    // budget is refused before any bytes hit the stream.
    let huge = vec![0u8; 64 << 20]; // body = 1 (tag) + 64 MiB > MAX_FRAME
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, TAG_ACK, &huge).expect_err("oversized write must fail");
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    assert!(
        sink.is_empty(),
        "nothing may be written for a rejected frame"
    );
}
