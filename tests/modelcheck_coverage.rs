//! Model-checking coverage beyond RWW/SUM: every policy and several
//! operators, exhaustively, on small instances. The guarantees under
//! test (invariants in quiescent states, completion, causal consistency
//! in terminal states) are claimed for *any* lease-based algorithm and
//! *any* commutative-monoid operator — so the checker should never find
//! a counterexample regardless of the policy/operator pairing.

use oat::core::agg_ext::BitsetUnion;
use oat::core::policy::random::RandomBreakSpec;
use oat::modelcheck::{check_all_interleavings, Limits};
use oat::prelude::*;
use oat_core::request::Request;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn script_sum() -> Vec<Request<i64>> {
    vec![
        Request::combine(n(0)),
        Request::write(n(1), 5),
        Request::combine(n(2)),
        Request::write(n(0), 3),
        Request::combine(n(1)),
    ]
}

#[test]
fn all_policies_verify_on_path3() {
    let tree = Tree::path(3);
    let script = script_sum();
    let limits = Limits::default();

    check_all_interleavings(&tree, SumI64, &RwwSpec, &script, limits).expect("RWW");
    check_all_interleavings(&tree, SumI64, &AbSpec::new(1, 1), &script, limits).expect("(1,1)");
    check_all_interleavings(&tree, SumI64, &AbSpec::new(2, 3), &script, limits).expect("(2,3)");
    check_all_interleavings(&tree, SumI64, &AlwaysLeaseSpec, &script, limits).expect("AlwaysLease");
    check_all_interleavings(&tree, SumI64, &NeverLeaseSpec, &script, limits).expect("NeverLease");
    check_all_interleavings(&tree, SumI64, &RandomBreakSpec::new(2, 9), &script, limits)
        .expect("RandomBreak");
}

#[test]
fn min_operator_verifies_exhaustively() {
    let tree = Tree::path(3);
    let script = vec![
        Request::combine(n(0)),
        Request::write(n(1), -5),
        Request::write(n(2), 7),
        Request::combine(n(2)),
    ];
    check_all_interleavings(&tree, MinI64, &RwwSpec, &script, Limits::default())
        .expect("MIN under all interleavings");
}

#[test]
fn bitset_operator_verifies_exhaustively() {
    let tree = Tree::star(4);
    let script = vec![
        Request::write(n(1), BitsetUnion::singleton(1)),
        Request::combine(n(2)),
        Request::write(n(3), BitsetUnion::singleton(3)),
        Request::combine(n(1)),
    ];
    check_all_interleavings(&tree, BitsetUnion, &RwwSpec, &script, Limits::default())
        .expect("set-union under all interleavings");
}

#[test]
fn policies_explore_different_state_spaces() {
    // Sanity on the checker itself: different policies genuinely produce
    // different reachable spaces (it isn't short-circuiting).
    let tree = Tree::path(3);
    let script = script_sum();
    let rww = check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits::default()).unwrap();
    let never = check_all_interleavings(&tree, SumI64, &NeverLeaseSpec, &script, Limits::default())
        .unwrap();
    assert_ne!(
        rww.distinct_states, never.distinct_states,
        "RWW (leases) and NeverLease (no leases) must differ"
    );
    assert!(never.distinct_states > 10);
}
