//! Structural lease properties on the real mechanism:
//!
//! * Corollary 4.1 — RWW is a `(1,2)`-algorithm: on every edge, one
//!   combine (from the right side) sets the lease, two consecutive writes
//!   break it,
//! * Lemma 4.4 — `F_RWW(u,v) > 0 ⟺ u.granted[v]` in every quiescent
//!   state,
//! * Lemma 3.3 — a combine's cost is exactly `2·|A|` where `A` is the set
//!   of missing-lease nodes toward the requester,
//! * Lemma 3.5 — a write's cost is the number of nodes reachable in the
//!   lease graph (plus any releases RWW triggers).

use oat::prelude::*;
use oat::sim::{invariants, Engine, Schedule};
use oat_core::request::{sigma, EdgeEvent, ReqOp, Request};
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Replays `seq` and, in each quiescent state, compares every edge's
/// granted bit with the F_RWW configuration derived from the projected
/// history so far (Lemma 4.4 / Corollary 4.1).
fn check_f_rww_tracks_grants(tree: &Tree, seq: &[Request<i64>]) {
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    for i in 0..seq.len() {
        match &seq[i].op {
            ReqOp::Write(v) => {
                eng.initiate_write(seq[i].node, *v);
            }
            ReqOp::Combine => {
                eng.initiate_combine(seq[i].node);
            }
        }
        eng.run_to_quiescence();
        let prefix = &seq[..=i];
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            // F from the projected prefix.
            let mut f = 0u8;
            for ev in sigma(tree, prefix, u, v) {
                f = match (f, ev) {
                    (_, EdgeEvent::R) => 2,
                    (0, EdgeEvent::W) => 0,
                    (x, EdgeEvent::W) => x - 1,
                    (x, EdgeEvent::N) => x,
                };
            }
            let granted = eng.node(u).granted(tree.nbr_index(u, v).unwrap());
            assert_eq!(
                f > 0,
                granted,
                "Lemma 4.4 violated at pair ({u},{v}) after request {i}"
            );
        }
    }
}

#[test]
fn lemma_4_4_on_fixed_trees() {
    let tree = Tree::kary(7, 2);
    let seq = oat::workloads::uniform(&tree, 120, 0.5, 31);
    check_f_rww_tracks_grants(&tree, &seq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lemma_4_4_on_random_trees(nn in 2usize..10, tseed in any::<u64>(), wseed in any::<u64>()) {
        let tree = oat::workloads::random_tree(nn, tseed);
        let seq = oat::workloads::uniform(&tree, 60, 0.5, wseed);
        check_f_rww_tracks_grants(&tree, &seq);
    }
}

#[test]
fn combine_cost_is_twice_the_missing_lease_frontier() {
    // Lemma 3.3: executing a combine at u sends |A| probes and |A|
    // responses, where A = nodes v whose grant toward u is down.
    let tree = Tree::kary(10, 3);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    let seq = oat::workloads::uniform(&tree, 80, 0.5, 5);
    for q in &seq {
        match &q.op {
            ReqOp::Write(v) => {
                eng.initiate_write(q.node, *v);
                eng.run_to_quiescence();
            }
            ReqOp::Combine => {
                // Compute A in the current quiescent state.
                let u = q.node;
                let a_size = tree
                    .nodes()
                    .filter(|&v| {
                        v != u && {
                            let w = tree.u_parent(u, v); // u-parent of v
                            !eng.node(v).granted(tree.nbr_index(v, w).unwrap())
                        }
                    })
                    .count() as u64;
                let before = eng.stats().total();
                eng.initiate_combine(u);
                eng.run_to_quiescence();
                assert_eq!(
                    eng.stats().total() - before,
                    2 * a_size,
                    "combine at {u}: cost must be 2|A|"
                );
            }
        }
    }
}

#[test]
fn write_cost_is_lease_graph_reachability_plus_releases() {
    // Lemma 3.5: a write at u sends |A| updates, A = reachable set from u
    // in the lease graph; RWW may add releases on second writes.
    let tree = Tree::path(6);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    // Build leases toward node 5.
    eng.initiate_combine(n(5));
    eng.run_to_quiescence();

    // First write at 0: updates flow 0->..->5 (5 updates), no releases.
    let before = eng.stats().total();
    eng.initiate_write(n(0), 1);
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total() - before, 5);

    // Second write: 5 updates + 5 cascading releases.
    let before = eng.stats().total();
    eng.initiate_write(n(0), 2);
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total() - before, 10);

    // Third write: lease graph empty, free.
    let before = eng.stats().total();
    eng.initiate_write(n(0), 3);
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total() - before, 0);
    invariants::check_all(&eng, &SumI64).unwrap();
    invariants::check_rww_i4(&eng).unwrap();
}

#[test]
fn corollary_4_1_single_combine_sets_two_writes_break() {
    // Directly on a random tree: pick an edge, drive combines from one
    // side and writes from the other.
    let tree = oat::workloads::random_tree(9, 77);
    let (u, v) = tree.dir_edges().next().unwrap();
    // Find a node on u's side and one on v's side.
    let u_side = tree.nodes().find(|&x| tree.in_subtree(u, v, x)).unwrap();
    let v_side = tree.nodes().find(|&x| tree.in_subtree(v, u, x)).unwrap();
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    let gi = tree.nbr_index(u, v).unwrap();

    assert!(!eng.node(u).granted(gi));
    // One combine on v's side sets u.granted[v].
    eng.initiate_combine(v_side);
    eng.run_to_quiescence();
    assert!(eng.node(u).granted(gi), "a = 1");
    // One write on u's side keeps it.
    eng.initiate_write(u_side, 1);
    eng.run_to_quiescence();
    assert!(eng.node(u).granted(gi), "first write tolerated");
    // A second consecutive write breaks it.
    eng.initiate_write(u_side, 2);
    eng.run_to_quiescence();
    assert!(!eng.node(u).granted(gi), "b = 2");
}

#[test]
fn ab_mechanism_matches_analytic_automaton_for_a_equals_1() {
    // For a = 1 the distributed (a,b) policy and the per-edge analytic
    // automaton coincide; verify total costs agree across b.
    for b in 1..=4u32 {
        let tree = oat::workloads::random_tree(8, b as u64);
        let seq = oat::workloads::uniform(&tree, 120, 0.5, 1000 + b as u64);
        let spec = AbSpec::new(1, b);
        let sim = oat::sim::run_sequential(&tree, SumI64, &spec, Schedule::Fifo, &seq, false);
        let analytic = oat::offline::replay::ab_total_cost(&tree, &seq, 1, b);
        assert_eq!(
            sim.total_msgs(),
            analytic,
            "(1,{b}) mechanism vs automaton divergence"
        );
    }
}
