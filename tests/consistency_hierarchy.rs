//! The consistency hierarchy on the real mechanism:
//!
//! ```text
//! strict  ⟹  sequential  ⟹  causal
//! ```
//!
//! * Sequential executions are strictly consistent (Lemma 3.12), hence
//!   also sequentially and causally consistent — verified.
//! * Concurrent executions remain causally consistent (Theorem 4) but
//!   are **not** sequentially consistent in general: this file builds
//!   the separating execution deterministically — two readers on
//!   opposite ends of a path observe two independent writes in opposite
//!   orders (the classic IRIW pattern) — and shows the SC checker
//!   rejects it while the causal checker accepts it. That separation is
//!   exactly why Section 5 of the paper targets causal consistency.

use oat::consistency::{check_causal, check_sequentially_consistent, own_histories};
use oat::prelude::*;
use oat::sim::{Engine, Schedule};
use oat_core::ghost::GhostReq;
use oat_core::mechanism::CombineOutcome;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn logs_of(eng: &Engine<RwwSpec, SumI64>) -> Vec<Vec<GhostReq<i64>>> {
    eng.tree()
        .nodes()
        .map(|u| eng.node(u).ghost().unwrap().log.clone())
        .collect()
}

#[test]
fn sequential_executions_are_sequentially_consistent() {
    for seed in 0..6u64 {
        let tree = oat::workloads::random_tree(8, seed);
        let seq = oat::workloads::uniform(&tree, 40, 0.5, seed + 100);
        let res = oat::sim::run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, true);
        let logs = logs_of(&res.engine);
        let histories = own_histories(&logs);
        assert!(
            check_sequentially_consistent(&SumI64, &histories).is_some(),
            "seed {seed}: a strictly consistent run must be SC"
        );
        check_causal(&SumI64, &logs).expect("and causal");
    }
}

/// Builds the IRIW separation on a 4-node path 0-1-2-3:
/// writers at the ends (0, 3), readers in the middle (1, 2).
fn build_iriw() -> Engine<RwwSpec, SumI64> {
    let tree = Tree::path(4);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, true);

    // Phase 1 (sequential): combines at both readers lay bidirectional
    // leases over the middle, and grants from both writers.
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    eng.initiate_combine(n(2));
    eng.run_to_quiescence();
    assert!(eng.is_quiescent());

    // Phase 2 (concurrent): both writers write; their updates race
    // through the middle.
    eng.initiate_write(n(0), 1); // w_a: update 0->1 queued
    eng.initiate_write(n(3), 2); // w_b: update 3->2 queued

    // Deliver w_a to reader 1 only, then let reader 1 combine: it has
    // seen a but not b.
    let d = eng.deliver_from(n(0), n(1)).expect("w_a in flight");
    assert_eq!(d.kind, oat::core::message::MsgKind::Update);
    match eng.initiate_combine(n(1)) {
        CombineOutcome::Done(v) => assert_eq!(v, 1, "reader 1 sees only w_a"),
        o => panic!("reader 1 should answer locally, got {o:?}"),
    }

    // Deliver w_b to reader 2 only, then reader 2 combines: b not a.
    let d = eng.deliver_from(n(3), n(2)).expect("w_b in flight");
    assert_eq!(d.kind, oat::core::message::MsgKind::Update);
    match eng.initiate_combine(n(2)) {
        CombineOutcome::Done(v) => assert_eq!(v, 2, "reader 2 sees only w_b"),
        o => panic!("reader 2 should answer locally, got {o:?}"),
    }

    // Drain everything else.
    eng.run_to_quiescence();
    assert!(eng.is_quiescent());
    eng
}

#[test]
fn concurrent_execution_separates_sequential_from_causal() {
    let eng = build_iriw();
    let logs = logs_of(&eng);

    // Causally consistent (Theorem 4)…
    check_causal(&SumI64, &logs).expect("Theorem 4 holds");

    // …but NOT sequentially consistent: reader 1 returned 1 (a before
    // b), reader 2 returned 2 (b before a) — no total order serves both.
    let histories = own_histories(&logs);
    assert!(
        check_sequentially_consistent(&SumI64, &histories).is_none(),
        "the IRIW execution must not be sequentially consistent: {histories:?}"
    );
}

#[test]
fn the_separation_needs_the_race_not_the_topology() {
    // The same requests executed sequentially are SC — the failure above
    // is about overlap, not about the tree or the policy.
    let tree = Tree::path(4);
    let seq = vec![
        oat_core::request::Request::combine(n(1)),
        oat_core::request::Request::combine(n(2)),
        oat_core::request::Request::write(n(0), 1),
        oat_core::request::Request::write(n(3), 2),
        oat_core::request::Request::combine(n(1)),
        oat_core::request::Request::combine(n(2)),
    ];
    let res = oat::sim::run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, true);
    let histories = own_histories(&logs_of(&res.engine));
    assert!(check_sequentially_consistent(&SumI64, &histories).is_some());
}

#[test]
fn sc_checker_agrees_with_strict_on_random_concurrent_runs() {
    // Sampled concurrent runs: causal always holds; SC holds iff a
    // witness exists — and whenever every combine matched the oracle at
    // completion (zero strict misses), SC must hold too.
    let tree = Tree::path(5);
    let mut sc_failures = 0;
    for seed in 0..20u64 {
        let seq = oat::workloads::uniform(&tree, 24, 0.5, seed);
        let res = oat::sim::concurrent::run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.7);
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        check_causal(&SumI64, &logs).expect("causal always");
        let histories = own_histories(&logs);
        let sc = check_sequentially_consistent(&SumI64, &histories);
        if res.strict_misses() == 0 {
            assert!(sc.is_some(), "seed {seed}: strict-clean run must be SC");
        }
        if sc.is_none() {
            sc_failures += 1;
        }
    }
    // Not a theorem, but with heavy overlap some run should break SC;
    // if none does the separation test above still covers the claim.
    println!("SC failures over 20 sampled runs: {sc_failures}");
}
