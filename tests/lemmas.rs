//! Executable forms of the paper's structural lemmas, checked directly
//! against recorded message traces and ghost logs — not just their
//! aggregate consequences.
//!
//! * **Lemma 3.3** — a combine at `u` sends exactly `|A|` probes and
//!   `|A|` responses, where `A` is the set of nodes whose grant toward
//!   `u` is missing; each `v ∈ A` receives its probe from the
//!   *u*-parent of `v`; no updates or releases flow.
//! * **Lemma 3.5** — a write at `u` sends exactly `|A|` updates, where
//!   `A` is the set reachable from `u` in the lease graph; each
//!   `v ∈ A` receives its update from the *u*-parent of `v`; no probes
//!   or responses flow (releases may, for RWW's second write).
//! * **Lemmas 3.6/3.7** — `granted` rises only with a `response` and
//!   falls only with a `release`.
//! * **Lemmas 5.1/5.2 (consequence)** — piggy-backed write-logs are
//!   prefixes of the sender's, so every node learns any origin's writes
//!   in order and without gaps.

use oat::prelude::*;
use oat::sim::invariants::lease_graph;
use oat::sim::trace::{record_sequential, TraceEvent};
use oat::sim::{Engine, Schedule};
use oat_core::message::MsgKind;
use oat_core::request::{ReqOp, Request};

/// Drives `seq` one request at a time; before each request, captures the
/// quiescent lease state, then validates the per-request trace against
/// the appropriate lemma.
fn check_lemmas_on(tree: &Tree, seq: &[Request<i64>]) {
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    for q in seq {
        // Pre-state: granted bits per directed edge.
        let granted = |u: NodeId, v: NodeId, e: &Engine<RwwSpec, SumI64>| {
            e.node(u).granted(tree.nbr_index(u, v).unwrap())
        };
        let pre_lease_graph = lease_graph(&eng);
        // The missing-grant set A for a combine at q.node (Lemma 3.3).
        let a_combine: Vec<NodeId> = tree
            .nodes()
            .filter(|&v| v != q.node && !granted(v, tree.u_parent(q.node, v), &eng))
            .collect();
        // The lease-graph-reachable set A for a write at q.node
        // (Lemma 3.5): nodes v ≠ u with every edge on the path from u
        // to v granted in the u→v direction.
        let a_write: Vec<NodeId> = tree
            .nodes()
            .filter(|&v| {
                v != q.node && {
                    let path = tree.path_between(q.node, v);
                    path.windows(2)
                        .all(|w| pre_lease_graph.contains(&(w[0], w[1])))
                }
            })
            .collect();

        let trace = record_sequential(&mut eng, std::slice::from_ref(q));

        // Collect per-kind receivers with senders.
        let mut probes = Vec::new();
        let mut responses = 0usize;
        let mut updates = Vec::new();
        for e in &trace.events {
            if let TraceEvent::Deliver { from, to, kind, .. } = e {
                match kind {
                    MsgKind::Probe => probes.push((*from, *to)),
                    MsgKind::Response => responses += 1,
                    MsgKind::Update => updates.push((*from, *to)),
                    MsgKind::Release => {}
                }
            }
        }

        match q.op {
            ReqOp::Combine => {
                // (1) |A| probes; each v in A probed by its u-parent.
                assert_eq!(probes.len(), a_combine.len(), "Lemma 3.3(1) count");
                for &v in &a_combine {
                    let parent = tree.u_parent(q.node, v);
                    assert!(
                        probes.contains(&(parent, v)),
                        "Lemma 3.3(1): {v} must be probed by its {}-parent {parent}",
                        q.node
                    );
                }
                // (2) |A| responses; (3) no updates (releases can't
                // occur in a combine either for RWW).
                assert_eq!(responses, a_combine.len(), "Lemma 3.3(2)");
                assert!(updates.is_empty(), "Lemma 3.3(3): no updates");
                assert_eq!(trace.count(MsgKind::Release), 0, "Lemma 3.3(3)");
            }
            ReqOp::Write(_) => {
                // (1)/(2) |A| updates along u-parent edges.
                assert_eq!(updates.len(), a_write.len(), "Lemma 3.5(2) count");
                for &v in &a_write {
                    let parent = tree.u_parent(q.node, v);
                    assert!(
                        updates.contains(&(parent, v)),
                        "Lemma 3.5(1): {v} must get its update from {parent}"
                    );
                }
                // (3) no probes or responses.
                assert!(probes.is_empty(), "Lemma 3.5(3)");
                assert_eq!(responses, 0, "Lemma 3.5(3)");
            }
        }
    }
}

#[test]
fn lemma_3_3_and_3_5_on_fixed_trees() {
    for tree in [Tree::path(7), Tree::star(7), Tree::kary(10, 3)] {
        let seq = oat::workloads::uniform(&tree, 80, 0.5, 11);
        check_lemmas_on(&tree, &seq);
    }
}

#[test]
fn lemma_3_3_and_3_5_on_random_trees() {
    for seed in 0..6u64 {
        let tree = oat::workloads::random_tree(9, seed);
        let seq = oat::workloads::uniform(&tree, 60, 0.5, seed ^ 0xbeef);
        check_lemmas_on(&tree, &seq);
    }
}

#[test]
fn lemmas_3_6_and_3_7_grant_changes_only_with_response_and_release() {
    // Track every granted-bit change across deliveries; a rise must
    // coincide with a response sent by the rising node, a fall with a
    // release received by it.
    let tree = oat::workloads::random_tree(8, 5);
    let seq = oat::workloads::uniform(&tree, 80, 0.5, 21);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    let snapshot = |e: &Engine<RwwSpec, SumI64>| -> Vec<bool> {
        tree.dir_edges()
            .map(|(u, v)| e.node(u).granted(tree.nbr_index(u, v).unwrap()))
            .collect()
    };
    let edges: Vec<_> = tree.dir_edges().collect();
    let mut prev = snapshot(&eng);
    for q in &seq {
        match &q.op {
            ReqOp::Write(v) => eng.initiate_write(q.node, *v),
            ReqOp::Combine => {
                eng.initiate_combine(q.node);
            }
        };
        // The initiation itself cannot change any granted bit (grants
        // happen in sendresponse, falls in T6 — both message handlers).
        let after_init = snapshot(&eng);
        assert_eq!(prev, after_init, "initiation changed a granted bit");
        while let Some(d) = eng.deliver_next() {
            let now = snapshot(&eng);
            for (i, (&a, &b)) in prev.iter().zip(&now).enumerate() {
                if a == b {
                    continue;
                }
                let (u, _v) = edges[i];
                if b {
                    // Rise: u just sent a response => u processed a probe
                    // or a response-completing delivery.
                    assert_eq!(d.node, u, "Lemma 3.6: grant rose at {u} without it acting");
                    assert!(
                        matches!(d.kind, MsgKind::Probe | MsgKind::Response),
                        "Lemma 3.6: grant rose on a {:?}",
                        d.kind
                    );
                } else {
                    // Fall: u just received a release.
                    assert_eq!(d.node, u, "Lemma 3.7: fall at {u} without delivery");
                    assert_eq!(d.kind, MsgKind::Release, "Lemma 3.7");
                }
            }
            prev = now;
        }
        prev = snapshot(&eng);
    }
}

#[test]
fn lemma_5_1_5_2_consequence_ordered_gapless_write_knowledge() {
    // Concurrent executions with ghost logs: every node's knowledge of
    // any origin's writes is a prefix (in order, no gaps) of that
    // origin's write sequence.
    let tree = oat::workloads::random_tree(10, 3);
    for seed in 0..10u64 {
        let seq = oat::workloads::uniform(&tree, 100, 0.5, seed);
        let res = oat::sim::concurrent::run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.8);
        // Global per-origin write order (by index).
        let mut origin_writes: Vec<Vec<u32>> = vec![Vec::new(); tree.len()];
        for u in tree.nodes() {
            let log = &res.engine.node(u).ghost().unwrap().log;
            for e in log {
                if let Some(w) = e.as_write() {
                    if w.node == u {
                        origin_writes[u.idx()].push(w.index);
                    }
                }
            }
        }
        for u in tree.nodes() {
            let log = &res.engine.node(u).ghost().unwrap().log;
            let mut seen: Vec<Vec<u32>> = vec![Vec::new(); tree.len()];
            for e in log {
                if let Some(w) = e.as_write() {
                    seen[w.node.idx()].push(w.index);
                }
            }
            for x in tree.nodes() {
                let know = &seen[x.idx()];
                let truth = &origin_writes[x.idx()];
                assert!(
                    know.len() <= truth.len(),
                    "{u} knows more writes of {x} than exist"
                );
                assert_eq!(
                    know[..],
                    truth[..know.len()],
                    "{u}'s view of {x}'s writes is not an ordered prefix (seed {seed})"
                );
            }
        }
    }
}
