//! Golden trace: the exact protocol choreography of the canonical R·W·W
//! lifecycle on a 3-node path, pinned message for message. Any change to
//! the mechanism's send order, message selection, or lease decisions
//! shows up here first — the finest-grained regression guard in the
//! suite.

use oat::prelude::*;
use oat::sim::trace::record_sequential;
use oat::sim::{Engine, Schedule};
use oat_core::request::Request;

#[test]
fn rww_lifecycle_trace_is_stable() {
    let tree = Tree::path(3);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
    let seq = [
        Request::write(NodeId(2), 7),  // silent
        Request::combine(NodeId(0)),   // probe out, leases back
        Request::combine(NodeId(0)),   // free
        Request::write(NodeId(2), 8),  // one update cascade
        Request::write(NodeId(2), 9),  // updates + releases
        Request::write(NodeId(2), 10), // silent again
        Request::combine(NodeId(2)),   // free: n2 reads its own side? no —
                                       // needs the other side: probes flow
    ];
    let trace = record_sequential(&mut eng, &seq);
    let expected = "\
[0] write at n2
[1] combine at n0
  n0 -> n1: probe
    n1 -> n2: probe
      n2 -> n1: response
        n1 -> n0: response
    => n0 returns 7
[2] combine at n0
    => n0 returns 7
[3] write at n2
  n2 -> n1: update
    n1 -> n0: update
[4] write at n2
  n2 -> n1: update
    n1 -> n0: update
      n0 -> n1: release
        n1 -> n2: release
[5] write at n2
[6] combine at n2
  n2 -> n1: probe
    n1 -> n0: probe
      n0 -> n1: response
        n1 -> n2: response
    => n2 returns 10
";
    assert_eq!(trace.render(), expected);
}
