//! Theorems 1–3 end-to-end on the real simulator.
//!
//! * Theorem 1: `C_RWW(σ) ≤ 5/2 · C_OPT(σ)` on every workload we can
//!   generate, with the adversarial sequence achieving equality.
//! * Theorem 2: per ordered pair, `C_RWW(σ,u,v) ≤ 5 · epochs + O(1)`
//!   (the structure behind the factor-5 bound against nice algorithms).
//! * Theorem 3: every `(a,b)`-algorithm suffers ≥ 5/2 on its adversary.
//! * Lemma 4.5 / Lemma 3.9: analytic per-pair replay equals the
//!   simulator's per-edge message accounting, pair by pair.

use oat::offline::adversary::{adv_sequence, adv_tree};
use oat::offline::nopt::{epoch_count, rww_epoch_bound};
use oat::offline::ratio::{measure_policy, measure_rww};
use oat::offline::replay::{ab_total_cost, rww_pair_cost};
use oat::offline::{opt_total_cost, RatioReport};
use oat::prelude::*;
use oat::sim::{run_sequential, Schedule};
use oat_core::request::sigma;
use proptest::prelude::*;

fn workloads_for(tree: &Tree, seed: u64) -> Vec<(String, Vec<oat_core::request::Request<i64>>)> {
    vec![
        (
            "uniform 30% writes".into(),
            oat::workloads::uniform(tree, 300, 0.3, seed),
        ),
        (
            "uniform 70% writes".into(),
            oat::workloads::uniform(tree, 300, 0.7, seed ^ 1),
        ),
        (
            "hotspot".into(),
            oat::workloads::hotspot(
                tree,
                300,
                0.5,
                2.min(tree.len()),
                2.min(tree.len()),
                seed ^ 2,
            ),
        ),
        (
            "phases".into(),
            oat::workloads::phases(tree, &[(150, 0.1), (150, 0.9)], seed ^ 3),
        ),
    ]
}

#[test]
fn theorem1_holds_across_topologies_and_workloads() {
    let topologies: Vec<(&str, Tree)> = vec![
        ("pair", Tree::pair()),
        ("path16", Tree::path(16)),
        ("star16", Tree::star(16)),
        ("kary31", Tree::kary(31, 3)),
        ("random24", oat::workloads::random_tree(24, 11)),
        ("caterpillar", oat::workloads::caterpillar(6, 3)),
    ];
    for (tname, tree) in topologies {
        for (wname, seq) in workloads_for(&tree, 99) {
            let rep: RatioReport = measure_rww(&tree, &seq);
            assert_eq!(
                rep.analytic_cost,
                Some(rep.online_cost),
                "analytic/simulated divergence on {tname}/{wname}"
            );
            if let Some(ratio) = rep.ratio_vs_opt() {
                assert!(
                    ratio <= 2.5 + 1e-9,
                    "Theorem 1 violated on {tname}/{wname}: {ratio}"
                );
            }
        }
    }
}

#[test]
fn theorem1_is_tight_on_the_adversary() {
    let tree = adv_tree();
    let seq = adv_sequence(1, 2, 1000);
    let rep = measure_rww(&tree, &seq);
    let ratio = rep.ratio_vs_opt().unwrap();
    assert!((ratio - 2.5).abs() < 5e-3, "tightness: got {ratio}");
}

#[test]
fn theorem2_epoch_structure_per_pair() {
    for seed in 0..6u64 {
        let tree = oat::workloads::random_tree(14, seed);
        let seq = oat::workloads::uniform(&tree, 400, 0.5, seed ^ 7);
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let events = sigma(&tree, &seq, u, v);
            let epochs = epoch_count(&events);
            let cost = res.engine.stats().pair_cost(&tree, u, v);
            assert!(
                cost <= rww_epoch_bound(epochs),
                "pair ({u},{v}): cost {cost} > 5·{epochs}+5"
            );
        }
    }
}

#[test]
fn theorem3_every_ab_algorithm_at_least_5_over_2() {
    let tree = adv_tree();
    for a in 1..=3u32 {
        for b in 1..=5u32 {
            let seq = adv_sequence(a, b, 400);
            let alg = ab_total_cost(&tree, &seq, a, b) as f64;
            let opt = opt_total_cost(&tree, &seq) as f64;
            assert!(
                alg / opt >= 2.5 - 0.02,
                "({a},{b}) beat the lower bound: {}",
                alg / opt
            );
        }
    }
}

#[test]
fn baselines_can_be_arbitrarily_bad_but_rww_cannot() {
    // Pull-all on a read-heavy workload and push-all on a write-heavy
    // workload blow up with tree size; RWW stays within 5/2 of OPT on
    // both. This is the paper's core motivation quantified.
    let tree = Tree::star(32);
    let read_heavy = oat::workloads::uniform(&tree, 400, 0.05, 5);
    let write_heavy = oat::workloads::uniform(&tree, 400, 0.95, 6);

    let pull_rh = measure_policy(&NeverLeaseSpec, &tree, &read_heavy);
    let rww_rh = measure_rww(&tree, &read_heavy);
    assert!(
        pull_rh.ratio_vs_opt().unwrap() > 10.0,
        "pull-all should be terrible on read-heavy: {:?}",
        pull_rh.ratio_vs_opt()
    );
    assert!(rww_rh.ratio_vs_opt().unwrap() <= 2.5 + 1e-9);

    let rww_wh = measure_rww(&tree, &write_heavy);
    assert!(rww_wh.ratio_vs_opt().unwrap() <= 2.5 + 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn analytic_replay_equals_simulation_per_pair(
        n in 2usize..16,
        tseed in any::<u64>(),
        wseed in any::<u64>(),
        wf in 0.0f64..1.0,
    ) {
        let tree = oat::workloads::random_tree(n, tseed);
        let seq = oat::workloads::uniform(&tree, 100, wf, wseed);
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            prop_assert_eq!(
                rww_pair_cost(&tree, &seq, u, v),
                res.engine.stats().pair_cost(&tree, u, v),
                "pair ({},{})", u, v
            );
        }
        // Lemma 3.9: pair costs partition the total.
        let total: u64 = tree
            .dir_edges()
            .map(|(u, v)| res.engine.stats().pair_cost(&tree, u, v))
            .sum();
        prop_assert_eq!(total, res.total_msgs());
    }

    #[test]
    fn theorem1_random(n in 2usize..14, tseed in any::<u64>(), wseed in any::<u64>(), wf in 0.0f64..1.0) {
        let tree = oat::workloads::random_tree(n, tseed);
        let seq = oat::workloads::uniform(&tree, 150, wf, wseed);
        let rep = measure_rww(&tree, &seq);
        if let Some(ratio) = rep.ratio_vs_opt() {
            prop_assert!(ratio <= 2.5 + 1e-9, "ratio {}", ratio);
        } else {
            prop_assert_eq!(rep.online_cost, 0, "no OPT cost implies no online cost");
        }
    }
}
