//! Lemma 3.12 end-to-end: every lease-based algorithm is *nice* —
//! strictly consistent in sequential executions — regardless of policy,
//! topology, workload, or message delivery schedule. Quiescent-state
//! invariants (Lemmas 3.1, 3.2, 3.4, I3, I4) are checked after every run.

use oat::consistency::check_strict_sequential;
use oat::prelude::*;
use oat::sim::{invariants, run_sequential, Schedule};
use oat_core::policy::PolicySpec;
use oat_core::request::Request;
use proptest::prelude::*;

/// Strategy: a random tree (by seed) and a random request sequence.
fn tree_and_seq() -> impl Strategy<Value = (Tree, Vec<Request<i64>>)> {
    (2usize..24, any::<u64>(), 1usize..80).prop_flat_map(|(n, seed, len)| {
        let tree = oat::workloads::random_tree(n, seed);
        let nn = n as u32;
        (
            Just(tree),
            proptest::collection::vec(
                (0..nn, any::<bool>(), -100i64..100).prop_map(|(node, is_write, val)| {
                    if is_write {
                        Request::write(NodeId(node), val)
                    } else {
                        Request::combine(NodeId(node))
                    }
                }),
                len,
            ),
        )
    })
}

fn check_policy<S: PolicySpec>(
    spec: &S,
    tree: &Tree,
    seq: &[Request<i64>],
    schedule: Schedule,
) -> Result<(), TestCaseError> {
    let res = run_sequential(tree, SumI64, spec, schedule, seq, false);
    let violations = check_strict_sequential(&SumI64, tree, seq, &res.combines);
    prop_assert!(
        violations.is_empty(),
        "policy {} violated strict consistency: {violations:?}",
        spec.name()
    );
    invariants::check_all(&res.engine, &SumI64).map_err(|e| {
        TestCaseError::fail(format!("invariant violated under {}: {e}", spec.name()))
    })?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rww_is_nice((tree, seq) in tree_and_seq(), sched_seed in any::<u64>()) {
        check_policy(&RwwSpec, &tree, &seq, Schedule::Random(sched_seed))?;
        // RWW additionally maintains I4 in every quiescent state.
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        invariants::check_rww_i4(&res.engine)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn ab_policies_are_nice((tree, seq) in tree_and_seq(), a in 1u32..4, b in 1u32..4) {
        check_policy(&AbSpec::new(a, b), &tree, &seq, Schedule::Fifo)?;
    }

    #[test]
    fn baselines_are_nice((tree, seq) in tree_and_seq()) {
        check_policy(&AlwaysLeaseSpec, &tree, &seq, Schedule::Fifo)?;
        check_policy(&NeverLeaseSpec, &tree, &seq, Schedule::Fifo)?;
    }

    #[test]
    fn results_are_schedule_independent((tree, seq) in tree_and_seq(), s1 in any::<u64>(), s2 in any::<u64>()) {
        // Sequential executions are confluent: combine values and total
        // message counts do not depend on the delivery schedule.
        let a = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Random(s1), &seq, false);
        let b = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Random(s2), &seq, false);
        let c = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        prop_assert_eq!(&a.combines, &b.combines);
        prop_assert_eq!(&a.combines, &c.combines);
        prop_assert_eq!(a.total_msgs(), b.total_msgs());
        prop_assert_eq!(a.total_msgs(), c.total_msgs());
        prop_assert_eq!(&a.per_request_msgs, &c.per_request_msgs);
    }

    #[test]
    fn min_and_avg_operators_are_strict_too((tree, seq) in tree_and_seq()) {
        // The mechanism is operator-generic; spot-check MIN by running
        // the same workload mapped onto MinI64.
        let res = run_sequential(&tree, MinI64, &RwwSpec, Schedule::Fifo, &seq, false);
        // Oracle for MIN: last write per node, fold with min.
        let mut vals = vec![i64::MAX; tree.len()];
        let mut expected = Vec::new();
        for (i, q) in seq.iter().enumerate() {
            match &q.op {
                oat_core::request::ReqOp::Write(v) => vals[q.node.idx()] = *v,
                oat_core::request::ReqOp::Combine => {
                    expected.push((i, vals.iter().copied().min().unwrap_or(i64::MAX)));
                }
            }
        }
        prop_assert_eq!(res.combines, expected);
    }
}

#[test]
fn prewarmed_engines_are_strict_and_invariant() {
    // Prewarming is a legal quiescent state: everything still holds.
    let tree = Tree::kary(10, 3);
    let mut engine = oat::sim::Engine::new(
        tree.clone(),
        SumI64,
        &AlwaysLeaseSpec,
        Schedule::Fifo,
        false,
    );
    engine.prewarm_leases();
    let seq: Vec<Request<i64>> = (0..30)
        .map(|i| {
            let node = NodeId(i % 10);
            if i % 4 == 0 {
                Request::combine(node)
            } else {
                Request::write(node, i as i64)
            }
        })
        .collect();
    let chunk = oat::sim::sequential::run_sequential_on(&mut engine, &seq, 0);
    let violations = check_strict_sequential(&SumI64, &tree, &seq, &chunk.combines);
    assert!(violations.is_empty(), "{violations:?}");
    invariants::check_all(&engine, &SumI64).unwrap();
}
