//! MLAP bounds end-to-end: the offline DP oracle is a true lower bound
//! for every online flush policy, and the lazy deadline-trigger policy
//! meets its `(depth+1)` certificate on unit-weight deadline instances.
//!
//! * Lower bound: for every policy P and instance σ with an exact OPT,
//!   `cost_P(σ) ≥ OPT(σ)` — on deadline *and* linear-delay instances,
//!   unit *and* general weights.
//! * Upper bound (certified, unit weights only): `odepth` misses no
//!   deadline and pays `service ≤ (depth+1)·OPT` — each trigger flushes
//!   one root path (≤ depth+1 nodes) and consecutive expiries at a node
//!   force disjoint OPT service windows. The certificate does NOT extend
//!   to general weights (a heavy hub shared by many cheap leaves breaks
//!   the per-trigger charging), so the weighted cases assert only the
//!   lower bound — see DESIGN.md §13.
//! * Tightness: the adversarial spider drives `odepth` to
//!   `legs·(depth+1)` service against `OPT = depth+legs`, approaching
//!   the bound as `legs` grows.

use oat::mlap::{all_policies, run_mlap, CostModel, MlapInstance};
use oat::offline::mlap_opt;
use oat::prelude::*;
use oat::sim::Schedule;
use oat::workloads::mlap::{adversarial_deadline, bursty_deadline, random_instance};
use proptest::prelude::*;

/// Runs every policy on `inst` and returns `(name, run)` pairs.
fn run_all(inst: &MlapInstance) -> Vec<(String, oat::mlap::MlapRun)> {
    all_policies()
        .into_iter()
        .map(|mut p| {
            let run = run_mlap(inst, p.as_mut(), Schedule::Fifo);
            (run.policy.clone(), run)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn oracle_lower_bounds_every_policy_on_deadline_instances(
        n in 2usize..9,
        len in 1usize..10,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let inst = random_instance(n, len, CostModel::Deadline, unit, seed);
        let opt = mlap_opt(&inst).expect("small instance fits the oracle cap");
        for (name, run) in run_all(&inst) {
            prop_assert!(
                run.total_cost() >= opt,
                "{name}: total {} < OPT {opt}", run.total_cost()
            );
        }
    }

    #[test]
    fn oracle_lower_bounds_every_policy_on_delay_instances(
        n in 2usize..9,
        len in 1usize..10,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let inst = random_instance(n, len, CostModel::LinearDelay, unit, seed);
        let opt = mlap_opt(&inst).expect("small instance fits the oracle cap");
        for (name, run) in run_all(&inst) {
            prop_assert!(
                run.total_cost() >= opt,
                "{name}: total {} < OPT {opt}", run.total_cost()
            );
        }
    }

    #[test]
    fn odepth_meets_its_certificate_on_unit_weight_deadline_instances(
        n in 2usize..9,
        len in 1usize..10,
        seed in any::<u64>(),
    ) {
        let inst = random_instance(n, len, CostModel::Deadline, true, seed);
        let opt = mlap_opt(&inst).expect("small instance fits the oracle cap");
        let bound = u64::from(inst.depth() + 1) * opt;
        for (name, run) in run_all(&inst) {
            // Both odepth variants serve every request by its deadline…
            if name.starts_with("odepth") {
                prop_assert_eq!(run.deadline_misses, 0, "{} missed deadlines", name);
            }
            // …and the plain lazy variant carries the (depth+1) certificate.
            if name == "odepth" {
                prop_assert!(
                    run.service_cost <= bound,
                    "odepth service {} > (depth+1)·OPT = {bound}", run.service_cost
                );
            }
        }
    }
}

#[test]
fn adversarial_spider_is_near_tight_for_the_lazy_policy() {
    // depth 4, 8 legs: OPT flushes the whole spider once at time 1
    // (4 path nodes + 8 leaves = 12); lazy pays a 5-node root path per
    // leaf = 40. Ratio 10/3, under the certified bound of 5 but growing
    // toward it with more legs.
    let inst = adversarial_deadline(4, 8);
    let opt = mlap_opt(&inst).expect("spider fits the oracle cap");
    assert_eq!(opt, 12);
    let runs = run_all(&inst);
    let (_, lazy) = runs.iter().find(|(n, _)| n == "odepth").unwrap();
    assert_eq!(lazy.service_cost, 40, "one full root path per leaf");
    assert_eq!(lazy.deadline_misses, 0);
    assert!(lazy.service_cost <= u64::from(inst.depth() + 1) * opt);
    // More legs push the ratio closer to depth+1 = 5.
    let wide = adversarial_deadline(4, 11);
    let wopt = mlap_opt(&wide).expect("fits: 11 distinct deadlines");
    let mut p = oat::mlap::OdepthDeadline::new();
    let wrun = run_mlap(&wide, &mut p, Schedule::Fifo);
    let (r1, r2) = (
        lazy.service_cost as f64 / opt as f64,
        wrun.service_cost as f64 / wopt as f64,
    );
    assert!(r2 > r1, "ratio grows with legs: {r1} -> {r2}");
}

#[test]
fn bursty_deadline_instances_are_served_on_time() {
    let tree = Tree::kary(15, 2);
    for seed in 0..5 {
        let inst = bursty_deadline(&tree, 4, 3, 5, seed);
        for (name, run) in run_all(&inst) {
            assert_eq!(
                run.deadline_misses, 0,
                "{name} missed a deadline (seed {seed})"
            );
            assert_eq!(run.served, inst.requests.len() as u64, "{name} served all");
        }
    }
}
