//! Simulator ↔ TCP-cluster parity (the oat-net headline property).
//!
//! Sequential executions of lease-based algorithms are confluent: the
//! returned combine values *and* the per-edge, per-kind message counts are
//! independent of the (FIFO) delivery schedule. The deterministic
//! simulator and the real TCP cluster are therefore required to agree
//! *exactly* — not approximately — on every seeded workload, as long as
//! each request runs to quiescence before the next starts.
//!
//! These tests replay identical seeded request sequences through
//! `oat_sim::run_sequential` and `oat_net::Cluster::replay_sequential`
//! and assert equality of:
//!
//! * every combine result,
//! * the per-request message counts,
//! * the per-kind message totals (probe / response / update / release),
//! * the full per-directed-edge, per-kind count matrix.

use oat::core::agg::SumI64;
use oat::core::policy::baseline::NeverLeaseSpec;
use oat::core::policy::rww::RwwSpec;
use oat::core::policy::PolicySpec;
use oat::core::request::Request;
use oat::core::tree::Tree;
use oat::net::Cluster;
use oat::sim::{run_sequential, Schedule};
use oat::workloads::{hotspot, uniform};

/// Replays `seq` through both runtimes and asserts exact agreement.
fn assert_parity<S: PolicySpec>(label: &str, tree: &Tree, spec: &S, seq: &[Request<i64>])
where
    S::Node: 'static,
{
    let sim = run_sequential(tree, SumI64, spec, Schedule::Fifo, seq, false);

    let cluster = Cluster::spawn(tree, SumI64, spec, false)
        .unwrap_or_else(|e| panic!("{label}: cluster spawn failed: {e}"));
    let net = cluster
        .replay_sequential(seq)
        .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));

    assert_eq!(net.combines, sim.combines, "{label}: combine values differ");
    assert_eq!(
        net.per_request_msgs, sim.per_request_msgs,
        "{label}: per-request message counts differ"
    );

    // Cluster-wide stats, reassembled from the nodes' TCP metrics
    // snapshots while the cluster is still alive…
    let live = cluster.stats().unwrap();
    let reference = sim.engine.stats();
    assert_eq!(
        live.kind_totals(),
        reference.kind_totals(),
        "{label}: per-kind totals differ (live metrics)"
    );
    assert_eq!(
        live.per_edge_counts(),
        reference.per_edge_counts(),
        "{label}: per-edge counts differ (live metrics)"
    );
    assert_eq!(
        live.to_json(tree),
        reference.to_json(tree),
        "{label}: stats JSON differs"
    );

    // …and again from the authoritative per-node reports after shutdown.
    let report = cluster.shutdown();
    assert_eq!(
        report.stats.per_edge_counts(),
        reference.per_edge_counts(),
        "{label}: per-edge counts differ (shutdown report)"
    );
    assert_eq!(
        report.stats.total(),
        reference.total(),
        "{label}: totals differ"
    );
}

fn topologies() -> Vec<(&'static str, Tree)> {
    vec![
        ("path(7)", Tree::path(7)),
        ("star(8)", Tree::star(8)),
        ("kary(10,3)", Tree::kary(10, 3)),
    ]
}

#[test]
fn uniform_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 60, 0.5, 0xA11CE);
        assert_parity(&format!("uniform/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn write_heavy_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 60, 0.9, 0xB0B0);
        assert_parity(&format!("write-heavy/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn hotspot_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = hotspot(&tree, 60, 0.4, 2, 2, 0xC0FFEE);
        assert_parity(&format!("hotspot/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn workloads_match_under_never_lease() {
    // NeverLease keeps the system pull-only; parity must hold for the
    // degenerate policy too (probe/response floods, zero updates).
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 40, 0.5, 0xDEAD);
        assert_parity(
            &format!("uniform/never/{name}"),
            &tree,
            &NeverLeaseSpec,
            &seq,
        );
        let seq = hotspot(&tree, 40, 0.6, 1, 3, 0xF00D);
        assert_parity(
            &format!("hotspot/never/{name}"),
            &tree,
            &NeverLeaseSpec,
            &seq,
        );
    }
}
