//! Simulator ↔ TCP-cluster parity (the oat-net headline property).
//!
//! Sequential executions of lease-based algorithms are confluent: the
//! returned combine values *and* the per-edge, per-kind message counts are
//! independent of the (FIFO) delivery schedule. The deterministic
//! simulator and the real TCP cluster are therefore required to agree
//! *exactly* — not approximately — on every seeded workload, as long as
//! each request runs to quiescence before the next starts.
//!
//! These tests replay identical seeded request sequences through
//! `oat_sim::run_sequential` and `oat_net::Cluster::replay_sequential`
//! and assert equality of:
//!
//! * every combine result,
//! * the per-request message counts,
//! * the per-kind message totals (probe / response / update / release),
//! * the full per-directed-edge, per-kind count matrix.

use oat::core::agg::SumI64;
use oat::core::fault::FaultPlan;
use oat::core::policy::baseline::NeverLeaseSpec;
use oat::core::policy::rww::RwwSpec;
use oat::core::policy::PolicySpec;
use oat::core::request::{ReqOp, Request};
use oat::core::tree::{NodeId, Tree};
use oat::net::{Cluster, ClusterClient, NetConfig, Response, TransportKind};
use oat::sim::{run_sequential, Schedule};
use oat::workloads::{hotspot, uniform};

/// Every transport backend the cluster can run on. Parity is a property
/// of the protocol, not the byte pipe, so each one must pass unchanged.
const TRANSPORTS: [TransportKind; 3] =
    [TransportKind::Tcp, TransportKind::Uds, TransportKind::Ring];

/// Spawns a fault-free cluster on the given transport backend.
fn spawn_on<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    transport: TransportKind,
) -> std::io::Result<Cluster<SumI64>>
where
    S::Node: 'static,
{
    let cfg = NetConfig {
        transport,
        ..NetConfig::default()
    };
    Cluster::spawn_with(tree, SumI64, spec, false, FaultPlan::default(), cfg)
}

/// Replays `seq` through both runtimes and asserts exact agreement.
fn assert_parity<S: PolicySpec>(label: &str, tree: &Tree, spec: &S, seq: &[Request<i64>])
where
    S::Node: 'static,
{
    assert_parity_on(label, tree, spec, seq, TransportKind::Tcp);
}

/// The transport-parameterized body of [`assert_parity`].
fn assert_parity_on<S: PolicySpec>(
    label: &str,
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
    transport: TransportKind,
) where
    S::Node: 'static,
{
    let sim = run_sequential(tree, SumI64, spec, Schedule::Fifo, seq, false);

    let cluster = spawn_on(tree, spec, transport)
        .unwrap_or_else(|e| panic!("{label}: cluster spawn failed: {e}"));
    let net = cluster
        .replay_sequential(seq)
        .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));

    assert_eq!(net.combines, sim.combines, "{label}: combine values differ");
    assert_eq!(
        net.per_request_msgs, sim.per_request_msgs,
        "{label}: per-request message counts differ"
    );

    // Cluster-wide stats, reassembled from the nodes' TCP metrics
    // snapshots while the cluster is still alive…
    let live = cluster.stats().unwrap();
    let reference = sim.engine.stats();
    assert_eq!(
        live.kind_totals(),
        reference.kind_totals(),
        "{label}: per-kind totals differ (live metrics)"
    );
    assert_eq!(
        live.per_edge_counts(),
        reference.per_edge_counts(),
        "{label}: per-edge counts differ (live metrics)"
    );
    assert_eq!(
        live.to_json(tree),
        reference.to_json(tree),
        "{label}: stats JSON differs"
    );

    // …and again from the authoritative per-node reports after shutdown.
    let report = cluster.shutdown();
    assert_eq!(
        report.stats.per_edge_counts(),
        reference.per_edge_counts(),
        "{label}: per-edge counts differ (shutdown report)"
    );
    assert_eq!(
        report.stats.total(),
        reference.total(),
        "{label}: totals differ"
    );
}

fn topologies() -> Vec<(&'static str, Tree)> {
    vec![
        ("path(7)", Tree::path(7)),
        ("star(8)", Tree::star(8)),
        ("kary(10,3)", Tree::kary(10, 3)),
    ]
}

#[test]
fn uniform_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 60, 0.5, 0xA11CE);
        assert_parity(&format!("uniform/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn write_heavy_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 60, 0.9, 0xB0B0);
        assert_parity(&format!("write-heavy/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn hotspot_workload_matches_under_rww() {
    for (name, tree) in topologies() {
        let seq = hotspot(&tree, 60, 0.4, 2, 2, 0xC0FFEE);
        assert_parity(&format!("hotspot/rww/{name}"), &tree, &RwwSpec, &seq);
    }
}

#[test]
fn workloads_match_under_never_lease() {
    // NeverLease keeps the system pull-only; parity must hold for the
    // degenerate policy too (probe/response floods, zero updates).
    for (name, tree) in topologies() {
        let seq = uniform(&tree, 40, 0.5, 0xDEAD);
        assert_parity(
            &format!("uniform/never/{name}"),
            &tree,
            &NeverLeaseSpec,
            &seq,
        );
        let seq = hotspot(&tree, 40, 0.6, 1, 3, 0xF00D);
        assert_parity(
            &format!("hotspot/never/{name}"),
            &tree,
            &NeverLeaseSpec,
            &seq,
        );
    }
}

#[test]
fn concurrent_pipelined_combines_match_the_sequential_oracle() {
    // The batching/pipelining parity test: after a quiesced write phase,
    // concurrent combines are write-determined — every one must return
    // the global oracle value — and when they all target the same node,
    // the message counts are deterministic too: the first combine pays
    // for the lease-building probe/response traffic (or nothing, if the
    // writes left leases in place) and every later one is answered
    // locally or coalesced onto the pending one. So the TCP cluster,
    // driven by several clients each keeping a window of combines in
    // flight, must reproduce the sequential simulator's per-edge counts
    // for "the writes, then the combines at node 0" *exactly* — batching
    // and coalescing may merge syscalls, never messages.
    for (name, tree) in topologies() {
        let writes: Vec<Request<i64>> = uniform(&tree, 40, 1.0, 0x5EED)
            .into_iter()
            .filter(|q| !q.op.is_combine())
            .collect();
        // A write *sets* its node's local value, so the global aggregate
        // is the sum of each node's most recent write.
        let mut last = vec![0i64; tree.len()];
        for q in &writes {
            match &q.op {
                ReqOp::Write(v) => last[q.node.idx()] = *v,
                ReqOp::Combine => unreachable!(),
            }
        }
        let oracle: i64 = last.iter().sum();

        const CLIENTS: usize = 4;
        const PER_CLIENT: usize = 12;
        const DEPTH: usize = 8;

        // Sequential reference: the writes, then all combines at node 0.
        let mut seq = writes.clone();
        seq.extend((0..CLIENTS * PER_CLIENT).map(|_| Request::combine(NodeId(0))));
        let sim = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);

        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
        let net_writes = cluster.replay_sequential(&writes).unwrap();
        assert!(net_writes.combines.is_empty());

        // Concurrent phase: CLIENTS connections to node 0, each keeping
        // up to DEPTH combines in flight.
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let cluster = &cluster;
                scope.spawn(move || {
                    let mut client: ClusterClient<i64> = cluster.client(NodeId(0)).unwrap();
                    let mut submitted = 0usize;
                    let mut received = 0usize;
                    while received < PER_CLIENT {
                        while submitted < PER_CLIENT && submitted - received < DEPTH {
                            client.submit_combine().unwrap();
                            submitted += 1;
                        }
                        let (_, resp) = client.next_response().unwrap();
                        match resp {
                            Response::Combine(v) => {
                                assert_eq!(v, oracle, "client {c}: combine diverged from oracle")
                            }
                            other => panic!("client {c}: unexpected response {other:?}"),
                        }
                        received += 1;
                    }
                });
            }
        });
        cluster.quiesce();

        let live = cluster.stats().unwrap();
        let reference = sim.engine.stats();
        assert_eq!(
            live.per_edge_counts(),
            reference.per_edge_counts(),
            "{name}: pipelined combines changed the per-edge message counts"
        );
        let report = cluster.shutdown();
        assert_eq!(report.stats.total(), reference.total(), "{name}: totals");
        assert_eq!(
            report.delivered,
            reference.total(),
            "{name}: every sent message must be delivered exactly once"
        );
    }
}

#[test]
fn replay_pipelined_is_internally_consistent() {
    // A mixed workload under the multi-client pipelined driver: combine
    // values are schedule-dependent here, so no oracle comparison — but
    // every request must be answered, every sent message delivered, and
    // per-node submission order preserved (each node's subsequence runs
    // FIFO on one connection).
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 120, 0.5, 0x9A9A);
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();

    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
    let pipe = cluster.replay_pipelined(&seq, 8).unwrap();
    cluster.quiesce();

    assert_eq!(pipe.combines.len(), expected_combines);
    // Indices are unique, sorted, and refer to combine requests.
    for w in pipe.combines.windows(2) {
        assert!(w[0].0 < w[1].0, "combine indices must be strictly sorted");
    }
    for (i, _) in &pipe.combines {
        assert!(seq[*i].op.is_combine());
    }
    assert_eq!(pipe.latencies.len(), seq.len());

    let report = cluster.shutdown();
    assert_eq!(
        report.delivered,
        report.stats.total(),
        "sent and delivered message counts must agree at quiescence"
    );
}

#[test]
fn byte_parity_holds_on_every_transport() {
    // The full byte-for-byte parity check — combine values, per-request
    // message counts, per-kind totals, the complete per-directed-edge
    // count matrix — repeated over every transport backend. The SPSC
    // ring, the Unix socket, and TCP must be indistinguishable above
    // the framing layer.
    let tree = Tree::kary(10, 3);
    for transport in TRANSPORTS {
        let seq = uniform(&tree, 60, 0.5, 0xA11CE);
        assert_parity_on(
            &format!("uniform/rww/kary(10,3)/{}", transport.name()),
            &tree,
            &RwwSpec,
            &seq,
            transport,
        );
        let seq = hotspot(&tree, 40, 0.4, 2, 2, 0xC0FFEE);
        assert_parity_on(
            &format!("hotspot/rww/kary(10,3)/{}", transport.name()),
            &tree,
            &RwwSpec,
            &seq,
            transport,
        );
    }
}

#[test]
fn batched_replay_matches_the_oracle_on_every_transport() {
    // The batch protocol's parity claim: after a quiesced write phase,
    // combines are write-determined, so every combine carried inside a
    // TAG_REQ_BATCH frame must return exactly the oracle value — on
    // every transport. Batching merges frames, never messages, so the
    // per-edge counts must also match the sequential simulator's run of
    // "the writes, then the combines at node 0".
    for transport in TRANSPORTS {
        let name = transport.name();
        let tree = Tree::kary(10, 3);
        let writes: Vec<Request<i64>> = uniform(&tree, 40, 1.0, 0x5EED)
            .into_iter()
            .filter(|q| !q.op.is_combine())
            .collect();
        let mut last = vec![0i64; tree.len()];
        for q in &writes {
            match &q.op {
                ReqOp::Write(v) => last[q.node.idx()] = *v,
                ReqOp::Combine => unreachable!(),
            }
        }
        let oracle: i64 = last.iter().sum();

        const COMBINES: usize = 48;
        const BATCH: usize = 8;
        let combines: Vec<Request<i64>> =
            (0..COMBINES).map(|_| Request::combine(NodeId(0))).collect();

        // Sequential reference for the message-count comparison.
        let mut seq = writes.clone();
        seq.extend(combines.iter().cloned());
        let sim = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);

        let cluster = spawn_on(&tree, &RwwSpec, transport)
            .unwrap_or_else(|e| panic!("{name}: spawn failed: {e}"));
        let net_writes = cluster.replay_sequential(&writes).unwrap();
        assert!(net_writes.combines.is_empty());

        let batched = cluster
            .replay_batched(&combines, BATCH)
            .unwrap_or_else(|e| panic!("{name}: batched replay failed: {e}"));
        cluster.quiesce();

        assert_eq!(
            batched.combines.len(),
            COMBINES,
            "{name}: every batched combine must be answered"
        );
        for (i, v) in &batched.combines {
            assert_eq!(*v, oracle, "{name}: batched combine {i} diverged");
        }
        assert_eq!(batched.latencies.len(), COMBINES);

        let live = cluster.stats().unwrap();
        let reference = sim.engine.stats();
        assert_eq!(
            live.per_edge_counts(),
            reference.per_edge_counts(),
            "{name}: batched combines changed the per-edge message counts"
        );
        let report = cluster.shutdown();
        assert_eq!(report.stats.total(), reference.total(), "{name}: totals");
        assert_eq!(
            report.delivered,
            reference.total(),
            "{name}: every sent message must be delivered exactly once"
        );
    }
}

#[test]
fn batched_mixed_workload_is_internally_consistent() {
    // A mixed read/write workload under the batch driver: values are
    // schedule-dependent (batch members at one node run FIFO, cross-node
    // order is free), so no oracle — but every request must be answered
    // exactly once, indices must come back sorted and unique, and the
    // message ledger must balance.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 120, 0.5, 0x9A9A);
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();

    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
    let batched = cluster.replay_batched(&seq, 16).unwrap();
    cluster.quiesce();

    assert_eq!(batched.combines.len(), expected_combines);
    for w in batched.combines.windows(2) {
        assert!(w[0].0 < w[1].0, "combine indices must be strictly sorted");
    }
    for (i, _) in &batched.combines {
        assert!(seq[*i].op.is_combine());
    }
    assert_eq!(batched.latencies.len(), seq.len());

    let report = cluster.shutdown();
    assert_eq!(
        report.delivered,
        report.stats.total(),
        "sent and delivered message counts must agree at quiescence"
    );
}
