//! Property tests for the tree topology algebra — the foundation every
//! other component leans on (`subtree(u,v)` membership drives the
//! `σ(u,v)` projections, the *u*-parent drives probe/update routing).

use oat::prelude::*;
use oat_core::request::{sigma, EdgeEvent, Request};
use proptest::prelude::*;

fn random_tree_strategy() -> impl Strategy<Value = Tree> {
    (2usize..32, any::<u64>()).prop_map(|(n, seed)| oat::workloads::random_tree(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn subtree_partition(tree in random_tree_strategy()) {
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let mut count_u = 0usize;
            for x in tree.nodes() {
                let in_u = tree.in_subtree(u, v, x);
                let in_v = tree.in_subtree(v, u, x);
                prop_assert!(in_u ^ in_v, "edge ({u},{v}), node {x}");
                if in_u {
                    count_u += 1;
                }
            }
            prop_assert_eq!(count_u, tree.subtree_size(u, v));
            prop_assert_eq!(
                tree.subtree_size(u, v) + tree.subtree_size(v, u),
                tree.len()
            );
            // Endpoints are on their own sides.
            prop_assert!(tree.in_subtree(u, v, u));
            prop_assert!(tree.in_subtree(v, u, v));
        }
    }

    #[test]
    fn u_parent_is_next_hop(tree in random_tree_strategy()) {
        for u in tree.nodes() {
            for x in tree.nodes() {
                if u == x {
                    continue;
                }
                let p = tree.u_parent(u, x);
                // The u-parent is adjacent to x and strictly closer to u.
                prop_assert!(tree.adjacent(p, x));
                prop_assert_eq!(tree.distance(u, p) + 1, tree.distance(u, x));
                // And it is the second-to-last element of the path.
                let path = tree.path_between(u, x);
                prop_assert_eq!(path[path.len() - 2], p);
                prop_assert_eq!(path[0], u);
                prop_assert_eq!(*path.last().unwrap(), x);
            }
        }
    }

    #[test]
    fn paths_are_symmetric_and_simple(tree in random_tree_strategy()) {
        let nodes: Vec<NodeId> = tree.nodes().collect();
        for &u in nodes.iter().take(6) {
            for &v in nodes.iter().rev().take(6) {
                let p = tree.path_between(u, v);
                let mut q = tree.path_between(v, u);
                q.reverse();
                prop_assert_eq!(&p, &q);
                // Simple: no repeated nodes.
                let set: std::collections::HashSet<_> = p.iter().collect();
                prop_assert_eq!(set.len(), p.len());
                // Consecutive elements adjacent.
                for w in p.windows(2) {
                    prop_assert!(tree.adjacent(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn dir_edge_index_is_a_bijection(tree in random_tree_strategy()) {
        let mut seen = vec![false; tree.num_dir_edges()];
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let i = tree.dir_edge_index(u, v);
            prop_assert!(!seen[i]);
            seen[i] = true;
            prop_assert_eq!(tree.dir_edge(i), (u, v));
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sigma_partitions_every_request(
        tree in random_tree_strategy(),
        seed in any::<u64>(),
    ) {
        // Each request lands in exactly one of σ(u,v), σ(v,u) per edge;
        // summing event counts over one direction of each edge recovers
        // the sequence length.
        let seq = oat::workloads::uniform(&tree, 50, 0.5, seed);
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let a = sigma(&tree, &seq, u, v);
            let b = sigma(&tree, &seq, v, u);
            prop_assert_eq!(a.len() + b.len(), seq.len());
            prop_assert!(a.iter().all(|&e| e != EdgeEvent::N));
        }
    }

    #[test]
    fn sigma_respects_subtree_membership(
        tree in random_tree_strategy(),
        node_pick in any::<u64>(),
    ) {
        // A write at x is a W exactly for the pairs whose u-side holds x.
        let x = NodeId((node_pick % tree.len() as u64) as u32);
        let seq = vec![Request::write(x, 1i64)];
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let ev = sigma(&tree, &seq, u, v);
            if tree.in_subtree(u, v, x) {
                prop_assert_eq!(&ev, &vec![EdgeEvent::W]);
            } else {
                prop_assert!(ev.is_empty());
            }
        }
    }
}
