//! Mechanism edge cases: degenerate topologies, extreme degrees and
//! depths, long-running state health, and liveness under message loss.

use oat::prelude::*;
use oat::sim::{invariants, run_sequential, Engine, Schedule};
use oat_core::mechanism::CombineOutcome;
use oat_core::request::Request;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

#[test]
fn single_node_tree_everything_is_local() {
    let tree = Tree::from_edges(1, &[]).unwrap();
    let seq = vec![
        Request::combine(n(0)),
        Request::write(n(0), 5),
        Request::combine(n(0)),
        Request::write(n(0), 7),
        Request::write(n(0), 9),
        Request::combine(n(0)),
    ];
    let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
    assert_eq!(res.total_msgs(), 0);
    assert_eq!(res.combines, vec![(0, 0), (2, 5), (5, 9)]);
    assert_eq!(res.per_request_latency, vec![0; 6]);
}

#[test]
fn degree_200_star_behaves() {
    let tree = Tree::star(201);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    // One write per leaf, then a combine at a leaf: 2·200 messages.
    for i in 1..201u32 {
        eng.initiate_write(n(i), 1);
        eng.run_to_quiescence();
    }
    assert_eq!(eng.stats().total(), 0);
    eng.initiate_combine(n(1));
    let done = eng.run_to_quiescence();
    assert_eq!(done, vec![(n(1), 200)]);
    assert_eq!(eng.stats().total(), 400);
    invariants::check_all(&eng, &SumI64).unwrap();
    invariants::check_rww_i4(&eng).unwrap();
}

#[test]
fn depth_300_path_no_stack_issues() {
    let tree = Tree::path(300);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    eng.initiate_write(n(299), 42);
    eng.run_to_quiescence();
    eng.initiate_combine(n(0));
    let done = eng.run_to_quiescence();
    assert_eq!(done, vec![(n(0), 42)]);
    assert_eq!(eng.stats().total(), 2 * 299);
    // Update cascades the full depth on the next write.
    eng.initiate_write(n(299), 43);
    eng.run_to_quiescence();
    invariants::check_all(&eng, &SumI64).unwrap();
}

#[test]
fn long_run_state_stays_bounded_and_healthy() {
    // 4000 requests on one engine: uaw sets stay ≤ 2 (I4), pndg/snt
    // clear at every quiescent point, and invariants hold at the end.
    let tree = oat::workloads::random_tree(20, 9);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    let seq = oat::workloads::uniform(&tree, 4000, 0.5, 77);
    let chunk = oat::sim::sequential::run_sequential_on(&mut eng, &seq, 0);
    assert!(chunk.combines.len() > 1000);
    // I4 bounds |uaw| ≤ 2 only in the lone-grant case; with multiple
    // grants it can transiently exceed 2 (releases re-truncate it), but
    // it must never grow with the run length — the mechanism's state is
    // O(degree), not O(history).
    for u in tree.nodes() {
        for vi in 0..tree.degree(u) {
            let len = eng.node(u).uaw(vi).len();
            assert!(len <= 4, "uaw unexpectedly large ({len}) at {u}");
            let grants_elsewhere =
                (0..tree.degree(u)).any(|wi| wi != vi && eng.node(u).granted(wi));
            if eng.node(u).taken(vi) && !grants_elsewhere {
                assert!(len <= 2, "I4 lone-grant bound violated at {u}");
            }
        }
    }
    invariants::check_all(&eng, &SumI64).unwrap();
    invariants::check_rww_i4(&eng).unwrap();
    // The forwarded-updates ledger must not grow with history: the
    // watermark pruning keeps it O(degree).
    for u in tree.nodes() {
        let len = eng.node(u).sntupdates_len();
        assert!(
            len <= 4 * tree.degree(u).max(1),
            "sntupdates ledger leaked at {u}: {len} entries after 4000 requests"
        );
    }
}

#[test]
fn dropped_probe_stalls_the_combine_but_nothing_else() {
    // Liveness needs reliability too: lose a probe and the combine never
    // completes — but the network still drains and later requests work.
    let tree = Tree::path(3);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    assert!(matches!(
        eng.initiate_combine(n(0)),
        CombineOutcome::Pending
    ));
    // Lose the probe n0 -> n1.
    assert_eq!(
        eng.drop_one(n(0), n(1)),
        Some(oat::core::message::MsgKind::Probe)
    );
    let done = eng.run_to_quiescence();
    assert!(done.is_empty(), "the combine can never complete");
    assert!(eng.is_quiescent());
    // The node still has the request pending — visible state, no panic.
    assert_eq!(eng.node(n(0)).pndg(), &[n(0)]);
    // Other nodes keep working.
    eng.initiate_write(n(2), 9);
    eng.run_to_quiescence();
    assert_eq!(eng.global_oracle(), 9);
}

#[test]
fn interleaved_writes_from_all_nodes_converge() {
    // Every node writes in round-robin with leases fully warmed: all
    // caches converge to the true aggregate after each quiescence.
    let tree = Tree::kary(7, 2);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    eng.prewarm_leases();
    for round in 0..3i64 {
        for i in 0..7u32 {
            eng.initiate_write(n(i), round * 10 + i as i64);
            eng.run_to_quiescence();
        }
        // A combine at every node agrees with the oracle — whether
        // leases survived (prewarm start) or broke along the way.
        let oracle = eng.global_oracle();
        for i in 0..7u32 {
            let v = match eng.initiate_combine(n(i)) {
                CombineOutcome::Done(v) => v,
                CombineOutcome::Pending => {
                    let done = eng.run_to_quiescence();
                    done.into_iter().find(|(u, _)| *u == n(i)).unwrap().1
                }
                CombineOutcome::Coalesced => unreachable!(),
            };
            assert_eq!(v, oracle, "node {i} round {round}");
        }
    }
    invariants::check_all(&eng, &SumI64).unwrap();
}

#[test]
fn ab_policy_with_large_a_churns_on_alternating_workloads() {
    // (5, 1): leases need five consecutive combines in σ(u,v). Writes
    // interleave globally, but for a *quiet leaf* v the pair (v, centre)
    // sees long combine runs from other nodes — so leases do form, and
    // with b = 1 they break on the next write: pure churn.
    let tree = Tree::star(6);
    let mut seq = Vec::new();
    for i in 0..40u32 {
        seq.push(Request::combine(n(i % 6)));
        seq.push(Request::write(n((i + 1) % 6), i as i64));
    }
    let ab = run_sequential(
        &tree,
        SumI64,
        &AbSpec::new(5, 1),
        Schedule::Fifo,
        &seq,
        false,
    );
    let never = run_sequential(&tree, SumI64, &NeverLeaseSpec, Schedule::Fifo, &seq, false);
    // Same strictly-consistent answers either way…
    assert_eq!(ab.combines, never.combines);
    // …but (5,1) is not "almost NeverLease": leaf-to-centre leases still
    // form (five consecutive *other-node* combines probe through a quiet
    // leaf), and with b = 1 they churn — costing MORE than never leasing.
    // An instructive pathology: long-a policies pay grant/release churn
    // without reaping push savings.
    assert!(
        ab.total_msgs() > never.total_msgs(),
        "(5,1) churn: {} vs {}",
        ab.total_msgs(),
        never.total_msgs()
    );
}

#[test]
fn min_operator_with_rewrites_tracks_current_values_not_history() {
    // MIN over *current local values*: when the minimal node overwrites
    // itself upward, the aggregate rises — unlike a historical min.
    let mut sys = AggregationSystem::new(Tree::path(3), MinI64, RwwSpec);
    sys.write(n(0), 10);
    sys.write(n(1), 5);
    sys.write(n(2), 20);
    assert_eq!(sys.read(n(2)), 5);
    sys.write(n(1), 50); // the old minimum is gone
    assert_eq!(sys.read(n(2)), 10);
}
