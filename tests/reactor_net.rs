//! Reactor-transport tests: the poll(2) event-loop runtime under loads
//! and failure shapes the thread-per-connection runtime never hit.
//!
//! Four properties pinned here:
//!
//! * **Incremental decoding** — a frame dribbled across several writes
//!   (or a client read timeout firing mid-frame) never desynchronizes
//!   the stream; this was an acknowledged caveat of the old blocking
//!   transport (`read_frame` + read timeout could split a frame and
//!   garble everything after it).
//! * **Backpressure** — a node whose edge retransmit buffer crosses the
//!   high watermark parks its *client* intake (never its edges, acks
//!   must flow), counts the stall, and resumes below the low watermark;
//!   nothing is lost and nothing deadlocks.
//! * **High fan-in** — a 64-leaf star (one hub owning 64 connections on
//!   one reactor) keeps per-edge FIFO exactly-once delivery and
//!   oracle-exact combines under pipelined multi-client load, and under
//!   chaos (probabilistic drops + a scheduled connection kill).
//! * **Thread budget** — OS threads scale with the configured reactor
//!   pool, not with the node count.

use std::io::Write;
use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use oat::core::agg::SumI64;
use oat::core::fault::{FaultPlan, KillConn};
use oat::core::policy::rww::RwwSpec;
use oat::core::request::{ReqOp, Request};
use oat::core::tree::{NodeId, Tree};
use oat::core::wire::put_u64;
use oat::net::frame::{
    read_frame, write_frame, TAG_HELLO_CLIENT, TAG_REQ_COMBINE, TAG_REQ_WRITE, TAG_RESP_COMBINE,
    TAG_RESP_WRITE,
};
use oat::net::{Cluster, ClusterClient, NetConfig};
use oat::workloads::uniform;

const CLIENT_TIMEOUT: Duration = Duration::from_millis(250);
const CLIENT_RETRIES: u32 = 120;
const DRAIN: Duration = Duration::from_secs(30);

/// Sequential replay with retrying clients, asserting every combine
/// equals the running oracle. Copied shape from `chaos_net.rs`.
fn replay_against_oracle(cluster: &Cluster<SumI64>, seq: &[Request<i64>]) -> usize {
    let tree = cluster.tree();
    let mut clients: Vec<Option<ClusterClient<i64>>> = (0..tree.len()).map(|_| None).collect();
    let mut last = vec![0i64; tree.len()];
    let mut combines = 0;
    for (i, q) in seq.iter().enumerate() {
        let slot = &mut clients[q.node.idx()];
        let client = match slot {
            Some(c) => c,
            None => {
                let mut c = cluster.client(q.node).expect("client connect");
                c.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)
                    .expect("arm timeout");
                slot.insert(c)
            }
        };
        match &q.op {
            ReqOp::Write(v) => {
                client
                    .write(*v)
                    .unwrap_or_else(|e| panic!("request {i}: write failed: {e}"));
                last[q.node.idx()] = *v;
            }
            ReqOp::Combine => {
                let got = client
                    .combine()
                    .unwrap_or_else(|e| panic!("request {i}: combine failed: {e}"));
                let want: i64 = last.iter().sum();
                assert_eq!(got, want, "request {i}: combine diverged from the oracle");
                combines += 1;
            }
        }
        assert!(
            cluster.quiesce_for(DRAIN),
            "request {i}: cluster failed to drain within {DRAIN:?}"
        );
    }
    combines
}

#[test]
fn frame_dribbled_across_writes_is_reassembled_by_the_node() {
    // Client → node direction: a raw socket sends hello + one write
    // request with every frame split across three socket writes and
    // real pauses between them. The node's per-connection decoder must
    // reassemble silently; the write must land.
    let tree = Tree::pair();
    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).expect("spawn");

    let mut wire = Vec::new();
    write_frame(&mut wire, TAG_HELLO_CLIENT, &[]).unwrap();
    let mut payload = Vec::new();
    put_u64(&mut payload, 1); // request id
    put_u64(&mut payload, 42u64); // i64 value 42, LE
    write_frame(&mut wire, TAG_REQ_WRITE, &payload).unwrap();

    let oat::net::NodeAddr::Tcp(addr) = cluster.addrs()[0].clone() else {
        panic!("default transport is TCP");
    };
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).unwrap();
    // Three slices with cut points inside the length prefix of the
    // hello and inside the body of the request frame.
    let cuts = [2, wire.len() - 5, wire.len()];
    let mut from = 0;
    for cut in cuts {
        s.write_all(&wire[from..cut]).expect("dribble");
        s.flush().unwrap();
        from = cut;
        thread::sleep(Duration::from_millis(30));
    }
    let (tag, resp) = read_frame(&mut s).expect("read ack");
    assert_eq!(tag, TAG_RESP_WRITE);
    assert_eq!(resp[..8], 1u64.to_le_bytes());
    drop(s);

    cluster.quiesce();
    let mut c = cluster.client(NodeId(1)).expect("client");
    assert_eq!(c.combine().expect("combine"), 42);
    cluster.quiesce();
    cluster.shutdown();
}

#[test]
fn client_timeout_mid_frame_does_not_desync_the_stream() {
    // Node → client direction, against a scripted server so the dribble
    // is forced: the response frame arrives in three chunks spaced
    // wider than the client's read timeout. The old transport's
    // blocking read_frame would split here and desynchronize; the
    // buffered decoder must ride the timeouts (re-sending its pending
    // request each time — duplicates the server ignores) and still
    // return the value.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).unwrap();
        let (tag, _) = read_frame(&mut s).expect("hello");
        assert_eq!(tag, TAG_HELLO_CLIENT);
        let (tag, req) = read_frame(&mut s).expect("req");
        assert_eq!(tag, TAG_REQ_COMBINE);
        let mut resp = Vec::new();
        resp.extend_from_slice(&req[..8]); // echo the request id
        put_u64(&mut resp, 7u64); // i64 value 7
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_RESP_COMBINE, &resp).unwrap();
        // Cut inside the length prefix, then inside the payload; the
        // 60 ms gaps each outlast the client's 40 ms timeout. The
        // client's retries land in our receive buffer, unread — which
        // is exactly how a busy node treats duplicates of an already
        // parked combine.
        let cuts = [3, wire.len() - 4, wire.len()];
        let mut from = 0;
        for cut in cuts {
            s.write_all(&wire[from..cut]).expect("dribble");
            s.flush().unwrap();
            from = cut;
            thread::sleep(Duration::from_millis(60));
        }
    });

    let mut client = ClusterClient::<i64>::connect(addr, NodeId(0)).expect("connect");
    client
        .set_timeout(Some(Duration::from_millis(40)), 20)
        .expect("arm timeout");
    assert_eq!(client.combine().expect("combine"), 7);
    assert!(
        client.timeouts() >= 1,
        "the dribble must actually have outlasted the read timeout"
    );
    server.join().unwrap();
}

#[test]
fn backpressure_stalls_client_intake_and_recovers() {
    // A watermark of 1 makes any unacked sequenced frame trip the
    // stall, and heavy injected drops keep frames unacked long enough
    // for the flush pass to observe them. Client intake parks; acks
    // (which never stall) eventually drain the retransmit buffers and
    // intake resumes. Everything still completes and matches the
    // oracle.
    let tree = Tree::path(3);
    let plan = FaultPlan {
        seed: 21,
        drop_p: 0.25,
        ..FaultPlan::default()
    };
    let cfg = NetConfig {
        threads: Some(1),
        rtx_high: 1,
        rtx_low: 0,
        ..NetConfig::default()
    };
    let cluster = Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, plan, cfg).expect("spawn");

    let mut seq = Vec::new();
    for round in 0..12i64 {
        seq.push(Request::write(NodeId(0), round + 1));
        seq.push(Request::write(NodeId(2), -round));
        seq.push(Request::combine(NodeId(1)));
        seq.push(Request::combine(NodeId(2)));
    }
    let combines = replay_against_oracle(&cluster, &seq);
    assert_eq!(combines, 24);

    let mut stalls = 0;
    for u in tree.nodes() {
        stalls += cluster
            .node_metrics(u)
            .expect("metrics")
            .backpressure_stalls;
    }
    assert!(
        stalls >= 1,
        "a watermark of one frame must have parked client intake at least once"
    );
    let json = cluster.metrics_json().expect("json");
    assert!(json.contains("\"backpressure_stalls\""));

    let (drops, ..) = cluster.injected().snapshot();
    assert!(drops > 0, "the drop plan must actually have fired");
    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty());
    assert!(report.faults.retransmits > 0);
}

#[test]
fn high_fan_in_star_keeps_fifo_and_oracle_under_pipelining() {
    // 64 leaves, one hub: all 64 edge connections (plus the pipelined
    // clients) multiplex onto a fixed two-thread pool. Phase 1 writes a
    // known value at every leaf under depth-8 two-client pipelining;
    // after quiescence, phase 2 pipelines combines everywhere and every
    // answer must equal the full sum. dup_drops == 0 certifies per-edge
    // FIFO: the sequencer discards any frame that arrives out of order,
    // so a reordering transport could not keep it at zero.
    let fan = 64;
    let tree = Tree::kary(fan + 1, fan);
    let cfg = NetConfig {
        threads: Some(2),
        ..NetConfig::default()
    };
    let cluster = Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
        .expect("spawn");
    assert_eq!(cluster.threads_spawned(), 2);

    let mut writes = Vec::new();
    for round in 0..3i64 {
        for leaf in 1..=fan as u32 {
            writes.push(Request::write(NodeId(leaf), leaf as i64 + 100 * round));
        }
    }
    // One client per node for the writes: multi-client dealing would
    // abandon per-node submission order and make the final value
    // nondeterministic. Depth-8 pipelining still overlaps all 64 leaves.
    let w = cluster.replay_pipelined(&writes, 8).expect("writes");
    assert_eq!(w.latencies.len(), writes.len());
    assert!(
        cluster.quiesce_for(DRAIN),
        "star failed to drain after the write phase"
    );

    // Final round left leaf ℓ holding ℓ + 200.
    let want: i64 = (1..=fan as i64).map(|l| l + 200).sum();
    let combines: Vec<Request<i64>> = (0..tree.len() as u32)
        .map(|u| Request::combine(NodeId(u)))
        .collect();
    let r = cluster
        .replay_pipelined_multi(&combines, 8, 2)
        .expect("combines");
    assert_eq!(r.combines.len(), tree.len());
    for (i, v) in &r.combines {
        assert_eq!(*v, want, "combine {i} diverged on the star");
    }
    assert!(cluster.quiesce_for(DRAIN));

    let mut dup_drops = 0;
    for u in tree.nodes() {
        dup_drops += cluster.node_metrics(u).expect("metrics").dup_drops;
    }
    assert_eq!(
        dup_drops, 0,
        "per-edge FIFO violated: sequencer dropped frames"
    );

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty());
    assert_eq!(report.delivered, report.stats.total());
    assert_eq!(report.threads_spawned, 2);
}

#[test]
fn high_fan_in_star_survives_chaos() {
    // The same star under probabilistic drops plus a scheduled kill of
    // a hub-leaf connection: sequential oracle replay must stay exact
    // and the killed edge must come back.
    let fan = 64;
    let tree = Tree::kary(fan + 1, fan);
    let plan = FaultPlan {
        seed: 33,
        drop_p: 0.04,
        dup_p: 0.04,
        kills: vec![KillConn {
            from: NodeId(0),
            to: NodeId(7),
            after_frames: 2,
        }],
        ..FaultPlan::default()
    };
    let cluster =
        Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn chaos");

    let mut seq = Vec::new();
    // Touch the killed edge's leaf explicitly, then a seeded mix.
    seq.push(Request::write(NodeId(7), 70));
    seq.push(Request::combine(NodeId(0)));
    seq.extend(uniform(&tree, 60, 0.5, 0x5717));
    seq.push(Request::combine(NodeId(7)));
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines >= 2);

    let (_, _, _, kills, _) = cluster.injected().snapshot();
    assert_eq!(kills, 1, "the scheduled kill must fire");
    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty());
    assert!(
        report.faults.reconnects >= 1,
        "the killed hub-leaf connection must reconnect"
    );
}

#[test]
fn thread_count_tracks_the_pool_not_the_nodes() {
    // 31 nodes on explicit pools of 1 and 3: threads_spawned reports
    // the pool, and an oversized request clamps to the node count.
    let tree = Tree::kary(31, 2);
    for pool in [1usize, 3] {
        let cfg = NetConfig {
            threads: Some(pool),
            ..NetConfig::default()
        };
        let cluster =
            Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
                .expect("spawn");
        assert_eq!(cluster.threads_spawned(), pool);
        let mut c = cluster.client(NodeId(30)).expect("client");
        c.write(5).expect("write");
        cluster.quiesce();
        assert_eq!(
            cluster
                .client(NodeId(0))
                .expect("client")
                .combine()
                .expect("combine"),
            5
        );
        cluster.quiesce();
        let report = cluster.shutdown();
        assert_eq!(report.threads_spawned, pool);
        assert!(report.dead_nodes.is_empty());
    }

    let tiny = Tree::pair();
    let cfg = NetConfig {
        threads: Some(16),
        ..NetConfig::default()
    };
    let cluster = Cluster::spawn_with(&tiny, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
        .expect("spawn");
    assert_eq!(
        cluster.threads_spawned(),
        2,
        "pool must clamp to the node count"
    );
    cluster.shutdown();
}
