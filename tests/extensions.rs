//! Integration tests for the extensions beyond the paper's minimum:
//! rich aggregation operators through the full mechanism, the randomized
//! break policy's guarantees, the multi-attribute layer, latency
//! accounting, and the (negative) demonstration that the reliable-channel
//! assumption is load-bearing.

use oat::core::agg_ext::{BitsetUnion, Histogram, TopK};
use oat::core::policy::random::RandomBreakSpec;
use oat::prelude::*;
use oat::sim::{invariants, run_sequential, Engine, Schedule};
use oat_core::request::Request;
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

// ---------- rich operators end-to-end ----------

#[test]
fn topk_through_the_mechanism_is_strict() {
    let tree = oat::workloads::random_tree(12, 4);
    let op = TopK::new(3);
    let mut sys = AggregationSystem::new(tree.clone(), op, RwwSpec);
    let mut per_node: Vec<i64> = vec![i64::MIN; 12];
    let mut written = vec![false; 12];
    let vals = [5i64, 40, 12, 99, 3, 40, 77, 21, 8, 64];
    for (i, &v) in vals.iter().enumerate() {
        let node = (i * 7 + 1) % 12;
        sys.write(n(node as u32), op.sample(v));
        per_node[node] = v;
        written[node] = true;
        // Oracle: top-3 of the current per-node samples.
        let mut all: Vec<i64> = per_node
            .iter()
            .zip(&written)
            .filter(|(_, &w)| w)
            .map(|(&v, _)| v)
            .collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all.truncate(3);
        assert_eq!(sys.read(n(0)), all, "after write {i}");
    }
}

#[test]
fn histogram_and_bitset_through_the_mechanism() {
    let tree = Tree::kary(9, 2);
    let hop: Histogram<3> = Histogram::new(0, 10);
    let mut hist = AggregationSystem::new(tree.clone(), hop, RwwSpec);
    let mut svc = AggregationSystem::new(tree, BitsetUnion, RwwSpec);
    for i in 1..9u32 {
        hist.write(n(i), hop.bucketize(i as i64 * 4));
        svc.write(n(i), BitsetUnion::singleton((i % 3) as u8));
    }
    // Samples 4,8,...,32: buckets [0,10) = {4,8}, [10,20) = {12,16},
    // [20,∞) = {20,24,28,32}.
    assert_eq!(hist.read(n(4)), [2, 2, 4]);
    assert_eq!(svc.read(n(4)), 0b111);
}

// ---------- randomized policy guarantees ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_break_is_nice_and_invariant(
        nn in 2usize..12,
        tseed in any::<u64>(),
        wseed in any::<u64>(),
        pseed in any::<u64>(),
        b in 1u32..5,
    ) {
        let tree = oat::workloads::random_tree(nn, tseed);
        let seq = oat::workloads::uniform(&tree, 60, 0.5, wseed);
        let spec = RandomBreakSpec::new(b, pseed);
        let res = run_sequential(&tree, SumI64, &spec, Schedule::Fifo, &seq, false);
        let violations =
            oat::consistency::check_strict_sequential(&SumI64, &tree, &seq, &res.combines);
        prop_assert!(violations.is_empty(), "{violations:?}");
        invariants::check_all(&res.engine, &SumI64).map_err(TestCaseError::fail)?;
    }
}

#[test]
fn random_break_is_causally_consistent_concurrently() {
    let tree = Tree::kary(9, 2);
    for seed in 0..8u64 {
        let seq = oat::workloads::uniform(&tree, 80, 0.5, seed);
        let res = oat::sim::concurrent::run_concurrent(
            &tree,
            SumI64,
            &RandomBreakSpec::new(2, seed),
            &seq,
            seed,
            0.7,
        );
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        oat::consistency::check_causal(&SumI64, &logs)
            .unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
    }
}

#[test]
fn random_break_beats_rww_on_the_deterministic_adversary() {
    use oat::offline::adversary::{adv_sequence, adv_tree};
    let tree = adv_tree();
    let seq = adv_sequence(1, 2, 500);
    let rww = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs();
    let mut rnd_total = 0u64;
    let seeds = 8;
    for seed in 0..seeds {
        rnd_total += run_sequential(
            &tree,
            SumI64,
            &RandomBreakSpec::new(2, seed),
            Schedule::Fifo,
            &seq,
            false,
        )
        .total_msgs();
    }
    let rnd_mean = rnd_total as f64 / seeds as f64;
    assert!(
        rnd_mean < rww as f64 * 0.9,
        "randomization should blunt the adversary: {rnd_mean} vs {rww}"
    );
}

// ---------- multi-attribute layer ----------

#[test]
fn multi_system_attributes_keep_per_attribute_invariants() {
    let mut sys = MultiSystem::new(oat::workloads::random_tree(10, 2), SumI64, RwwSpec);
    for i in 0..40u32 {
        let attr = ["a", "b", "c"][(i % 3) as usize];
        if i % 2 == 0 {
            sys.write(n(i % 10), attr, i as i64);
        } else {
            sys.read(n((i + 3) % 10), attr);
        }
    }
    for attr in ["a", "b", "c"] {
        let eng = sys.engine(attr).expect("attribute touched");
        invariants::check_all(eng, &SumI64).unwrap_or_else(|e| panic!("{attr}: {e}"));
        invariants::check_rww_i4(eng).unwrap_or_else(|e| panic!("{attr}: {e}"));
    }
}

// ---------- latency accounting ----------

#[test]
fn latency_never_exceeds_twice_messages_per_request() {
    // Each hop is a message, so a request's hop latency is at most its
    // message count; and on a path a cold combine is exactly all of them
    // sequential.
    let tree = Tree::path(8);
    let seq = oat::workloads::uniform(&tree, 200, 0.4, 6);
    let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
    for (lat, msgs) in res.per_request_latency.iter().zip(&res.per_request_msgs) {
        assert!((*lat as u64) <= *msgs, "latency {lat} > messages {msgs}");
    }
}

#[test]
fn star_reads_have_constant_latency_regardless_of_size() {
    for size in [8usize, 64, 256] {
        let tree = Tree::star(size);
        let seq = vec![Request::combine(n(1)), Request::combine(n(1))];
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        // Cold read: probe to hub (1), fan-out (2), responses (3), back
        // (4) — depth 4 regardless of leaf count; warm read: 0.
        assert_eq!(res.per_request_latency, vec![4, 0], "n = {size}");
    }
}

// ---------- the reliability assumption is load-bearing ----------

#[test]
fn dropping_one_update_causes_a_stale_read() {
    let tree = Tree::pair();
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
    // Lease from n0 to n1's side: combine at n1.
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    // A write at n0 sends an update n0 -> n1… which the "network" loses.
    eng.initiate_write(n(0), 42);
    let dropped = eng.drop_one(n(0), n(1));
    assert_eq!(dropped, Some(oat::core::message::MsgKind::Update));
    eng.run_to_quiescence();
    // n1's combine is now answered locally from the stale cached value.
    let v = match eng.initiate_combine(n(1)) {
        oat::core::mechanism::CombineOutcome::Done(v) => v,
        other => panic!("expected local (stale) answer, got {other:?}"),
    };
    assert_eq!(v, 0, "stale read: the write never arrived");
    assert_eq!(eng.global_oracle(), 42, "truth moved on");
    // Conclusion: strict consistency (Lemma 3.12) genuinely requires the
    // reliable-channel assumption of Section 2.
}
