//! Fuzz-style property tests for write-ahead-log recovery.
//!
//! The WAL (`oat::wal`) is the innermost parser of every byte a node
//! trusts across a process death, so its contract under damaged input
//! mirrors the frame codec's (`frame_fuzz.rs`): recovery returns a
//! state or an error, it never panics, and whatever it returns is a
//! *prefix* of what was appended — records up to the first torn or
//! corrupt frame apply, everything after is discarded and reported as
//! torn bytes, never half-applied. These properties drive truncations,
//! bit flips, garbage tails, and leftover/duplicate snapshot files
//! through both the pure replay fold and the on-disk recovery path.
//!
//! (Runs on the vendored offline `proptest` subset: no shrinking, but
//! deterministic per-test seeds, so any failure reproduces with plain
//! `cargo test`.)

use std::path::PathBuf;

use oat::wal::{
    encode_record, encode_snapshot, replay_log, Record, Wal, WalOptions, WalState, SNAP_MAGIC,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// An arbitrary valid record of any type, with bounded payloads.
fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        vec(any::<u8>(), 0..=24).prop_map(|val| Record::Write { val }),
        (any::<u32>(), 1u64..=500, 0u8..=2, vec(any::<u8>(), 0..=32)).prop_map(
            |(peer, seq, inner, body)| Record::Send {
                peer,
                seq,
                inner,
                body,
            }
        ),
        (any::<u32>(), 1u64..=500).prop_map(|(peer, rx_seq)| Record::Rx { peer, rx_seq }),
        (any::<u32>(), 1u64..=500).prop_map(|(peer, acked)| Record::Ack { peer, acked }),
        (any::<u32>(), 0u8..=3).prop_map(|(peer, bits)| Record::Lease { peer, bits }),
        (1u64..=64).prop_map(|epoch| Record::Epoch { epoch }),
    ]
}

/// Encodes `recs` as one contiguous log image.
fn encode_log(recs: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in recs {
        encode_record(rec, &mut buf);
    }
    buf
}

/// Folds a record prefix with the real replay (over an empty base).
fn fold_prefix(recs: &[Record], n: usize) -> WalState {
    replay_log(WalState::default(), &encode_log(&recs[..n])).state
}

/// Fresh per-case scratch directory under the system temp dir.
fn tmpdir(name: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "oat-wal-fuzz-{}-{}-{}",
        std::process::id(),
        name,
        case
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn replay_of_a_whole_log_is_identity(recs in vec(record_strategy(), 0..=12)) {
        // Every record encodes, replays, and folds: no torn bytes, no
        // skips, and the fold equals the full-prefix fold by definition.
        let replay = replay_log(WalState::default(), &encode_log(&recs));
        prop_assert_eq!(replay.records, recs.len() as u64);
        prop_assert_eq!(replay.torn_bytes, 0);
        prop_assert_eq!(replay.skipped, 0);
        prop_assert_eq!(replay.state, fold_prefix(&recs, recs.len()));
    }

    #[test]
    fn every_truncation_recovers_a_prefix(
        recs in vec(record_strategy(), 1..=10),
        cut in any::<usize>(),
    ) {
        // Chop the log anywhere: replay applies exactly the records whose
        // frames survived whole, reports the rest as the torn tail, and
        // the folded state is the fold of that record prefix — never a
        // half-applied record.
        let log = encode_log(&recs);
        let cut = cut % log.len(); // strictly shorter than the log
        let replay = replay_log(WalState::default(), &log[..cut]);
        let n = replay.records as usize;
        prop_assert!(n < recs.len(), "a cut log cannot hold every record");
        prop_assert_eq!(replay.valid_len + replay.torn_bytes, cut as u64);
        prop_assert_eq!(replay.state, fold_prefix(&recs, n), "cut at {}", cut);
    }

    #[test]
    fn bit_flips_never_panic_and_keep_the_prefix_property(
        recs in vec(record_strategy(), 1..=10),
        bit in any::<usize>(),
    ) {
        // Flip one bit anywhere. The CRC catches payload damage and stops
        // replay there; a flip in a length field reads as a short/oversized
        // or CRC-failing frame. Either way replay returns some record count
        // and never panics. (A flip can also strike a `skipped` future-tag
        // record's tag byte, so the fold is only pinned when nothing was
        // skipped and replay stopped at or before the flipped record.)
        let log = encode_log(&recs);
        let mut damaged = log.clone();
        let bit = bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        let replay = replay_log(WalState::default(), &damaged);
        prop_assert!(replay.records <= recs.len() as u64);
        if replay.skipped == 0 && damaged[..replay.valid_len as usize] == log[..replay.valid_len as usize] {
            prop_assert_eq!(replay.state, fold_prefix(&recs, replay.records as u64 as usize));
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in vec(any::<u8>(), 0..=512)) {
        // Raw noise as a log: replay decodes whatever frames the bytes
        // spell out, then discards the rest as torn. Progress is monotone
        // and accounted byte for byte.
        let replay = replay_log(WalState::default(), &bytes);
        prop_assert_eq!(replay.valid_len + replay.torn_bytes, bytes.len() as u64);
    }

    #[test]
    fn garbage_tail_after_a_valid_log_recovers_the_whole_prefix(
        recs in vec(record_strategy(), 1..=8),
        junk in vec(any::<u8>(), 1..=64),
    ) {
        // A crashed process leaves a valid prefix plus a torn/garbage
        // tail. Every whole record applies; the tail is reported, not
        // replayed. (If the junk happens to spell more valid frames,
        // replay legitimately reads past the prefix — only require at
        // least the prefix then.)
        let mut log = encode_log(&recs);
        let prefix_len = log.len() as u64;
        log.extend_from_slice(&junk);
        let replay = replay_log(WalState::default(), &log);
        prop_assert!(replay.records >= recs.len() as u64);
        if replay.records == recs.len() as u64 && replay.valid_len == prefix_len {
            prop_assert_eq!(replay.state, fold_prefix(&recs, recs.len()));
            prop_assert_eq!(replay.torn_bytes, junk.len() as u64);
        }
    }

    #[test]
    fn disk_recovery_survives_corrupt_and_duplicate_snapshot_files(
        recs in vec(record_strategy(), 0..=8),
        snap_junk in vec(any::<u8>(), 0..=96),
        case in any::<u64>(),
    ) {
        // The on-disk path: a log plus a *corrupt* `snap` (random bytes,
        // magic-prefixed to reach the decoder) and a leftover `snap.tmp`
        // from a crashed snapshot write. Recovery must not panic, must
        // ignore both damaged snapshot artifacts, and must replay the log
        // alone — and the tmp file must be cleaned up.
        let dir = tmpdir("snapdup", case);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("wal.log"), encode_log(&recs)).expect("write log");
        let mut snap = SNAP_MAGIC.to_vec();
        snap.extend_from_slice(&snap_junk);
        std::fs::write(dir.join("snap"), &snap).expect("write corrupt snap");
        std::fs::write(dir.join("snap.tmp"), &snap_junk).expect("write tmp snap");

        let mut wal = Wal::open(&dir, WalOptions::default()).expect("open");
        let rec = wal.recover().expect("recover never errors on damage");
        prop_assert_eq!(rec.records, recs.len() as u64);
        prop_assert_eq!(rec.state, fold_prefix(&recs, recs.len()));
        prop_assert!(!dir.join("snap.tmp").exists(), "tmp snapshot must be removed");
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_recovery_folds_snapshot_under_truncated_log(
        base in vec(record_strategy(), 1..=6),
        tail in vec(record_strategy(), 1..=6),
        cut in any::<usize>(),
        case in any::<u64>(),
    ) {
        // A *valid* snapshot (the fold of `base`) with a truncated log
        // tail on top: recovery seeds from the snapshot and replays the
        // surviving tail records — prefix semantics end to end.
        let snap_state = fold_prefix(&base, base.len());
        let log = encode_log(&tail);
        let cut = cut % (log.len() + 1); // may keep the whole tail
        let dir = tmpdir("snapcut", case);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("snap"), encode_snapshot(&snap_state)).expect("write snap");
        std::fs::write(dir.join("wal.log"), &log[..cut]).expect("write log");

        let mut wal = Wal::open(&dir, WalOptions::default()).expect("open");
        let rec = wal.recover().expect("recover");
        prop_assert!(rec.found, "a snapshot alone makes recovery non-empty");
        let n = rec.records as usize;
        prop_assert!(n <= tail.len());
        let want = replay_log(snap_state, &encode_log(&tail[..n])).state;
        prop_assert_eq!(rec.state, want, "cut at {}", cut);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
