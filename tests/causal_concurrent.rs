//! Theorem 4 end-to-end: lease-based algorithms are causally consistent
//! in concurrent executions — under seeded interleavings, under real
//! threads, and for every policy. Also demonstrates that strict
//! consistency genuinely fails under concurrency (so the causal guarantee
//! is not vacuous), and that the checker catches corrupted histories.

use oat::consistency::{check_causal, CausalViolation};
use oat::prelude::*;
use oat::sim::concurrent::run_concurrent;
use oat_core::ghost::{GhostReq, WriteRec};
use oat_core::policy::PolicySpec;
use oat_core::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(n: u32, len: usize, seed: u64, write_frac: f64) -> Vec<Request<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let node = NodeId(rng.gen_range(0..n));
            if rng.gen_bool(write_frac) {
                Request::write(node, i as i64 + 1)
            } else {
                Request::combine(node)
            }
        })
        .collect()
}

fn ghost_logs<S: PolicySpec>(
    res: &oat::sim::concurrent::ConcurrentResult<S, SumI64>,
) -> Vec<Vec<GhostReq<i64>>> {
    res.engine
        .tree()
        .nodes()
        .map(|u| {
            res.engine
                .node(u)
                .ghost()
                .expect("ghost enabled")
                .log
                .clone()
        })
        .collect::<Vec<_>>()
}

#[test]
fn interleaved_runs_are_causally_consistent_rww() {
    let tree = oat::workloads::random_tree(10, 3);
    for seed in 0..30u64 {
        let seq = workload(10, 100, seed, 0.5);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.75);
        let logs = ghost_logs(&res);
        check_causal(&SumI64, &logs)
            .unwrap_or_else(|v| panic!("seed {seed}: causal violation {v:?}"));
    }
}

#[test]
fn interleaved_runs_are_causally_consistent_other_policies() {
    let tree = Tree::kary(9, 2);
    for seed in 0..10u64 {
        let seq = workload(9, 80, seed, 0.5);

        let res = run_concurrent(&tree, SumI64, &AbSpec::new(2, 3), &seq, seed, 0.7);
        check_causal(&SumI64, &ghost_logs(&res)).expect("(2,3) causal");

        let res = run_concurrent(&tree, SumI64, &AlwaysLeaseSpec, &seq, seed, 0.7);
        check_causal(&SumI64, &ghost_logs(&res)).expect("AlwaysLease causal");

        let res = run_concurrent(&tree, SumI64, &NeverLeaseSpec, &seq, seed, 0.7);
        check_causal(&SumI64, &ghost_logs(&res)).expect("NeverLease causal");
    }
}

#[test]
fn strict_consistency_fails_under_heavy_overlap() {
    // The distinction matters: with aggressive overlap some combine must
    // eventually return a non-instantaneous value. (Not a theorem — but
    // over 40 seeds on a deep tree, overwhelmingly certain; if this ever
    // flakes, the mechanism became magically linearizable.)
    let tree = Tree::path(12);
    let mut misses = 0usize;
    for seed in 100..140u64 {
        let seq = workload(12, 120, seed, 0.6);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.9);
        misses += res.strict_misses();
    }
    assert!(
        misses > 0,
        "concurrent executions should exhibit strict-consistency misses"
    );
}

#[test]
fn threaded_runs_are_causally_consistent() {
    let tree = oat::workloads::random_tree(8, 17);
    for round in 0..5 {
        let seq = workload(8, 80, round as u64 + 50, 0.5);
        let res = oat::concurrent::run_threaded(&tree, SumI64, &RwwSpec, &seq, None);
        check_causal(&SumI64, &res.logs).unwrap_or_else(|v| panic!("round {round}: {v:?}"));
    }
}

#[test]
fn checker_rejects_reordered_logs() {
    // Sanity: corrupt a real history and ensure the checker notices.
    let tree = Tree::path(5);
    let seq = workload(5, 60, 9, 0.5);
    let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 9, 0.6);
    let mut logs = ghost_logs(&res);

    // Find a log with two writes from the same origin and swap them.
    let mut corrupted = false;
    'outer: for log in &mut logs {
        let idxs: Vec<usize> = log
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_write().map(|_| i))
            .collect();
        for a in 0..idxs.len() {
            for b in a + 1..idxs.len() {
                let (ia, ib) = (idxs[a], idxs[b]);
                let (na, nb) = match (&log[ia], &log[ib]) {
                    (GhostReq::Write(wa), GhostReq::Write(wb)) => (wa.node, wb.node),
                    _ => unreachable!(),
                };
                if na == nb {
                    log.swap(ia, ib);
                    corrupted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(corrupted, "workload produced no swappable write pair");
    let err = check_causal(&SumI64, &logs).unwrap_err();
    assert!(
        matches!(
            err,
            CausalViolation::OrderViolation { .. } | CausalViolation::ValueMismatch { .. }
        ),
        "unexpected violation kind: {err:?}"
    );
}

#[test]
fn checker_rejects_forged_write_values() {
    let tree = Tree::path(4);
    let seq = workload(4, 40, 21, 0.5);
    let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 21, 0.6);
    let mut logs = ghost_logs(&res);
    // Forge one write argument in one node's log only.
    let mut forged = false;
    'outer: for log in &mut logs {
        for e in log.iter_mut() {
            if let GhostReq::Write(WriteRec { arg, .. }) = e {
                *arg += 1_000_000;
                forged = true;
                break 'outer;
            }
        }
    }
    assert!(forged);
    let err = check_causal(&SumI64, &logs).unwrap_err();
    assert!(
        matches!(
            err,
            CausalViolation::WriteArgMismatch { .. } | CausalViolation::ValueMismatch { .. }
        ),
        "unexpected violation kind: {err:?}"
    );
}

#[test]
fn coalesced_combines_return_identical_values() {
    // All combines coalesced into one fan-out complete with one value.
    let tree = Tree::star(6);
    let mut seq = vec![Request::write(NodeId(1), 7)];
    for _ in 0..5 {
        seq.push(Request::combine(NodeId(0)));
    }
    let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 4, 1.0);
    let values: Vec<i64> = res
        .completions
        .iter()
        .filter_map(|c| match c {
            oat::sim::concurrent::Completion::Combine { value, .. } => Some(*value),
            _ => None,
        })
        .collect();
    assert_eq!(values.len(), 5);
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "coalesced combines must agree: {values:?}"
    );
}
