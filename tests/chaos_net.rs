//! Chaos parity: the TCP cluster under injected faults.
//!
//! The headline robustness property: a seeded workload replayed
//! sequentially (each request driven to completion and the network
//! drained before the next) returns **exactly the oracle value for
//! every combine**, even while the transport underneath drops,
//! duplicates and delays frames, has whole TCP connections killed
//! mid-run, and has a node's automaton crashed and restarted by its
//! supervisor. Strict consistency is the mechanism's contract; the
//! fault-recovery machinery (sequenced exactly-once edge links,
//! reconnect with retransmit, peer-reset + revoke cascade, client
//! timeout/retry) exists to uphold it, and this test is where that
//! claim is cashed in.
//!
//! Message *counts* are not compared under chaos — recovery traffic
//! (re-probes, resets, revokes) legitimately adds messages. The
//! fault-free parity suite (`net_parity.rs`) pins the counts; this
//! suite pins the values and the recovery bookkeeping.

use std::path::PathBuf;
use std::time::Duration;

use oat::core::agg::SumI64;
use oat::core::fault::{CrashNode, FaultPlan, KillConn};
use oat::core::policy::rww::RwwSpec;
use oat::core::request::{ReqOp, Request};
use oat::core::tree::{NodeId, Tree};
use oat::net::{Cluster, ClusterClient, DurabilityMode, NetConfig, TransportKind, WalConfig};
use oat::workloads::uniform;

/// Fresh per-test WAL directory under the system temp dir.
fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("oat-chaos-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Per-read client timeout. Far above one RTO (30 ms), so a retry means
/// real loss (a crashed waiter), not impatience with recovery latency.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(250);
/// Retries per blocking read before a client gives up (generous: the
/// test asserts completion, the timeout only bounds a true wedge).
const CLIENT_RETRIES: u32 = 120;
/// Per-request quiescence deadline.
const DRAIN: Duration = Duration::from_secs(30);

/// Replays `seq` sequentially against `cluster` with retrying clients,
/// asserting every combine returns the running oracle (sum of each
/// node's last written value). Returns the number of combines checked.
fn replay_against_oracle(cluster: &Cluster<SumI64>, seq: &[Request<i64>]) -> usize {
    let tree = cluster.tree();
    let mut clients: Vec<Option<ClusterClient<i64>>> = (0..tree.len()).map(|_| None).collect();
    let mut last = vec![0i64; tree.len()];
    let mut combines = 0;
    for (i, q) in seq.iter().enumerate() {
        let slot = &mut clients[q.node.idx()];
        let client = match slot {
            Some(c) => c,
            None => {
                let mut c = cluster.client(q.node).expect("client connect");
                c.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)
                    .expect("arm timeout");
                slot.insert(c)
            }
        };
        match &q.op {
            ReqOp::Write(v) => {
                client
                    .write(*v)
                    .unwrap_or_else(|e| panic!("request {i}: write failed: {e}"));
                last[q.node.idx()] = *v;
            }
            ReqOp::Combine => {
                let got = client
                    .combine()
                    .unwrap_or_else(|e| panic!("request {i}: combine failed: {e}"));
                let want: i64 = last.iter().sum();
                assert_eq!(
                    got, want,
                    "request {i}: combine at {:?} diverged from the oracle",
                    q.node
                );
                combines += 1;
            }
        }
        assert!(
            cluster.quiesce_for(DRAIN),
            "request {i}: cluster failed to drain within {DRAIN:?}"
        );
    }
    combines
}

#[test]
fn full_chaos_run_matches_the_sequential_oracle() {
    // The acceptance scenario: probabilistic drop/duplicate/delay on
    // every edge, two scheduled connection kills on distinct tree
    // edges, and one non-root node crashed mid-run — every combine
    // must still equal the oracle and the cluster must quiesce.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 90, 0.5, 0xC0DE);
    let plan = FaultPlan {
        seed: 7,
        drop_p: 0.05,
        dup_p: 0.05,
        delay_p: 0.05,
        // Root edges carry traffic in any workload, so small frame
        // thresholds guarantee both kills actually fire.
        kills: vec![
            KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 3,
            },
            KillConn {
                from: NodeId(2),
                to: NodeId(0),
                after_frames: 4,
            },
        ],
        // Node 2 is internal (children 7, 8, 9) and not the root.
        crashes: vec![CrashNode {
            node: NodeId(2),
            after_delivered: 5,
        }],
        ..FaultPlan::default()
    };

    let cluster =
        Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn chaos");
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines > 10, "workload must actually exercise combines");

    // The injection ledger records what was actually done to the run.
    let (drops, dups, delays, kills, crashes) = cluster.injected().snapshot();
    assert_eq!(kills, 2, "both scheduled connection kills must fire");
    assert_eq!(crashes, 1, "the scheduled crash must fire");
    assert!(
        drops + dups + delays > 0,
        "probabilistic faults must have fired on a run this size"
    );

    // Per-node metrics must surface the recovery work while the
    // cluster is still alive (metrics_json is the operator's view).
    let m2 = cluster.node_metrics(NodeId(2)).expect("metrics node 2");
    assert_eq!(m2.restarts, 1, "node 2 was crashed exactly once");
    let json = cluster.metrics_json().expect("metrics json");
    assert!(json.contains("\"restarts\": 1"));
    // Exactly-once delivery: every injected duplicate was discarded by
    // a receiving sequencer (kill-replay overlap may add more).
    let mut dup_drops = 0;
    for u in tree.nodes() {
        dup_drops += cluster.node_metrics(u).expect("metrics").dup_drops;
    }
    assert!(
        dup_drops >= dups,
        "sequencers must have dropped all {dups} injected duplicates (saw {dup_drops})"
    );

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    assert_eq!(report.faults.restarts, 1);
    // Each kill severs one TCP connection, which is then re-dialed and
    // re-accepted: at least one reconnect per kill, possibly counted on
    // both endpoints.
    assert!(
        report.faults.reconnects >= 2,
        "both killed connections must come back (saw {})",
        report.faults.reconnects
    );
    // Dropped/delayed first transmissions and kill-lost buffers are all
    // recovered through retransmission.
    assert!(
        report.faults.retransmits > 0,
        "injected loss must show up as retransmits"
    );
}

#[test]
fn chaos_run_matches_the_oracle_on_every_transport() {
    // The fault seams sit *above* the byte pipe (the injector acts on
    // sequenced sends, the kill severs the stream object), so drop,
    // duplicate, delay, and connection-kill must all fire — and all be
    // recovered from — identically on TCP, Unix sockets, and the
    // in-process SPSC ring. The ring honoring the injectors is the
    // point: a transport with no kernel underneath still misbehaves on
    // demand.
    for transport in [TransportKind::Tcp, TransportKind::Uds, TransportKind::Ring] {
        let name = transport.name();
        let tree = Tree::kary(10, 3);
        let seq = uniform(&tree, 70, 0.5, 0x5AFE);
        let plan = FaultPlan {
            seed: 31,
            drop_p: 0.05,
            dup_p: 0.05,
            delay_p: 0.05,
            // A root edge carries traffic in any workload, so a small
            // frame threshold guarantees the kill actually fires.
            kills: vec![KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 3,
            }],
            ..FaultPlan::default()
        };
        let cfg = NetConfig {
            transport,
            ..NetConfig::default()
        };
        let cluster = Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, plan, cfg)
            .unwrap_or_else(|e| panic!("{name}: spawn failed: {e}"));
        let combines = replay_against_oracle(&cluster, &seq);
        assert!(combines > 5, "{name}: workload must exercise combines");

        let (drops, dups, delays, kills, _) = cluster.injected().snapshot();
        assert_eq!(kills, 1, "{name}: the scheduled connection kill must fire");
        assert!(
            drops + dups + delays > 0,
            "{name}: probabilistic faults must have fired on a run this size"
        );

        let report = cluster.shutdown();
        assert!(
            report.dead_nodes.is_empty(),
            "{name}: no node may stay wedged"
        );
        assert!(
            report.faults.reconnects >= 1,
            "{name}: the killed connection must come back (saw {})",
            report.faults.reconnects
        );
        assert!(
            report.faults.retransmits > 0,
            "{name}: injected loss must show up as retransmits"
        );
    }
}

#[test]
fn crash_only_chaos_preserves_written_state() {
    // Crash-restart in isolation (no link faults): a node is killed
    // after its writes have propagated; the supervisor restores its
    // durable value, neighbours revoke and re-probe, and combines
    // keep returning the oracle.
    let tree = Tree::path(5);
    let plan = FaultPlan {
        seed: 11,
        crashes: vec![CrashNode {
            node: NodeId(2),
            after_delivered: 2,
        }],
        ..FaultPlan::default()
    };
    let cluster = Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn");

    let mut seq = Vec::new();
    for u in 0..5 {
        seq.push(Request::write(NodeId(u), (u as i64 + 1) * 10));
    }
    // Combines at the endpoints force full-path fan-outs through the
    // crash site, before and after the crash fires.
    for _ in 0..6 {
        seq.push(Request::combine(NodeId(0)));
        seq.push(Request::combine(NodeId(4)));
    }
    seq.push(Request::write(NodeId(2), -7));
    seq.push(Request::combine(NodeId(0)));

    let combines = replay_against_oracle(&cluster, &seq);
    assert_eq!(combines, 13);

    let (_, _, _, kills, crashes) = cluster.injected().snapshot();
    assert_eq!((kills, crashes), (0, 1));
    let report = cluster.shutdown();
    assert_eq!(report.faults.restarts, 1);
    assert_eq!(report.faults.reconnects, 0, "no connection was killed");
    assert!(report.dead_nodes.is_empty());
}

#[test]
fn root_crash_chaos_preserves_written_state() {
    // The root is special: it grants leases downward and anchors every
    // full-tree fan-out, so crashing it exercises the revoke cascade
    // from the top. Same contract as any other crash: durable values
    // survive, combines keep matching the oracle, nothing wedges.
    let tree = Tree::path(5);
    let plan = FaultPlan {
        seed: 17,
        crashes: vec![CrashNode {
            node: NodeId(0),
            after_delivered: 2,
        }],
        ..FaultPlan::default()
    };
    let cluster = Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn");

    let mut seq = Vec::new();
    for u in 0..5 {
        seq.push(Request::write(NodeId(u), (u as i64 + 1) * 100));
    }
    for _ in 0..6 {
        seq.push(Request::combine(NodeId(4)));
        seq.push(Request::combine(NodeId(0)));
    }
    seq.push(Request::write(NodeId(0), -3));
    seq.push(Request::combine(NodeId(4)));

    let combines = replay_against_oracle(&cluster, &seq);
    assert_eq!(combines, 13);

    let (_, _, _, kills, crashes) = cluster.injected().snapshot();
    assert_eq!((kills, crashes), (0, 1));
    let report = cluster.shutdown();
    assert_eq!(report.faults.restarts, 1);
    assert_eq!(report.faults.kill9s, 0);
    assert!(report.dead_nodes.is_empty());
}

#[test]
fn kill9_chaos_with_wal_recovers_and_matches_the_oracle() {
    // The durability acceptance scenario: probabilistic drops and
    // duplicates on every edge, one connection kill, and two process
    // kills — the root and an internal node — with state recovered
    // from the write-ahead log. Every combine must still equal the
    // oracle, and the ledger, per-node metrics, and cluster report
    // must agree on what happened.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 90, 0.5, 0xD15C);
    let wal_dir = tmpdir("kill9-accept");
    let plan = FaultPlan {
        seed: 23,
        drop_p: 0.05,
        dup_p: 0.05,
        kills: vec![KillConn {
            from: NodeId(0),
            to: NodeId(1),
            after_frames: 3,
        }],
        // Node 0 is the root; node 2 is internal (children 7, 8, 9).
        kill9s: vec![
            CrashNode {
                node: NodeId(0),
                after_delivered: 6,
            },
            CrashNode {
                node: NodeId(2),
                after_delivered: 5,
            },
        ],
        ..FaultPlan::default()
    };
    let cfg = NetConfig {
        durability: DurabilityMode::Wal(WalConfig::new(&wal_dir)),
        ..NetConfig::default()
    };
    let cluster =
        Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, plan, cfg).expect("spawn kill9");
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines > 10, "workload must actually exercise combines");

    let (kill9s, _, _) = cluster.injected().snapshot_process();
    assert_eq!(kill9s, 2, "both scheduled process kills must fire");
    let (_, dups, _, kills, crashes) = cluster.injected().snapshot();
    assert_eq!(kills, 1);
    assert_eq!(crashes, 0);
    assert!(dups > 0, "duplicates must have fired on a run this size");

    // Per-node metrics surface the process kill and the WAL work.
    let m2 = cluster.node_metrics(NodeId(2)).expect("metrics node 2");
    assert_eq!(m2.kill9s, 1, "node 2 was process-killed exactly once");
    assert_eq!(m2.restarts, 1, "a kill9 counts as a restart");
    assert_eq!(m2.wal_replays, 1, "recovery replayed the node's log");
    assert!(m2.wal_records > 0 && m2.wal_fsyncs > 0);
    let json = cluster.metrics_json().expect("metrics json");
    assert!(json.contains("\"kill9s\": 1"));

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    assert_eq!(report.faults.kill9s, 2);
    assert_eq!(
        report.faults.restarts, 2,
        "restarts must equal crashes + kill9s"
    );
    // The WAL directory was fresh, so cold start found nothing: every
    // replay on the books is a kill9 recovery.
    assert_eq!(report.wal.replays, 2);
    assert!(report.wal.records > 0 && report.wal.fsyncs > 0);
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn torn_tail_recovery_converges_with_bounded_loss() {
    // A machine crash that loses the page cache: the torn-tail fault
    // chops unsynced bytes off the log at recovery. Acked writes force
    // fsync so they survive; what tears is link bookkeeping, which the
    // hello fast-forward heals on reconnect. The run must still match
    // the oracle, and the loss must be bounded and on the ledger.
    let tree = Tree::path(5);
    let wal_dir = tmpdir("torn-tail");
    let plan = FaultPlan {
        seed: 29,
        kill9s: vec![CrashNode {
            node: NodeId(2),
            after_delivered: 4,
        }],
        torn_tail_max: 64,
        ..FaultPlan::default()
    };
    // A huge group-commit batch keeps link records unsynced, so the
    // torn-tail fault is guaranteed material to chop at the kill.
    let cfg = NetConfig {
        durability: DurabilityMode::Wal(WalConfig {
            dir: wal_dir.clone(),
            fsync_every: 10_000,
            snapshot_every: 1_000_000,
        }),
        ..NetConfig::default()
    };
    let cluster =
        Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, plan, cfg).expect("spawn torn");

    // Two cold full-path combines push node 2 past the kill threshold
    // on pure link traffic (probes/responses, no local writes), then
    // writes and combines check recovery end to end.
    let mut seq = vec![Request::combine(NodeId(0)), Request::combine(NodeId(4))];
    for u in 0..5 {
        seq.push(Request::write(NodeId(u), (u as i64 + 1) * 11));
    }
    for _ in 0..4 {
        seq.push(Request::combine(NodeId(0)));
        seq.push(Request::combine(NodeId(4)));
    }
    let combines = replay_against_oracle(&cluster, &seq);
    assert_eq!(combines, 10);

    let (kill9s, torn_tails, _) = cluster.injected().snapshot_process();
    assert_eq!(kill9s, 1, "the scheduled process kill must fire");
    assert_eq!(torn_tails, 1, "recovery must have torn the unsynced tail");
    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty());
    assert_eq!(report.wal.torn_events, 1);
    assert!(
        report.wal.torn_bytes >= 1 && report.wal.torn_bytes <= 64,
        "discarded tail must be bounded by torn_tail_max (got {})",
        report.wal.torn_bytes
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn cold_start_replays_the_wal_across_cluster_spawns() {
    // Durability across process lifetimes: a cluster writes values and
    // shuts down; a second cluster spawned on the same WAL directory
    // recovers every node's durable value at cold start and serves the
    // same total.
    let tree = Tree::path(3);
    let wal_dir = tmpdir("cold-start");
    let cfg = NetConfig {
        durability: DurabilityMode::Wal(WalConfig::new(&wal_dir)),
        ..NetConfig::default()
    };

    let cluster = Cluster::spawn_with(
        &tree,
        SumI64,
        &RwwSpec,
        false,
        FaultPlan::default(),
        cfg.clone(),
    )
    .expect("spawn first incarnation");
    for u in 0..3 {
        let mut c = cluster.client(NodeId(u)).expect("client");
        c.write((u as i64 + 1) * 100).expect("write");
    }
    cluster.quiesce();
    let mut c = cluster.client(NodeId(0)).expect("client");
    assert_eq!(c.combine().expect("combine"), 600);
    cluster.quiesce();
    drop(c);
    let report = cluster.shutdown();
    assert!(report.wal.records > 0, "writes must have hit the log");

    let cluster = Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
        .expect("spawn second incarnation");
    assert!(
        cluster.quiesce_for(DRAIN),
        "cold-start resets must drain before serving"
    );
    let mut c = cluster.client(NodeId(2)).expect("client");
    c.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)
        .expect("arm timeout");
    assert_eq!(
        c.combine().expect("combine after cold start"),
        600,
        "recovered durable values must reproduce the pre-shutdown total"
    );
    cluster.quiesce();
    drop(c);
    let report = cluster.shutdown();
    assert_eq!(
        report.wal.replays, 3,
        "every node must have replayed its log at cold start"
    );
    assert!(report.dead_nodes.is_empty());
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn empty_fault_plan_is_free_and_ledger_stays_zero() {
    // spawn_with_faults(empty) must behave exactly like spawn: zero
    // injected events, zero recovery work, counts identical to the
    // fault-free run (net_parity.rs pins those against the simulator).
    let tree = Tree::star(6);
    let seq = uniform(&tree, 40, 0.5, 0xFACE);
    let cluster = Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, FaultPlan::default())
        .expect("spawn");
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines > 0);
    assert_eq!(cluster.injected().snapshot(), (0, 0, 0, 0, 0));
    let report = cluster.shutdown();
    assert_eq!(report.faults, oat::net::FaultCounters::default());
    assert_eq!(report.abandoned, 0);
    assert!(report.dead_nodes.is_empty());
}

#[test]
fn multi_client_pipelined_replay_answers_every_request() {
    // The M-clients-per-node driver on a reliable substrate: every
    // request answered, every message delivered, combine count intact.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 120, 0.5, 0x3C3C);
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();
    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).expect("spawn");
    let pipe = cluster.replay_pipelined_multi(&seq, 4, 3).expect("replay");
    cluster.quiesce();
    assert_eq!(pipe.combines.len(), expected_combines);
    for w in pipe.combines.windows(2) {
        assert!(w[0].0 < w[1].0, "combine indices sorted and unique");
    }
    assert_eq!(pipe.latencies.len(), seq.len());
    let report = cluster.shutdown();
    assert_eq!(report.delivered, report.stats.total());
}

#[test]
fn concurrent_pipelined_chaos_is_causally_consistent() {
    // The concurrent chaos oracle (satellite of the observability PR):
    // strict oracle equality is only defined for sequential replays, so
    // the pipelined driver under faults is checked against the paper's
    // *causal* consistency criterion instead (Theorem 4, Section 5).
    // Ghost logs record every node's gather-write history; the checker
    // rebuilds gwlog/gwlog' and validates value compatibility, write
    // coherence, serialization, and causal order. Crash faults are
    // excluded — a restart discards the crashed node's ghost log, which
    // would void the serialization bookkeeping, not the property.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 150, 0.5, 0xBEEF);
    let plan = FaultPlan {
        seed: 13,
        drop_p: 0.04,
        dup_p: 0.04,
        delay_p: 0.04,
        // Root edges carry traffic in any workload; tiny thresholds
        // guarantee both kills fire even though leases keep the total
        // frame count low.
        kills: vec![
            KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 2,
            },
            KillConn {
                from: NodeId(2),
                to: NodeId(0),
                after_frames: 3,
            },
        ],
        crashes: Vec::new(),
        ..FaultPlan::default()
    };
    let cluster =
        Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, true, plan).expect("spawn chaos");
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();
    // Two clients per active node, four requests in flight each: real
    // concurrency — cross-node order is free and per-node order is only
    // FIFO within each client's share.
    let pipe = cluster
        .replay_pipelined_multi(&seq, 4, 2)
        .expect("pipelined replay under faults");
    assert_eq!(
        pipe.combines.len(),
        expected_combines,
        "every combine must complete despite injected faults"
    );
    assert!(
        cluster.quiesce_for(DRAIN),
        "cluster failed to drain after pipelined chaos"
    );

    let (drops, dups, delays, kills, _) = cluster.injected().snapshot();
    assert_eq!(kills, 2, "both scheduled kills must fire");
    assert!(
        drops + dups + delays > 0,
        "probabilistic faults must have fired on a run this size"
    );

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    let logs = report
        .logs
        .expect("ghost logs survive a crash-free chaos run");
    let causal = oat::consistency::check_causal(&SumI64, &logs)
        .unwrap_or_else(|v| panic!("causal consistency violated under concurrent chaos: {v:?}"));
    // Concurrent combines at a node coalesce onto one in-flight fan-out
    // (T1's `Coalesced` outcome), so the log holds between 1 and
    // `expected_combines` gathers. Every write is logged exactly once.
    assert!(
        causal.gathers >= 1 && causal.gathers <= expected_combines,
        "gather count out of range: {causal:?}"
    );
    let expected_writes = seq.len() - expected_combines;
    assert_eq!(causal.writes, expected_writes);
    assert!(
        causal.checked_pairs > 0,
        "the checker must have validated real work: {causal:?}"
    );
}
