//! Chaos parity: the TCP cluster under injected faults.
//!
//! The headline robustness property: a seeded workload replayed
//! sequentially (each request driven to completion and the network
//! drained before the next) returns **exactly the oracle value for
//! every combine**, even while the transport underneath drops,
//! duplicates and delays frames, has whole TCP connections killed
//! mid-run, and has a node's automaton crashed and restarted by its
//! supervisor. Strict consistency is the mechanism's contract; the
//! fault-recovery machinery (sequenced exactly-once edge links,
//! reconnect with retransmit, peer-reset + revoke cascade, client
//! timeout/retry) exists to uphold it, and this test is where that
//! claim is cashed in.
//!
//! Message *counts* are not compared under chaos — recovery traffic
//! (re-probes, resets, revokes) legitimately adds messages. The
//! fault-free parity suite (`net_parity.rs`) pins the counts; this
//! suite pins the values and the recovery bookkeeping.

use std::time::Duration;

use oat::core::agg::SumI64;
use oat::core::fault::{CrashNode, FaultPlan, KillConn};
use oat::core::policy::rww::RwwSpec;
use oat::core::request::{ReqOp, Request};
use oat::core::tree::{NodeId, Tree};
use oat::net::{Cluster, ClusterClient};
use oat::workloads::uniform;

/// Per-read client timeout. Far above one RTO (30 ms), so a retry means
/// real loss (a crashed waiter), not impatience with recovery latency.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(250);
/// Retries per blocking read before a client gives up (generous: the
/// test asserts completion, the timeout only bounds a true wedge).
const CLIENT_RETRIES: u32 = 120;
/// Per-request quiescence deadline.
const DRAIN: Duration = Duration::from_secs(30);

/// Replays `seq` sequentially against `cluster` with retrying clients,
/// asserting every combine returns the running oracle (sum of each
/// node's last written value). Returns the number of combines checked.
fn replay_against_oracle(cluster: &Cluster<SumI64>, seq: &[Request<i64>]) -> usize {
    let tree = cluster.tree();
    let mut clients: Vec<Option<ClusterClient<i64>>> = (0..tree.len()).map(|_| None).collect();
    let mut last = vec![0i64; tree.len()];
    let mut combines = 0;
    for (i, q) in seq.iter().enumerate() {
        let slot = &mut clients[q.node.idx()];
        let client = match slot {
            Some(c) => c,
            None => {
                let mut c = cluster.client(q.node).expect("client connect");
                c.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)
                    .expect("arm timeout");
                slot.insert(c)
            }
        };
        match &q.op {
            ReqOp::Write(v) => {
                client
                    .write(*v)
                    .unwrap_or_else(|e| panic!("request {i}: write failed: {e}"));
                last[q.node.idx()] = *v;
            }
            ReqOp::Combine => {
                let got = client
                    .combine()
                    .unwrap_or_else(|e| panic!("request {i}: combine failed: {e}"));
                let want: i64 = last.iter().sum();
                assert_eq!(
                    got, want,
                    "request {i}: combine at {:?} diverged from the oracle",
                    q.node
                );
                combines += 1;
            }
        }
        assert!(
            cluster.quiesce_for(DRAIN),
            "request {i}: cluster failed to drain within {DRAIN:?}"
        );
    }
    combines
}

#[test]
fn full_chaos_run_matches_the_sequential_oracle() {
    // The acceptance scenario: probabilistic drop/duplicate/delay on
    // every edge, two scheduled connection kills on distinct tree
    // edges, and one non-root node crashed mid-run — every combine
    // must still equal the oracle and the cluster must quiesce.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 90, 0.5, 0xC0DE);
    let plan = FaultPlan {
        seed: 7,
        drop_p: 0.05,
        dup_p: 0.05,
        delay_p: 0.05,
        // Root edges carry traffic in any workload, so small frame
        // thresholds guarantee both kills actually fire.
        kills: vec![
            KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 3,
            },
            KillConn {
                from: NodeId(2),
                to: NodeId(0),
                after_frames: 4,
            },
        ],
        // Node 2 is internal (children 7, 8, 9) and not the root.
        crashes: vec![CrashNode {
            node: NodeId(2),
            after_delivered: 5,
        }],
    };

    let cluster =
        Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn chaos");
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines > 10, "workload must actually exercise combines");

    // The injection ledger records what was actually done to the run.
    let (drops, dups, delays, kills, crashes) = cluster.injected().snapshot();
    assert_eq!(kills, 2, "both scheduled connection kills must fire");
    assert_eq!(crashes, 1, "the scheduled crash must fire");
    assert!(
        drops + dups + delays > 0,
        "probabilistic faults must have fired on a run this size"
    );

    // Per-node metrics must surface the recovery work while the
    // cluster is still alive (metrics_json is the operator's view).
    let m2 = cluster.node_metrics(NodeId(2)).expect("metrics node 2");
    assert_eq!(m2.restarts, 1, "node 2 was crashed exactly once");
    let json = cluster.metrics_json().expect("metrics json");
    assert!(json.contains("\"restarts\": 1"));
    // Exactly-once delivery: every injected duplicate was discarded by
    // a receiving sequencer (kill-replay overlap may add more).
    let mut dup_drops = 0;
    for u in tree.nodes() {
        dup_drops += cluster.node_metrics(u).expect("metrics").dup_drops;
    }
    assert!(
        dup_drops >= dups,
        "sequencers must have dropped all {dups} injected duplicates (saw {dup_drops})"
    );

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    assert_eq!(report.faults.restarts, 1);
    // Each kill severs one TCP connection, which is then re-dialed and
    // re-accepted: at least one reconnect per kill, possibly counted on
    // both endpoints.
    assert!(
        report.faults.reconnects >= 2,
        "both killed connections must come back (saw {})",
        report.faults.reconnects
    );
    // Dropped/delayed first transmissions and kill-lost buffers are all
    // recovered through retransmission.
    assert!(
        report.faults.retransmits > 0,
        "injected loss must show up as retransmits"
    );
}

#[test]
fn crash_only_chaos_preserves_written_state() {
    // Crash-restart in isolation (no link faults): a node is killed
    // after its writes have propagated; the supervisor restores its
    // durable value, neighbours revoke and re-probe, and combines
    // keep returning the oracle.
    let tree = Tree::path(5);
    let plan = FaultPlan {
        seed: 11,
        crashes: vec![CrashNode {
            node: NodeId(2),
            after_delivered: 2,
        }],
        ..FaultPlan::default()
    };
    let cluster = Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, plan).expect("spawn");

    let mut seq = Vec::new();
    for u in 0..5 {
        seq.push(Request::write(NodeId(u), (u as i64 + 1) * 10));
    }
    // Combines at the endpoints force full-path fan-outs through the
    // crash site, before and after the crash fires.
    for _ in 0..6 {
        seq.push(Request::combine(NodeId(0)));
        seq.push(Request::combine(NodeId(4)));
    }
    seq.push(Request::write(NodeId(2), -7));
    seq.push(Request::combine(NodeId(0)));

    let combines = replay_against_oracle(&cluster, &seq);
    assert_eq!(combines, 13);

    let (_, _, _, kills, crashes) = cluster.injected().snapshot();
    assert_eq!((kills, crashes), (0, 1));
    let report = cluster.shutdown();
    assert_eq!(report.faults.restarts, 1);
    assert_eq!(report.faults.reconnects, 0, "no connection was killed");
    assert!(report.dead_nodes.is_empty());
}

#[test]
fn empty_fault_plan_is_free_and_ledger_stays_zero() {
    // spawn_with_faults(empty) must behave exactly like spawn: zero
    // injected events, zero recovery work, counts identical to the
    // fault-free run (net_parity.rs pins those against the simulator).
    let tree = Tree::star(6);
    let seq = uniform(&tree, 40, 0.5, 0xFACE);
    let cluster = Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, false, FaultPlan::default())
        .expect("spawn");
    let combines = replay_against_oracle(&cluster, &seq);
    assert!(combines > 0);
    assert_eq!(cluster.injected().snapshot(), (0, 0, 0, 0, 0));
    let report = cluster.shutdown();
    assert_eq!(report.faults, oat::net::FaultCounters::default());
    assert_eq!(report.abandoned, 0);
    assert!(report.dead_nodes.is_empty());
}

#[test]
fn multi_client_pipelined_replay_answers_every_request() {
    // The M-clients-per-node driver on a reliable substrate: every
    // request answered, every message delivered, combine count intact.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 120, 0.5, 0x3C3C);
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();
    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).expect("spawn");
    let pipe = cluster.replay_pipelined_multi(&seq, 4, 3).expect("replay");
    cluster.quiesce();
    assert_eq!(pipe.combines.len(), expected_combines);
    for w in pipe.combines.windows(2) {
        assert!(w[0].0 < w[1].0, "combine indices sorted and unique");
    }
    assert_eq!(pipe.latencies.len(), seq.len());
    let report = cluster.shutdown();
    assert_eq!(report.delivered, report.stats.total());
}

#[test]
fn concurrent_pipelined_chaos_is_causally_consistent() {
    // The concurrent chaos oracle (satellite of the observability PR):
    // strict oracle equality is only defined for sequential replays, so
    // the pipelined driver under faults is checked against the paper's
    // *causal* consistency criterion instead (Theorem 4, Section 5).
    // Ghost logs record every node's gather-write history; the checker
    // rebuilds gwlog/gwlog' and validates value compatibility, write
    // coherence, serialization, and causal order. Crash faults are
    // excluded — a restart discards the crashed node's ghost log, which
    // would void the serialization bookkeeping, not the property.
    let tree = Tree::kary(10, 3);
    let seq = uniform(&tree, 150, 0.5, 0xBEEF);
    let plan = FaultPlan {
        seed: 13,
        drop_p: 0.04,
        dup_p: 0.04,
        delay_p: 0.04,
        // Root edges carry traffic in any workload; tiny thresholds
        // guarantee both kills fire even though leases keep the total
        // frame count low.
        kills: vec![
            KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 2,
            },
            KillConn {
                from: NodeId(2),
                to: NodeId(0),
                after_frames: 3,
            },
        ],
        crashes: Vec::new(),
    };
    let cluster =
        Cluster::spawn_with_faults(&tree, SumI64, &RwwSpec, true, plan).expect("spawn chaos");
    let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();
    // Two clients per active node, four requests in flight each: real
    // concurrency — cross-node order is free and per-node order is only
    // FIFO within each client's share.
    let pipe = cluster
        .replay_pipelined_multi(&seq, 4, 2)
        .expect("pipelined replay under faults");
    assert_eq!(
        pipe.combines.len(),
        expected_combines,
        "every combine must complete despite injected faults"
    );
    assert!(
        cluster.quiesce_for(DRAIN),
        "cluster failed to drain after pipelined chaos"
    );

    let (drops, dups, delays, kills, _) = cluster.injected().snapshot();
    assert_eq!(kills, 2, "both scheduled kills must fire");
    assert!(
        drops + dups + delays > 0,
        "probabilistic faults must have fired on a run this size"
    );

    let report = cluster.shutdown();
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    let logs = report
        .logs
        .expect("ghost logs survive a crash-free chaos run");
    let causal = oat::consistency::check_causal(&SumI64, &logs)
        .unwrap_or_else(|v| panic!("causal consistency violated under concurrent chaos: {v:?}"));
    // Concurrent combines at a node coalesce onto one in-flight fan-out
    // (T1's `Coalesced` outcome), so the log holds between 1 and
    // `expected_combines` gathers. Every write is logged exactly once.
    assert!(
        causal.gathers >= 1 && causal.gathers <= expected_combines,
        "gather count out of range: {causal:?}"
    );
    let expected_writes = seq.len() - expected_combines;
    assert_eq!(causal.writes, expected_writes);
    assert!(
        causal.checked_pairs > 0,
        "the checker must have validated real work: {causal:?}"
    );
}
