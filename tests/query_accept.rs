//! Acceptance tests for the progressive query layer (`oat-query`):
//! the same declarative query converges to the sequential oracle on
//! all three transports, and a kill9 chaos run never regresses its
//! partial sequence.

use oat::core::agg::SumI64;
use oat::core::fault::{CrashNode, FaultPlan};
use oat::core::policy::rww::RwwSpec;
use oat::core::tree::{NodeId, Tree};
use oat::net::{Cluster, DurabilityMode, NetConfig, TransportKind, WalConfig};
use oat::query::{run, QuerySpec};
use oat::workloads::facts::zipf_facts;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("oat-query-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The ISSUE acceptance scenario: `sum group by key window
/// tumbling(100ms)` over a seeded zipf fact stream emits at least three
/// progressively refined partials per key whose finals match the
/// sequential oracle exactly, with monotone coverage — on every
/// transport.
#[test]
fn tumbling_group_by_accepts_on_all_three_transports() {
    let tree = Tree::kary(5, 2);
    let spec: QuerySpec = "sum group by key window tumbling(100ms)".parse().unwrap();
    // 4 ms gaps: 25 facts per 100 ms window, 6 windows over the run.
    let facts = zipf_facts(150, 3, 1.2, 4, 0xACC);
    for transport in [TransportKind::Tcp, TransportKind::Uds, TransportKind::Ring] {
        let cfg = NetConfig {
            transport,
            ..NetConfig::default()
        };
        let cluster =
            Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
                .unwrap_or_else(|e| panic!("spawn {}: {e}", transport.name()));
        let result = run(&cluster, &spec, &facts)
            .unwrap_or_else(|e| panic!("query on {}: {e}", transport.name()));
        let t = transport.name();
        assert!(result.matches_oracle(&facts), "{t}: finals diverge");
        assert!(result.coverage_monotone(), "{t}: coverage regressed");
        assert!(result.refine_seq_monotone(), "{t}: refine_seq regressed");
        assert!(
            result.min_partials_per_key() >= 3,
            "{t}: a key refined fewer than 3 times ({})",
            result.min_partials_per_key()
        );
        assert!(
            result.finals.len() > 3,
            "{t}: tumbling must finalize several (key, window) pairs"
        );
        assert!(result.stats.pushes_rx > 0, "{t}: no pushed refinements");
    }
}

/// Kill9 chaos: two process kills mid-stream. Forest state is volatile,
/// so the killed nodes lose their per-tree values — the engine's
/// settlement heal re-writes the absolute shard accumulators and finals
/// still equal the oracle. The partial sequence (coverage, per-key
/// refinement seq) never regresses across the kills.
#[test]
fn kill9_chaos_partials_never_regress_and_finals_stay_exact() {
    let tree = Tree::kary(7, 2);
    let spec: QuerySpec = "sum group by key".parse().unwrap();
    let facts = zipf_facts(120, 3, 1.2, 2, 0x9111);
    let wal_dir = tmpdir("kill9");
    let plan = FaultPlan {
        seed: 7,
        kill9s: vec![
            CrashNode {
                node: NodeId(1),
                after_delivered: 10,
            },
            CrashNode {
                node: NodeId(2),
                after_delivered: 20,
            },
        ],
        ..FaultPlan::default()
    };
    let cfg = NetConfig {
        durability: DurabilityMode::Wal(WalConfig::new(&wal_dir)),
        ..NetConfig::default()
    };
    let cluster =
        Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, plan, cfg).expect("spawn kill9");
    let result = run(&cluster, &spec, &facts).expect("query under kill9");

    let (kill9s, _, _) = cluster.injected().snapshot_process();
    assert_eq!(kill9s, 2, "both scheduled process kills must fire");
    assert!(result.matches_oracle(&facts), "heal must restore exactness");
    assert!(
        result.coverage_monotone(),
        "coverage regressed across kill9"
    );
    assert!(result.refine_seq_monotone(), "refine_seq regressed");
    assert!(result.min_partials_per_key() >= 3);

    let report = cluster.shutdown();
    assert_eq!(report.faults.kill9s, 2);
    assert!(report.dead_nodes.is_empty(), "no node may stay wedged");
    let _ = std::fs::remove_dir_all(&wal_dir);
}
