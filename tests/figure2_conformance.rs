//! Figure-2 conformance: drive the real mechanism through every row of
//! the cost table on a two-node tree and verify the exact messages and
//! lease-state changes the paper tabulates. Then check, on random
//! workloads over larger trees, that every observed per-edge
//! `(state, event, state', cost)` step is a legal Figure-2 row.

use oat::offline::cost_model::edge_cost;
use oat::prelude::*;
use oat::sim::{Engine, Schedule};
use oat_core::request::sigma;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// Engine on the pair tree with RWW.
fn pair_engine() -> Engine<RwwSpec, SumI64> {
    Engine::new(Tree::pair(), SumI64, &RwwSpec, Schedule::Fifo, false)
}

/// `u.granted[v]` on the pair tree for the ordered pair (0, 1) — i.e.
/// node 0 granting to node 1.
fn granted01(eng: &Engine<RwwSpec, SumI64>) -> bool {
    eng.node(n(0)).granted(0)
}

#[test]
fn row_false_r_cost_2_sets_lease() {
    // (false, R) -> cost 2; RWW chooses next = true.
    let mut eng = pair_engine();
    assert!(!granted01(&eng));
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    assert_eq!(eng.stats().pair_cost(eng.tree(), n(0), n(1)), 2);
    assert!(granted01(&eng), "RWW sets the lease on a combine");
}

#[test]
fn row_false_w_cost_0() {
    // (false, W) -> cost 0, stays false.
    let mut eng = pair_engine();
    eng.initiate_write(n(0), 5);
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total(), 0);
    assert!(!granted01(&eng));
}

#[test]
fn row_true_r_cost_0() {
    // (true, R) -> cost 0, stays true.
    let mut eng = pair_engine();
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    let before = eng.stats().total();
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total(), before);
    assert!(granted01(&eng));
}

#[test]
fn row_true_w_cost_1_keeps_lease_then_cost_2_breaks() {
    // (true, W, true) -> cost 1 (update only);
    // (true, W, false) -> cost 2 (update + release).
    let mut eng = pair_engine();
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    let before = eng.stats().total();
    eng.initiate_write(n(0), 1);
    eng.run_to_quiescence();
    assert_eq!(eng.stats().total() - before, 1, "first write: update only");
    assert!(granted01(&eng));
    let before = eng.stats().total();
    eng.initiate_write(n(0), 2);
    eng.run_to_quiescence();
    assert_eq!(
        eng.stats().total() - before,
        2,
        "second write: update + release"
    );
    assert!(!granted01(&eng), "lease broken after two writes");
}

#[test]
fn noop_release_charging_on_longer_trees() {
    // A (true, N, false) situation for the *far* pair arises on a path:
    // writes behind node 1 (i.e. at node 0) are noops for the ordered
    // pair (2, 1)... releases cascade within the same request's
    // execution, and each release is charged to exactly one ordered
    // pair. Verify total cost decomposes exactly (Lemma 3.9).
    let tree = Tree::path(3);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
    // Set leases toward node 2 along the whole path.
    eng.initiate_combine(n(2));
    eng.run_to_quiescence();
    // Two writes at 0 break both leases; the release 2->1 is triggered
    // by the release 1->... cascade inside the second write's execution.
    eng.initiate_write(n(0), 1);
    eng.run_to_quiescence();
    eng.initiate_write(n(0), 2);
    eng.run_to_quiescence();
    let total: u64 = tree
        .dir_edges()
        .map(|(u, v)| eng.stats().pair_cost(&tree, u, v))
        .sum();
    assert_eq!(
        total,
        eng.stats().total(),
        "per-pair costs partition all messages"
    );
}

#[test]
fn every_observed_rww_step_is_a_legal_figure2_row() {
    // Replay random workloads; for each ordered pair, step through
    // σ(u,v) with the RWW automaton and verify each (state, ev, state',
    // cost) against the table, then match the summed per-pair cost with
    // the simulator's counters.
    for seed in 0..10u64 {
        let tree = oat::workloads::random_tree(12, seed);
        let seq = oat::workloads::uniform(&tree, 120, 0.5, seed ^ 0xabc);
        let res = oat::sim::run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            let events = sigma(&tree, &seq, u, v);
            let mut aut = oat::offline::RwwAutomaton::new();
            let mut cost = 0u64;
            for ev in events {
                let before = aut.granted();
                let c = aut.step(ev);
                assert_eq!(
                    edge_cost(before, ev, aut.granted()),
                    Some(c),
                    "illegal transition at pair ({u},{v})"
                );
                cost += c;
            }
            assert_eq!(
                cost,
                res.engine.stats().pair_cost(&tree, u, v),
                "pair ({u},{v}) cost mismatch (seed {seed})"
            );
        }
    }
}

#[test]
fn release_message_carries_both_update_ids() {
    // The uaw bookkeeping: the release after two writes carries exactly
    // the two update identifiers (|S| = 2, as used by Lemma 4.2).
    let tree = Tree::pair();
    let mut u = oat_core::mechanism::MechNode::<_, SumI64>::new(
        &tree,
        n(0),
        SumI64,
        oat_core::policy::PolicySpec::build(&RwwSpec, 1),
        false,
    );
    let mut v = oat_core::mechanism::MechNode::<_, SumI64>::new(
        &tree,
        n(1),
        SumI64,
        oat_core::policy::PolicySpec::build(&RwwSpec, 1),
        false,
    );
    let mut out = Vec::new();
    // combine at 0 -> lease from 1 to 0... (v grants to u).
    u.handle_combine(&mut out);
    let (_, probe) = out.pop().unwrap();
    v.handle_message(n(0), probe, &mut out);
    let (_, resp) = out.pop().unwrap();
    u.handle_message(n(1), resp, &mut out);
    // writes at 1 flow to 0.
    v.handle_write(1, &mut out);
    let (_, up1) = out.pop().unwrap();
    u.handle_message(n(1), up1, &mut out);
    assert!(out.is_empty());
    v.handle_write(2, &mut out);
    let (_, up2) = out.pop().unwrap();
    u.handle_message(n(1), up2, &mut out);
    let (_, rel) = out.pop().unwrap();
    match rel {
        oat_core::message::Message::Release { ids } => {
            assert_eq!(ids.len(), 2, "release carries both unacknowledged ids");
            assert!(ids[0] < ids[1], "ids are increasing");
        }
        m => panic!("expected release, got {m:?}"),
    }
}
