#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline — external deps are vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== bench smoke: oat bench --quick --threads 2 =="
# Quick-mode run of the measured baseline: validates the oat-bench-v1
# schema and fails on a sim<->TCP parity regression (`oat bench` exits
# nonzero itself when parity breaks; the greps also pin the schema).
# --threads 2 pins the reactor pool: the report must show exactly the
# configured pool size, proving thread count is O(pool), not O(nodes)
# (the quick tree has 10 nodes — the old runtime would report ~30).
BENCH_OUT=$(mktemp /tmp/oat_bench_smoke.XXXXXX.json)
./target/release/oat bench --quick --threads 2 --out "$BENCH_OUT" > /dev/null
for key in \
  '"schema": "oat-bench-v1"' \
  '"sim":' \
  '"net_sequential":' \
  '"net_pipelined":' \
  '"req_per_s"' \
  '"msg_per_s"' \
  '"lat_p50_us"' \
  '"lat_p99_us"' \
  '"queue_peak_max"' \
  '"speedup_vs_sequential"' \
  '"threads_spawned": 2' \
  '"parity_ok": true'
do
  grep -qF "$key" "$BENCH_OUT" || {
    echo "bench smoke: missing $key in $BENCH_OUT"
    exit 1
  }
done
rm -f "$BENCH_OUT"

echo "== chaos smoke: oat chaos =="
# Seeded fault injection against the sequential oracle: drops/dups/delays
# on every edge, two scheduled connection kills, one node crash-restart.
# `oat chaos` exits nonzero itself if any combine diverges, the cluster
# wedges, or a scheduled fault fails to fire.
./target/release/oat chaos --tree kary:10:3 --workload uniform:0.5:80 \
  --faults "seed:7,drop:0.05,dup:0.05,delay:0.05,kill:0-1@3,kill:2-0@4,crash:2@5"

echo "== ci: all green =="
