#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline — external deps are vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== bench smoke: oat bench --quick --threads 2 --trace =="
# Quick-mode run of the measured baseline: validates the oat-bench-v2
# schema and fails on a sim<->TCP parity regression (`oat bench` exits
# nonzero itself when parity breaks; the greps also pin the schema).
# --threads 2 pins the reactor pool: the report must show exactly the
# configured pool size, proving thread count is O(pool), not O(nodes)
# (the quick tree has 10 nodes — the old runtime would report ~30).
# --trace turns on oat-obs recording for the pipelined phase, so the
# report must carry a real phase breakdown, not null.
BENCH_OUT=$(mktemp /tmp/oat_bench_smoke.XXXXXX.json)
./target/release/oat bench --quick --threads 2 --trace --out "$BENCH_OUT" > /dev/null
for key in \
  '"schema": "oat-bench-v2"' \
  '"sim":' \
  '"net_sequential":' \
  '"net_pipelined":' \
  '"req_per_s"' \
  '"msg_per_s"' \
  '"lat_p50_us"' \
  '"lat_p99_us"' \
  '"lat_p999_us"' \
  '"queue_peak_max"' \
  '"speedup_vs_sequential"' \
  '"threads_spawned": 2' \
  '"phase_breakdown": {"requests":' \
  '"parity_ok": true'
do
  grep -qF "$key" "$BENCH_OUT" || {
    echo "bench smoke: missing $key in $BENCH_OUT"
    exit 1
  }
done
rm -f "$BENCH_OUT"

echo "== trace smoke: oat trace --workload =="
# Records a live oat-obs trace of a 10-node workload (sim replay + faulted
# pipelined TCP replay), then checks the oat-trace-v1 JSONL: every line
# parses as JSON and at least one event of every category was captured.
TRACE_OUT=$(mktemp /tmp/oat_trace_smoke.XXXXXX.jsonl)
./target/release/oat trace --tree kary:10:2 --workload uniform:0.5:80 \
  --pipeline 4 --faults "seed:7,drop:0.02,kill:1-0@3" --out "$TRACE_OUT" > /dev/null
python3 - "$TRACE_OUT" <<'PY'
import json, sys
cats = {}
with open(sys.argv[1]) as f:
    header = json.loads(f.readline())
    assert header["schema"] == "oat-trace-v1", header
    for line in f:
        e = json.loads(line)
        cats[e["cat"]] = cats.get(e["cat"], 0) + 1
want = {"request", "frame", "lease", "fault", "reactor", "sim"}
missing = want - set(cats)
assert not missing, f"categories missing from trace: {missing} (got {cats})"
print(f"trace smoke: {sum(cats.values())} events, all {len(want)} categories present")
PY
rm -f "$TRACE_OUT"

echo "== chaos smoke: oat chaos =="
# Seeded fault injection against the sequential oracle: drops/dups/delays
# on every edge, two scheduled connection kills, one node crash-restart.
# `oat chaos` exits nonzero itself if any combine diverges, the cluster
# wedges, or a scheduled fault fails to fire.
./target/release/oat chaos --tree kary:10:3 --workload uniform:0.5:80 \
  --faults "seed:7,drop:0.05,dup:0.05,delay:0.05,kill:0-1@3,kill:2-0@4,crash:2@5"

echo "== ci: all green =="
