#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline — external deps are vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== ci: all green =="
