#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline — external deps are vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --workspace --features epoll (deny warnings) =="
cargo clippy --workspace --all-targets --features epoll -- -D warnings

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== epoll backend: cargo test -q --features epoll =="
# The same suite again with the reactor on epoll(7) instead of poll(2):
# the backend is a drop-in swap behind compat/poll's Poller, so every
# parity, chaos, and reactor test must pass unchanged.
cargo test -q --features epoll

echo "== bench smoke: oat bench --quick --threads 2 --trace =="
# Quick-mode run of the measured baseline: validates the oat-bench-v4
# schema and fails on a sim<->TCP parity regression (`oat bench` exits
# nonzero itself when parity breaks; the greps also pin the schema,
# including the v3 additions — the config's transport tag and the
# batched-client phase block — and the v4 addition: the nullable
# progressive-query block from --query, which must show an exact
# oracle match).
# --threads 2 pins the reactor pool: the report must show exactly the
# configured pool size, proving thread count is O(pool), not O(nodes)
# (the quick tree has 10 nodes — the old runtime would report ~30).
# --trace turns on oat-obs recording for the pipelined phase, so the
# report must carry a real phase breakdown, not null.
BENCH_OUT=$(mktemp /tmp/oat_bench_smoke.XXXXXX.json)
./target/release/oat bench --quick --threads 2 --trace --mlap --query --out "$BENCH_OUT" > /dev/null
for key in \
  '"schema": "oat-bench-v4"' \
  '"transport": "tcp"' \
  '"mlap": {"workload": "adv:3:6"' \
  '"within_bound": true' \
  '"query": {"spec": "sum group by key window tumbling(100ms)"' \
  '"oracle_match": true' \
  '"coverage_monotone": true' \
  '"first_partial_p50_ms"' \
  '"sim":' \
  '"net_sequential":' \
  '"net_pipelined":' \
  '"batch": {' \
  '"batch_size": 32' \
  '"req_per_s"' \
  '"msg_per_s"' \
  '"lat_p50_us"' \
  '"lat_p99_us"' \
  '"lat_p999_us"' \
  '"queue_peak_max"' \
  '"speedup_vs_sequential"' \
  '"threads_spawned": 2' \
  '"phase_breakdown": {"requests":' \
  '"parity_ok": true'
do
  grep -qF "$key" "$BENCH_OUT" || {
    echo "bench smoke: missing $key in $BENCH_OUT"
    exit 1
  }
done
rm -f "$BENCH_OUT"

echo "== transport parity: oat bench --quick --transport {uds,ring} =="
# The same quick workload over the other two transport backends (the TCP
# run above covers the default). `oat bench` recomputes sim<->cluster
# parity internally and exits nonzero on divergence; the greps pin that
# the requested backend was actually used and that parity held on the
# 10-node quick tree.
for t in uds ring; do
  T_OUT=$(mktemp /tmp/oat_bench_${t}.XXXXXX.json)
  ./target/release/oat bench --quick --transport "$t" --out "$T_OUT" > /dev/null
  for key in "\"transport\": \"$t\"" '"parity_ok": true'; do
    grep -qF "$key" "$T_OUT" || {
      echo "transport parity ($t): missing $key in $T_OUT"
      exit 1
    }
  done
  rm -f "$T_OUT"
done

echo "== trace smoke: oat trace --workload =="
# Records a live oat-obs trace of a 10-node workload (sim replay + faulted
# pipelined TCP replay), then checks the oat-trace-v1 JSONL: every line
# parses as JSON and at least one event of every category was captured.
TRACE_OUT=$(mktemp /tmp/oat_trace_smoke.XXXXXX.jsonl)
./target/release/oat trace --tree kary:10:2 --workload uniform:0.5:80 \
  --pipeline 4 --faults "seed:7,drop:0.02,kill:1-0@3" --out "$TRACE_OUT" > /dev/null
python3 - "$TRACE_OUT" <<'PY'
import json, sys
cats = {}
with open(sys.argv[1]) as f:
    header = json.loads(f.readline())
    assert header["schema"] == "oat-trace-v1", header
    for line in f:
        e = json.loads(line)
        cats[e["cat"]] = cats.get(e["cat"], 0) + 1
want = {"request", "frame", "lease", "fault", "reactor", "sim"}
missing = want - set(cats)
assert not missing, f"categories missing from trace: {missing} (got {cats})"
print(f"trace smoke: {sum(cats.values())} events, all {len(want)} categories present")
PY
rm -f "$TRACE_OUT"

echo "== mlap smoke: oat mlap --workload adv:3:6 =="
# The second problem family: both deadline policies plus the baselines on
# the adversarial staggered-deadline spider, scored against the exact
# offline optimum. Pins the oat-mlap-v1 schema, requires every policy to
# cost at least OPT, and checks the lazy policy's unit-weight
# certificate: zero deadline misses and service ≤ (depth+1)·OPT.
MLAP_OUT=$(mktemp /tmp/oat_mlap_smoke.XXXXXX.json)
./target/release/oat mlap --workload adv:3:6 --policy all --seed 7 --json > "$MLAP_OUT"
python3 - "$MLAP_OUT" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "oat-mlap-v1", doc
for key in ("model", "workload", "nodes", "depth", "requests", "opt", "policies"):
    assert key in doc, f"missing {key}"
opt, depth = doc["opt"], doc["depth"]
assert opt is not None and opt > 0, doc
names = set()
for p in doc["policies"]:
    for key in ("name", "service_cost", "delay_cost", "deadline_misses",
                "flushes", "messages", "total_cost", "ratio_vs_opt"):
        assert key in p, f"missing {key} in {p}"
    assert p["total_cost"] >= opt, f"{p['name']} beat OPT?"
    names.add(p["name"])
assert {"odepth", "odepth-prefetch", "greedy", "eager"} <= names, names
lazy = next(p for p in doc["policies"] if p["name"] == "odepth")
assert lazy["deadline_misses"] == 0, lazy
assert lazy["service_cost"] <= (depth + 1) * opt, lazy
print(f"mlap smoke: {len(names)} policies, OPT {opt}, "
      f"odepth ratio {lazy['ratio_vs_opt']} <= bound {depth + 1}")
PY
rm -f "$MLAP_OUT"

echo "== query smoke: oat query on tcp/uds/ring =="
# The progressive-query layer: a tumbling group-by over a short seeded
# zipf fact stream, on every transport. Pins the oat-query-v1 schema
# and the verdicts `oat query` itself computes (it exits nonzero when
# any of them fail): finals equal the sequential oracle exactly,
# coverage and per-key refinement sequences are monotone, and every
# key refined at least three times.
for t in tcp uds ring; do
  Q_OUT=$(mktemp /tmp/oat_query_${t}.XXXXXX.json)
  ./target/release/oat query 'sum group by key window tumbling(100ms)' \
    --stream zipf --facts 120 --keys 3 --transport "$t" --json > "$Q_OUT"
  for key in \
    '"schema": "oat-query-v1"' \
    '"oracle_match": true' \
    '"coverage_monotone": true' \
    '"refine_seq_monotone": true' \
    '"min_partials_per_key":'
  do
    grep -qF "$key" "$Q_OUT" || {
      echo "query smoke ($t): missing $key in $Q_OUT"
      exit 1
    }
  done
  rm -f "$Q_OUT"
done

echo "== chaos smoke: oat chaos =="
# Seeded fault injection against the sequential oracle: drops/dups/delays
# on every edge, two scheduled connection kills, one node crash-restart.
# `oat chaos` exits nonzero itself if any combine diverges, the cluster
# wedges, or a scheduled fault fails to fire.
./target/release/oat chaos --tree kary:10:3 --workload uniform:0.5:80 \
  --faults "seed:7,drop:0.05,dup:0.05,delay:0.05,kill:0-1@3,kill:2-0@4,crash:2@5"

echo "== crash-recovery smoke: oat chaos --kill9 =="
# Process-kill recovery from the write-ahead log: drops and dups on every
# edge, one connection kill, the root and an internal node kill9'd, plus
# a seeded torn-tail disk fault at recovery. --kill9 auto-provisions a
# WAL in a fresh temp dir, so chaos_run's internal cross-checks are
# armed: every scheduled kill9 fired, the per-node restart counters sum
# to crashes + kill9s, and every WAL recovery replay is accounted for by
# exactly one kill9 (it exits nonzero on any mismatch, a diverged
# combine, or a wedged cluster).
./target/release/oat chaos --tree kary:10:3 --workload uniform:0.5:80 \
  --faults "seed:7,drop:0.05,dup:0.05,kill:0-1@3,torn-tail:64" \
  --kill9 0@6,2@5

echo "== ci: all green =="
