//! Minimal `poll(2)` readiness layer, vendored for the offline build.
//!
//! The reactor in `oat-net` needs exactly one thing the standard library
//! does not expose: "block until any of these sockets is readable or
//! writable". On Linux that is the `poll` syscall, reachable through the
//! libc that `std` already links — no external crate required. This
//! shim confines the `unsafe` FFI to one function so `oat-net` can keep
//! its `#![forbid(unsafe_code)]`.
//!
//! `poll` is level-triggered: a descriptor keeps reporting readiness
//! until the condition is consumed, so callers may read or write a
//! bounded amount per event and rely on the next call to re-report
//! whatever is left. The interest set is rebuilt per call (plain
//! `poll`, not `epoll`) — at the fleet sizes oat runs (hundreds of
//! descriptors) the rebuild is noise next to one syscall.
//!
//! ## The `epoll` feature
//!
//! `poll(2)` hands the kernel the whole interest set every call and the
//! kernel scans it — O(fds) per wakeup, which stops scaling somewhere
//! around ~1k sockets per reactor. The `epoll` cargo feature swaps the
//! implementation behind [`Poller`] for a persistent level-triggered
//! epoll instance: the interest set lives in the kernel, [`Poller::wait`]
//! diffs the caller's `PollFd` slice against what is registered
//! (add/modify/delete only what changed), and `epoll_wait` returns just
//! the ready descriptors. The `PollFd` slice remains the API either way,
//! so the reactor is byte-identical under both backends; `poll(2)` stays
//! the portable default.

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data (or EOF) is available.
pub const POLLIN: i16 = 0x001;
/// The descriptor is writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set: mirrors `struct pollfd` bit for bit.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`] bits).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest bits.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True when the kernel reported readable data, an error, or a
    /// hangup — every case where a read will make progress (possibly
    /// returning 0 or an error that the caller must handle).
    pub fn readable(&self) -> bool {
        self.ready(POLLIN | POLLERR | POLLHUP | POLLNVAL)
    }

    /// True when a write would make progress.
    pub fn writable(&self) -> bool {
        self.ready(POLLOUT | POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry of `fds` is ready, the timeout
/// elapses (`Ok(0)`), or a signal interrupts the wait (also `Ok(0)` —
/// spurious wakeups are part of the contract; callers loop).
///
/// `timeout`: `None` blocks indefinitely; `Some(d)` waits at most `d`
/// (rounded up to the next millisecond so a 100µs deadline cannot spin
/// at timeout 0).
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if d > Duration::ZERO && ms == 0 {
                1
            } else {
                ms.min(c_int::MAX as u128) as c_int
            }
        }
    };
    // SAFETY: `PollFd` is `#[repr(C)]` and layout-identical to `struct
    // pollfd`; the pointer/length pair comes from a live mutable slice,
    // and the kernel writes only within `nfds` entries.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        // EINTR: report "nothing ready"; the caller's loop re-polls.
        return Ok(0);
    }
    Err(err)
}

/// Records that `fd` has been closed by its owner.
///
/// The epoll backend keeps a persistent per-thread interest set and
/// diffs it against each [`Poller::wait`] call, issuing `epoll_ctl`
/// only for descriptors that changed. That diff has one blind spot: a
/// closed descriptor number reused by a new connection with the same
/// interest bits looks "already registered" even though the kernel
/// auto-removed the old registration at close. Owners therefore note
/// every close here (a thread-local queue — connections are
/// single-owner per reactor thread), and `wait` evicts noted
/// descriptors from its map so the successor gets a fresh
/// registration. A no-op without the `epoll` feature.
pub fn note_closed(fd: RawFd) {
    #[cfg(feature = "epoll")]
    CLOSED_FDS.with(|c| c.borrow_mut().push(fd));
    #[cfg(not(feature = "epoll"))]
    let _ = fd;
}

#[cfg(feature = "epoll")]
thread_local! {
    static CLOSED_FDS: std::cell::RefCell<Vec<RawFd>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Readiness selector over a `&mut [PollFd]` interest set.
///
/// Without the `epoll` feature this is a stateless shim over
/// [`poll_fds`]; with it, a persistent epoll instance whose kernel-side
/// interest set is diffed against each call's slice (see the module
/// docs). The contract is identical either way: level-triggered,
/// spurious `Ok(0)` wakeups allowed, `revents` filled in place.
#[cfg(not(feature = "epoll"))]
pub struct Poller;

#[cfg(not(feature = "epoll"))]
impl Poller {
    /// Creates a poller (no kernel state in the poll(2) build).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller)
    }

    /// Blocks until readiness or timeout; same contract as [`poll_fds`].
    pub fn wait(&mut self, fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        poll_fds(fds, timeout)
    }
}

#[cfg(feature = "epoll")]
pub use epoll_impl::Poller;

#[cfg(feature = "epoll")]
mod epoll_impl {
    use super::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    /// Readiness bits shared bit-for-bit with the poll(2) constants.
    const EVENT_MASK: u32 = (POLLIN | POLLOUT | POLLERR | POLLHUP) as u32;

    /// Mirrors `struct epoll_event`: packed on x86-64 (the kernel ABI
    /// quirk), naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        /// We store the watched fd here to map results back to the slice.
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Persistent epoll instance; see the crate docs for the contract.
    pub struct Poller {
        epfd: RawFd,
        /// Kernel-side interest set as last synced: fd → interest bits.
        registered: HashMap<RawFd, i16>,
        events: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                registered: HashMap::new(),
                events: Vec::new(),
            })
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, interest: i16) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest as u32 & EVENT_MASK,
                data: fd as u64,
            };
            // SAFETY: `ev` is a live, layout-correct epoll_event; the
            // kernel reads it only for ADD/MOD.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        /// Syncs the kernel interest set to exactly `fds`, then waits.
        /// Same contract as [`super::poll_fds`].
        pub fn wait(&mut self, fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
            for fd in fds.iter_mut() {
                fd.revents = 0;
            }
            // Evict descriptors whose owners reported a close: the
            // kernel already auto-removed them, and the number may have
            // been reused (see `note_closed`).
            super::CLOSED_FDS.with(|c| {
                for fd in c.borrow_mut().drain(..) {
                    self.registered.remove(&fd);
                }
            });
            let mut wanted: HashMap<RawFd, usize> = HashMap::with_capacity(fds.len());
            for (i, pfd) in fds.iter().enumerate() {
                wanted.insert(pfd.fd, i);
            }
            // Deregister what the caller no longer watches.
            let stale: Vec<RawFd> = self
                .registered
                .keys()
                .filter(|fd| !wanted.contains_key(fd))
                .copied()
                .collect();
            for fd in stale {
                // Already-closed fds fail EBADF/ENOENT; both just mean
                // "not in the set", which is what we want.
                let _ = self.ctl(EPOLL_CTL_DEL, fd, 0);
                self.registered.remove(&fd);
            }
            // Register / update the rest, retrying across the ADD/MOD
            // boundary so a map that drifted from kernel state heals.
            for pfd in fds.iter_mut() {
                let interest = pfd.events;
                let up_to_date = self.registered.get(&pfd.fd) == Some(&interest);
                if up_to_date {
                    continue;
                }
                let op = if self.registered.contains_key(&pfd.fd) {
                    EPOLL_CTL_MOD
                } else {
                    EPOLL_CTL_ADD
                };
                let mut res = self.ctl(op, pfd.fd, interest);
                if let Err(e) = &res {
                    match (op, e.raw_os_error()) {
                        // Kernel has it but our map didn't: update in place.
                        (EPOLL_CTL_ADD, Some(17 /* EEXIST */)) => {
                            res = self.ctl(EPOLL_CTL_MOD, pfd.fd, interest);
                        }
                        // Map has it but the kernel lost it (close we
                        // were not told about): re-add.
                        (EPOLL_CTL_MOD, Some(2 /* ENOENT */)) => {
                            res = self.ctl(EPOLL_CTL_ADD, pfd.fd, interest);
                        }
                        _ => {}
                    }
                }
                match res {
                    Ok(()) => {
                        self.registered.insert(pfd.fd, interest);
                    }
                    Err(_) => {
                        // EBADF and friends: surface like poll(2) does,
                        // so the caller's readable() path retires it.
                        self.registered.remove(&pfd.fd);
                        pfd.revents = POLLNVAL;
                    }
                }
            }
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    if d > Duration::ZERO && ms == 0 {
                        1
                    } else {
                        ms.min(c_int::MAX as u128) as c_int
                    }
                }
            };
            self.events
                .resize(fds.len().max(64), EpollEvent { events: 0, data: 0 });
            // SAFETY: the buffer is live and `maxevents` matches its
            // length; the kernel writes only within it.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let mut ready = 0;
            for ev in &self.events[..rc as usize] {
                let fd = ev.data as RawFd;
                if let Some(&i) = wanted.get(&fd) {
                    let bits = (ev.events & EVENT_MASK) as i16;
                    if bits != 0 && fds[i].revents == 0 {
                        ready += 1;
                    }
                    fds[i].revents |= bits;
                }
            }
            // Count entries pre-marked POLLNVAL during registration too.
            ready += fds.iter().filter(|f| f.revents == POLLNVAL).count();
            Ok(ready)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd we own.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_expires_with_nothing_ready() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn written_byte_reports_readable() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(&[7]).unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        assert_eq!(byte[0], 7);
        // Level-triggered: once consumed, readiness clears.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn idle_socket_is_writable_and_hangup_is_reported() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hangup must surface as readable");
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_down() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Must block (~1ms), not degenerate into a busy spin at 0.
        let n = poll_fds(&mut fds, Some(Duration::from_micros(100))).unwrap();
        assert_eq!(n, 0);
    }

    // Poller tests run under whichever backend the build selected, so
    // `cargo test` and `cargo test --features epoll` exercise the same
    // contract against both implementations.

    #[test]
    fn poller_reports_readable_then_level_clears() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(
            poller
                .wait(&mut fds, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );
        a.write_all(&[7]).unwrap();
        let n = poller.wait(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        let n = poller
            .wait(&mut fds, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn poller_tracks_interest_changes_and_removals() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let (c, _d) = UnixStream::pair().unwrap();
        let mut poller = Poller::new().unwrap();
        // Watch both; only writability should fire.
        let mut fds = [
            PollFd::new(a.as_raw_fd(), POLLOUT),
            PollFd::new(c.as_raw_fd(), POLLIN),
        ];
        let n = poller.wait(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        assert!(!fds[1].readable());
        // Drop `c` from the set and flip `a` to read interest.
        b.write_all(&[9]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poller.wait(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn poller_survives_fd_close_and_reuse() {
        // Close a watched socket, note it, and immediately create a new
        // pair (which typically reuses the lowest free fd number): the
        // successor must still get registered and report readiness.
        let mut poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        let fd = b.as_raw_fd();
        let mut fds = [PollFd::new(fd, POLLIN)];
        assert_eq!(
            poller
                .wait(&mut fds, Some(Duration::from_millis(1)))
                .unwrap(),
            0
        );
        drop(b);
        drop(a);
        note_closed(fd);
        let (mut a2, b2) = UnixStream::pair().unwrap();
        a2.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(b2.as_raw_fd(), POLLIN)];
        let n = poller.wait(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }
}
