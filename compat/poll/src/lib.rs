//! Minimal `poll(2)` readiness layer, vendored for the offline build.
//!
//! The reactor in `oat-net` needs exactly one thing the standard library
//! does not expose: "block until any of these sockets is readable or
//! writable". On Linux that is the `poll` syscall, reachable through the
//! libc that `std` already links — no external crate required. This
//! shim confines the `unsafe` FFI to one function so `oat-net` can keep
//! its `#![forbid(unsafe_code)]`.
//!
//! `poll` is level-triggered: a descriptor keeps reporting readiness
//! until the condition is consumed, so callers may read or write a
//! bounded amount per event and rely on the next call to re-report
//! whatever is left. The interest set is rebuilt per call (plain
//! `poll`, not `epoll`) — at the fleet sizes oat runs (hundreds of
//! descriptors) the rebuild is noise next to one syscall.

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data (or EOF) is available.
pub const POLLIN: i16 = 0x001;
/// The descriptor is writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set: mirrors `struct pollfd` bit for bit.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`] bits).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest bits.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True when the kernel reported readable data, an error, or a
    /// hangup — every case where a read will make progress (possibly
    /// returning 0 or an error that the caller must handle).
    pub fn readable(&self) -> bool {
        self.ready(POLLIN | POLLERR | POLLHUP | POLLNVAL)
    }

    /// True when a write would make progress.
    pub fn writable(&self) -> bool {
        self.ready(POLLOUT | POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry of `fds` is ready, the timeout
/// elapses (`Ok(0)`), or a signal interrupts the wait (also `Ok(0)` —
/// spurious wakeups are part of the contract; callers loop).
///
/// `timeout`: `None` blocks indefinitely; `Some(d)` waits at most `d`
/// (rounded up to the next millisecond so a 100µs deadline cannot spin
/// at timeout 0).
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if d > Duration::ZERO && ms == 0 {
                1
            } else {
                ms.min(c_int::MAX as u128) as c_int
            }
        }
    };
    // SAFETY: `PollFd` is `#[repr(C)]` and layout-identical to `struct
    // pollfd`; the pointer/length pair comes from a live mutable slice,
    // and the kernel writes only within `nfds` entries.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        // EINTR: report "nothing ready"; the caller's loop re-polls.
        return Ok(0);
    }
    Err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_expires_with_nothing_ready() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn written_byte_reports_readable() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(&[7]).unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).unwrap();
        assert_eq!(byte[0], 7);
        // Level-triggered: once consumed, readiness clears.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn idle_socket_is_writable_and_hangup_is_reported() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hangup must surface as readable");
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_down() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Must block (~1ms), not degenerate into a busy spin at 0.
        let n = poll_fds(&mut fds, Some(Duration::from_micros(100))).unwrap();
        assert_eq!(n, 0);
    }
}
