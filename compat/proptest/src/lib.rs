//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`any`],
//! [`strategy::Just`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::array::uniform4`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, acceptable for this repo's positive
//! property tests: **no shrinking** (a failing case panics with its
//! values via the assertion message), and cases are generated from a
//! deterministic per-test seed (test-name hash), so failures always
//! reproduce with plain `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategies: recipes for generating values.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Boxes a strategy for use in heterogeneous unions, preserving the
    /// value type for inference.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::{Rng, RngCore};

    /// Types that can be generated from raw random bits.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }

    impl_arbitrary_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform4`).
pub mod array {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Strategy for `[S::Value; 4]`.
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut StdRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// Four independent draws from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }
}

/// Test-runner configuration and the per-test case loop.
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// FNV-1a hash of the test name: the deterministic seed base, so a
    /// failing case reproduces on every plain `cargo test` run.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The RNG for one case of one property test.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(seed_for(test_name, case))
    }

    /// Failure of a single property case; property bodies may `?` these.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// A failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal; panics with the formatted message
/// otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng =
                        $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    // A closure so `?` on TestCaseError works in the body.
                    #[allow(clippy::redundant_closure_call)]
                    let case_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = case_result {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(a in 0i64..10, v in crate::collection::vec(0u32..5, 1..=4)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![(0i64..3).prop_map(|v| v * 10), 100i64..103]) {
            prop_assert!((0..30).contains(&x) || (100..103).contains(&x), "x = {x}");
        }

        #[test]
        fn dependent_generation((n, v) in (1usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..10, n)))) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..=8);
        let a = s.generate(&mut crate::test_runner::rng_for("t", 5));
        let b = s.generate(&mut crate::test_runner::rng_for("t", 5));
        assert_eq!(a, b);
    }
}
