//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the `rand 0.8` API the repo actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool`, and `gen_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded through splitmix64 —
//! high-quality and deterministic, though its streams differ from upstream
//! `StdRng` (ChaCha12); all in-repo consumers only rely on *seeded
//! determinism*, never on specific upstream sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`rng.gen()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // Compare against 53 uniform mantissa bits, exactly like a
        // `gen::<f64>() < p` draw but without the `p == 1.0` edge case.
        if p >= 1.0 {
            return true;
        }
        f64_from_bits(self.next_u64()) < p
    }

    /// Samples uniformly from a range (`rng.gen_range(a..b)` or `a..=b`).
    ///
    /// Generic over the output type `T` (like upstream rand) so integer
    /// literal ranges infer their width from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler. The blanket [`SampleRange`] impls
/// below hang off this trait — a *single* impl per range shape, exactly
/// like upstream rand, so integer literals in `gen_range(-40..=40)` infer
/// their width from the surrounding expression.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; panics when empty.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics when empty.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire); unbiased
/// enough for simulation workloads and fully deterministic.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every bit pattern valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty gen_range");
        lo + f64_from_bits(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty gen_range");
        lo + f64_from_bits(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state; a
            // zero state is impossible because splitmix64 is a bijection
            // over distinct counters.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i64..=100);
            assert!((-100..=100).contains(&x));
            let y = rng.gen_range(3u32..17);
            assert!((3..17).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
