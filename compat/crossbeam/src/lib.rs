//! Offline drop-in subset of the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` (in `oat-concurrent`); this shim provides that API over
//! `std::sync::mpsc` so the build needs no registry access. Semantics
//! relied upon — unbounded buffering, per-sender FIFO order, `Sender`
//! clonability, blocking `recv` — are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// MPSC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: `Debug` without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails when every sender dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the channel is empty or
        /// disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
