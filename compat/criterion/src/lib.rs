//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery this harness runs a short
//! warm-up, then a fixed measurement batch, and prints the mean wall-clock
//! time per iteration (plus throughput when configured). Good enough to
//! spot order-of-magnitude regressions; not a statistics suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"<name>/<parameter>"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations to run in the measurement batch.
    iters: u64,
    /// Mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, running a warm-up batch then the measured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unmeasured runs so lazy init and caches settle.
        for _ in 0..self.iters.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / self.iters.max(1) as u32;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    full_id: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let mut line = format!(
        "{:<48} {:>12}/iter",
        full_id,
        fmt_duration(b.elapsed_per_iter)
    );
    let per_iter = b.elapsed_per_iter.as_secs_f64();
    if per_iter > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  {:>12.0} elem/s", n as f64 / per_iter));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  {:>12.0} B/s", n as f64 / per_iter));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small fixed batch: this shim aims for smoke-level timing, and
        // `--test` mode (cargo test --benches) shrinks it to one pass.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iters, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed batch.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.iters, self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.iters, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion { iters: 4 };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Elements(100)).sample_size(10);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    black_box(x * 2)
                })
            });
            g.finish();
        }
        // 4 measured + up to 3 warm-up iterations.
        assert!(ran >= 4);
        c.bench_function("shim/standalone", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(format!("{}", BenchmarkId::new("a", 5)), "a/5");
    }
}
