//! Rich aggregates: top-k, service membership, and load histograms.
//!
//! Run with `cargo run --example topk_dashboard`.
//!
//! The paper's mechanism is generic over any commutative monoid, so the
//! same leases that carry sums can carry structured aggregates. A
//! 50-machine cluster tracks, in three parallel attributes:
//!
//! * the 3 highest per-machine loads (`TopK`),
//! * which of the named services runs *somewhere* (`BitsetUnion`),
//! * the load distribution over buckets (`Histogram`).

use oat::core::agg_ext::{BitsetUnion, Histogram, TopK};
use oat::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SERVICES: [&str; 4] = ["web", "db", "cache", "batch"];

fn main() {
    let n = 50u32;
    let tree = oat::workloads::random_attachment_tree(n as usize, 7);
    let mut rng = StdRng::seed_from_u64(99);

    // Three independent systems over the same topology (one per
    // aggregate type; a production deployment would use oat-multi with a
    // product operator).
    let mut top = AggregationSystem::new(tree.clone(), TopK::new(3), RwwSpec);
    let mut svc = AggregationSystem::new(tree.clone(), BitsetUnion, RwwSpec);
    let hist_op: Histogram<5> = Histogram::new(0, 20);
    let mut hist = AggregationSystem::new(tree.clone(), hist_op, RwwSpec);

    // Machines report.
    for i in 1..n {
        let load = rng.gen_range(0..100);
        top.write(NodeId(i), TopK::new(3).sample(load));
        hist.write(NodeId(i), hist_op.bucketize(load));
        let service = rng.gen_range(0..SERVICES.len() as u8);
        svc.write(NodeId(i), BitsetUnion::singleton(service));
    }

    println!("== 50-machine dashboard at n0 ==\n");
    let hottest = top.read(NodeId(0));
    println!("three hottest loads : {hottest:?}");

    let members = svc.read(NodeId(0));
    let running: Vec<&str> = SERVICES
        .iter()
        .enumerate()
        .filter(|(i, _)| members >> i & 1 == 1)
        .map(|(_, s)| *s)
        .collect();
    println!("services running    : {running:?}");

    let buckets = hist.read(NodeId(0));
    println!("load histogram      :");
    for (i, &count) in buckets.iter().enumerate() {
        let lo = i as i64 * 20;
        let label = if i == buckets.len() - 1 {
            format!("{lo}+   ")
        } else {
            format!("{lo}-{} ", lo + 19)
        };
        println!("  {label:<7} {}", "#".repeat(count as usize));
    }

    println!(
        "\nmessages: top-k {}, services {}, histogram {}",
        top.messages_sent(),
        svc.messages_sent(),
        hist.messages_sent()
    );
    let before = top.messages_sent();
    let again = top.read(NodeId(0));
    assert_eq!(again, hottest);
    println!(
        "second top-k read cost: {} messages (leases!)",
        top.messages_sent() - before
    );
}
