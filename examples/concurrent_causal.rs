//! Concurrent executions: strict consistency breaks, causal survives.
//!
//! Run with `cargo run --example concurrent_causal`.
//!
//! Section 5's point in one program: once requests overlap, combines can
//! return values that never correspond to any instantaneous global state
//! (strict consistency fails), yet every lease-based algorithm still
//! guarantees *causal* consistency (Theorem 4). We demonstrate both
//! halves — first with the deterministic interleaving simulator, then
//! with one real OS thread per node.

use oat::consistency::check_causal;
use oat::prelude::*;
use oat::sim::concurrent::run_concurrent;
use oat_core::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(n: u32, len: usize, seed: u64) -> Vec<Request<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let node = NodeId(rng.gen_range(0..n));
            if rng.gen_bool(0.45) {
                Request::combine(node)
            } else {
                Request::write(node, i as i64 + 1)
            }
        })
        .collect()
}

fn main() {
    let tree = Tree::kary(13, 3);
    println!("== Concurrent executions on a 13-node 3-ary tree ==\n");

    // --- Part 1: seeded interleaving simulator ---
    let mut total_misses = 0usize;
    let mut total_combines = 0usize;
    for seed in 0..20u64 {
        let seq = workload(13, 120, seed);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.8);
        total_misses += res.strict_misses();
        total_combines += res
            .completions
            .iter()
            .filter(|c| matches!(c, oat::sim::concurrent::Completion::Combine { .. }))
            .count();
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        check_causal(&SumI64, &logs).expect("Theorem 4: causal consistency");
    }
    println!("interleaving simulator, 20 seeds x 120 requests:");
    println!(
        "  strict-consistency misses: {total_misses} of {total_combines} combines \
         (overlap makes them unavoidable)"
    );
    println!("  causal-consistency checks: 20/20 passed\n");

    // --- Part 2: real threads ---
    let seq = workload(13, 200, 999);
    let res = oat::concurrent::run_threaded(&tree, SumI64, &RwwSpec, &seq, None);
    println!("threaded runtime (13 threads, full-blast injection):");
    println!(
        "  {} combines completed, {} network messages delivered",
        res.combine_values.len(),
        res.messages_delivered
    );
    match check_causal(&SumI64, &res.logs) {
        Ok(rep) => println!(
            "  causal check: OK ({} writes, {} gathers, {} causal edges, {} ordered pairs verified)",
            rep.writes, rep.gathers, rep.causal_edges, rep.checked_pairs
        ),
        Err(v) => println!("  causal check FAILED: {v:?} — this is a bug"),
    }
}
