//! Cluster monitoring: the Astrolabe-motivating scenario.
//!
//! Run with `cargo run --example cluster_monitoring`.
//!
//! A 64-machine cluster arranged in an administrative hierarchy
//! aggregates total load. The workload shifts between a *dashboard phase*
//! (operators read constantly, machines report occasionally) and an
//! *incident phase* (machines write furiously, hardly anyone reads).
//! Static strategies — push-all (Astrolabe) and pull-all (MDS-2) — each
//! win one phase and lose the other; RWW adapts and stays near the best
//! of both (Section 1's motivation, measured).

use oat::prelude::*;
use oat::sim::{run_sequential, Schedule};
use oat::workloads::phases;
use oat_core::policy::PolicySpec;
use oat_core::request::Request;

fn measure<S: PolicySpec>(
    name: &str,
    spec: &S,
    tree: &Tree,
    seq: &[Request<i64>],
    prewarm: bool,
) -> u64 {
    let mut engine = oat::sim::Engine::new(tree.clone(), SumI64, spec, Schedule::Fifo, false);
    if prewarm {
        engine.prewarm_leases();
    }
    let chunk = oat::sim::sequential::run_sequential_on(&mut engine, seq, 0);
    let total: u64 = chunk.per_request_msgs.iter().sum();
    println!("  {name:<22} {total:>8} messages");
    total
}

fn main() {
    let tree = Tree::kary(64, 4); // 4-ary administrative hierarchy
    println!("== Cluster monitoring on a 64-node, 4-ary hierarchy ==");

    // Phase 1: dashboard — 5% writes. Phase 2: incident — 95% writes.
    // Phase 3: back to dashboard.
    let seq = phases(&tree, &[(2000, 0.05), (2000, 0.95), (2000, 0.05)], 42);
    println!(
        "workload: {} requests across dashboard / incident / dashboard phases\n",
        seq.len()
    );

    println!("policy                    total cost");
    let rww = measure("RWW (adaptive)", &RwwSpec, &tree, &seq, false);
    let push = measure(
        "AlwaysLease (push-all)",
        &AlwaysLeaseSpec,
        &tree,
        &seq,
        true,
    );
    let pull = measure("NeverLease (pull-all)", &NeverLeaseSpec, &tree, &seq, false);
    let ab13 = measure("(1,3)-algorithm", &AbSpec::new(1, 3), &tree, &seq, false);

    let opt = oat::offline::opt_total_cost(&tree, &seq);
    println!("  {:<22} {opt:>8} messages", "OPT (offline bound)");

    println!("\nratios vs offline optimum:");
    for (name, cost) in [
        ("RWW", rww),
        ("push-all", push),
        ("pull-all", pull),
        ("(1,3)", ab13),
    ] {
        println!("  {name:<10} {:.3}", cost as f64 / opt as f64);
    }
    println!(
        "\nRWW stays within the 5/2 bound of Theorem 1 ({}).",
        if (rww as f64) <= 2.5 * opt as f64 {
            "holds"
        } else {
            "VIOLATED — this is a bug"
        }
    );

    // Verify every dashboard read was strictly consistent while we're at
    // it (Lemma 3.12).
    let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
    let violations = oat::consistency::check_strict_sequential(&SumI64, &tree, &seq, &res.combines);
    println!(
        "strict consistency over {} combines: {}",
        res.combines.len(),
        if violations.is_empty() {
            "all correct"
        } else {
            "VIOLATIONS FOUND"
        }
    );
}
