//! The Theorem-3 adversary, live.
//!
//! Run with `cargo run --example adversarial`.
//!
//! On a two-node tree the adversary alternates `a` combines at one node
//! with `b` writes at the other — the worst case for any `(a,b)`-lease
//! policy. This example replays it against the real mechanism, prints the
//! per-cycle cost decomposition, and compares each `(a,b)` policy's
//! competitive ratio against the offline optimum; RWW's `(1,2)` is the
//! minimiser at exactly 5/2.

use oat::offline::adversary::{adv_predicted_ratio, adv_sequence, adv_tree};
use oat::offline::{opt_total_cost, RatioReport};
use oat::prelude::*;
use oat::sim::{run_sequential, Schedule};

fn main() {
    let tree = adv_tree();
    println!("== Theorem 3: the (a,b) adversary on the 2-node tree ==\n");

    // Show one RWW cycle in detail.
    let seq = adv_sequence(1, 2, 3);
    let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
    println!("RWW against its adversary (R W W cycles), per-request messages:");
    for (q, msgs) in seq.iter().zip(&res.per_request_msgs) {
        let kind = if q.op.is_combine() {
            "combine"
        } else {
            "write  "
        };
        println!("  {kind} at {:<3} -> {msgs} messages", q.node.to_string());
    }
    println!("  (pattern per cycle: 2 + 1 + 2 = 5; OPT pays 2 by never leasing)\n");

    // Sweep the (a,b) grid.
    println!("(a,b) grid, 500 cycles each: measured vs predicted ratio");
    println!("  a  b   algorithm cost   OPT cost   ratio   predicted");
    let mut best = (f64::INFINITY, 0, 0);
    for a in 1..=4u32 {
        for b in 1..=6u32 {
            let seq = adv_sequence(a, b, 500);
            let alg = oat::offline::replay::ab_total_cost(&tree, &seq, a, b);
            let opt = opt_total_cost(&tree, &seq);
            let ratio = alg as f64 / opt as f64;
            if ratio < best.0 {
                best = (ratio, a, b);
            }
            println!(
                "  {a}  {b}   {alg:>14}   {opt:>8}   {ratio:.3}   {:.3}",
                adv_predicted_ratio(a, b)
            );
        }
    }
    println!(
        "\nbest (a,b) = ({}, {}) with ratio {:.4} — RWW's parameters, at 5/2 = 2.5",
        best.1, best.2, best.0
    );

    // Cross-check the full simulator on the RWW point.
    let seq = adv_sequence(1, 2, 500);
    let report: RatioReport = oat::offline::ratio::measure_rww(&tree, &seq);
    println!(
        "\nsimulated RWW: {} msgs; analytic replay: {} msgs; OPT: {}; ratio {:.4}",
        report.online_cost,
        report.analytic_cost.unwrap(),
        report.opt_cost,
        report.ratio_vs_opt().unwrap()
    );
}
