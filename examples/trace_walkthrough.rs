//! A message-level walkthrough of the lease protocol.
//!
//! Run with `cargo run --example trace_walkthrough`.
//!
//! Prints every probe/response/update/release on a 5-node path, indented
//! by causal depth, while the canonical R-W-W pattern plays out — the
//! exact choreography Figures 1–3 of the paper describe.

use oat::prelude::*;
use oat::sim::trace::record_sequential;
use oat::sim::viz::render_leases;
use oat::sim::{Engine, Schedule};

fn main() {
    let tree = Tree::path(5);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);

    let seq = [
        Request::write(NodeId(4), 100), // silent: no leases yet
        Request::combine(NodeId(0)),    // probes flood to n4, leases set on the way back
        Request::combine(NodeId(0)),    // free
        Request::write(NodeId(4), 200), // update cascade n4 -> n0
        Request::write(NodeId(4), 300), // second write: updates + release cascade
        Request::write(NodeId(4), 400), // silent again: leases broken
        Request::combine(NodeId(0)),    // re-probe
    ];

    println!("== RWW on a 5-node path: n0 - n1 - n2 - n3 - n4 ==\n");
    let trace = record_sequential(&mut eng, &seq[..3]);
    println!("{}", trace.render());
    println!("lease graph after the combines (▲ = updates flow toward the root):");
    println!("{}", render_leases(&eng));
    let trace = record_sequential(&mut eng, &seq[3..]);
    println!("{}", trace.render());
    println!("lease graph at the end (leases broken by the write burst):");
    println!("{}", render_leases(&eng));
    println!(
        "message totals: {} messages across the whole run",
        eng.stats().total()
    );
}
