//! Quickstart: a SUM aggregate over a small tree with the RWW policy.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Demonstrates the core behaviours of the paper's lease mechanism:
//! cold reads probe the tree, leases make subsequent reads free, writes
//! push updates along the lease graph, and two consecutive writes break a
//! lease (RWW = the "Read, Write, Write" policy, Figure 3).

use oat::prelude::*;

fn main() {
    // A balanced binary tree on 15 nodes (node 0 is the root).
    let tree = Tree::kary(15, 2);
    let mut sys = AggregationSystem::new(tree, SumI64, RwwSpec);

    println!("== Online Aggregation over Trees: quickstart ==\n");

    // Every node reports a load figure.
    for i in 0..15u32 {
        sys.write(NodeId(i), i64::from(i));
    }
    println!(
        "seeded 15 local values; messages so far: {} (writes are silent without leases)",
        sys.messages_sent()
    );

    // First read at a leaf: probes flood up and across the tree.
    let before = sys.messages_sent();
    let total = sys.read(NodeId(14));
    println!(
        "first combine at n14 -> {total} (cost {} messages: probe/response over all {} edges)",
        sys.messages_sent() - before,
        sys.tree().num_edges()
    );

    // Second read: the probe pass set leases everywhere toward n14.
    let before = sys.messages_sent();
    let total = sys.read(NodeId(14));
    println!(
        "second combine at n14 -> {total} (cost {} messages: answered from leases)",
        sys.messages_sent() - before
    );

    // A write now pushes its update along the lease path toward n14.
    let before = sys.messages_sent();
    sys.write(NodeId(0), 100);
    println!(
        "write at n0 -> pushed {} updates along the lease graph",
        sys.messages_sent() - before
    );
    let before = sys.messages_sent();
    let total = sys.read(NodeId(14));
    println!(
        "combine at n14 -> {total} (cost {}: the lease kept it fresh)",
        sys.messages_sent() - before
    );

    // Two consecutive writes at the same side break the lease (the
    // second W of R-W-W), so the system stops paying for pushes that
    // nobody reads.
    let before = sys.messages_sent();
    sys.write(NodeId(0), 200);
    sys.write(NodeId(0), 300);
    sys.write(NodeId(0), 400);
    sys.write(NodeId(0), 500);
    println!(
        "four more writes at n0 -> only {} messages (lease broken after two, then silence)",
        sys.messages_sent() - before
    );

    let before = sys.messages_sent();
    let total = sys.read(NodeId(14));
    println!(
        "final combine at n14 -> {total} (cost {}: re-probes the broken part)",
        sys.messages_sent() - before
    );

    println!("\ntotal messages: {}", sys.messages_sent());
}
