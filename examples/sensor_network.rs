//! Sensor network: TAG-style in-network aggregation.
//!
//! Run with `cargo run --example sensor_network`.
//!
//! A field of temperature sensors arranged in a random tree reports
//! readings; a single base station occasionally asks for the minimum,
//! maximum, and average temperature — all three in one pass, using the
//! product operator `PairOp`. The workload is write-dominated (sensors
//! sample often, the base station reads rarely), the regime where
//! push-everything strategies drown and lease-based aggregation shines.

use oat::prelude::*;
use oat_core::agg::{AvgI64, MeanValue, PairOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type SensorOp = PairOp<PairOp<MinI64, MaxI64>, AvgI64>;
type SensorValue = ((i64, i64), MeanValue);

fn sample(temp_deci_c: i64) -> SensorValue {
    ((temp_deci_c, temp_deci_c), MeanValue::sample(temp_deci_c))
}

fn main() {
    let n = 100;
    let tree = oat::workloads::random_tree(n, 2024);
    let base = NodeId(0);
    let op: SensorOp = PairOp(PairOp(MinI64, MaxI64), AvgI64);
    let mut sys = AggregationSystem::new(tree, op, RwwSpec);

    println!("== {n}-sensor field, random tree, base station at n0 ==\n");

    let mut rng = StdRng::seed_from_u64(7);
    let mut total_reads = 0u64;
    for round in 1..=10 {
        // Each round: every sensor samples ~3 times, base reads once.
        for _ in 0..3 * (n - 1) {
            let sensor = NodeId(rng.gen_range(1..n as u32));
            // Temperatures in deci-degrees around 21.5C with noise.
            let t = 215 + rng.gen_range(-40..=40);
            sys.write(sensor, sample(t));
        }
        let before = sys.messages_sent();
        let ((min, max), mean) = sys.read(base);
        total_reads += 1;
        println!(
            "round {round:>2}: min {:>5.1}C  max {:>5.1}C  avg {:>5.1}C   (read cost: {} msgs)",
            min as f64 / 10.0,
            max as f64 / 10.0,
            mean.mean().unwrap_or(f64::NAN) / 10.0,
            sys.messages_sent() - before
        );
    }

    let total = sys.messages_sent();
    println!(
        "\ntotal messages: {total} for {} writes and {total_reads} reads",
        30 * (n - 1)
    );
    println!(
        "average cost per request: {:.2} messages (tree has {} edges)",
        total as f64 / (30.0 * (n as f64 - 1.0) + total_reads as f64),
        n - 1
    );
    println!(
        "\nA push-all strategy would pay ~{} messages per write round instead:",
        n - 1
    );
    println!("leases break after two unread writes, so sensor chatter stays local.");
}
