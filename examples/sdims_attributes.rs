//! Multi-attribute aggregation: SDIMS's flexibility, without the knobs.
//!
//! Run with `cargo run --example sdims_attributes`.
//!
//! SDIMS lets applications tune update propagation per attribute —
//! *if* they know their read/write mix in advance. With one lease
//! mechanism instance per attribute, the tuning is automatic: each
//! attribute's lease graph converges to the strategy its own workload
//! wants. Here a 32-machine cluster aggregates three attributes with
//! opposite access patterns and we watch each adapt independently.

use oat::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let tree = Tree::kary(32, 4);
    let mut sys = MultiSystem::new(tree, SumI64, RwwSpec);
    let mut rng = StdRng::seed_from_u64(11);

    println!("== 32-machine cluster, 3 attributes, RWW per attribute ==\n");
    println!("  cpu-load : dashboards read constantly, machines report rarely");
    println!("  disk-io  : machines report constantly, nobody reads");
    println!("  alerts   : balanced mix\n");

    for round in 0..400 {
        // cpu-load: ~90% reads from the two dashboard nodes.
        if rng.gen_bool(0.9) {
            sys.read(NodeId(rng.gen_range(0..2)), "cpu-load");
        } else {
            sys.write(
                NodeId(rng.gen_range(2..32)),
                "cpu-load",
                rng.gen_range(0..100),
            );
        }
        // disk-io: ~95% writes from machines.
        if rng.gen_bool(0.95) {
            sys.write(
                NodeId(rng.gen_range(2..32)),
                "disk-io",
                rng.gen_range(0..1000),
            );
        } else {
            sys.read(NodeId(0), "disk-io");
        }
        // alerts: 50/50 anywhere.
        if rng.gen_bool(0.5) {
            sys.read(NodeId(rng.gen_range(0..32)), "alerts");
        } else {
            sys.write(NodeId(rng.gen_range(0..32)), "alerts", rng.gen_range(0..5));
        }
        if round == 0 || round == 399 {
            println!(
                "after round {:>3}: cpu-load={:>5} msgs, disk-io={:>5} msgs, alerts={:>5} msgs",
                round + 1,
                sys.messages_for("cpu-load"),
                sys.messages_for("disk-io"),
                sys.messages_for("alerts"),
            );
        }
    }

    println!();
    // Show the steady-state per-request costs for each attribute.
    for attr in ["cpu-load", "disk-io", "alerts"] {
        let before = sys.messages_for(attr);
        sys.read(NodeId(0), attr);
        let read_cost = sys.messages_for(attr) - before;
        let before = sys.messages_for(attr);
        sys.write(NodeId(31), attr, 1);
        let write_cost = sys.messages_for(attr) - before;
        println!(
            "steady state {attr:<9}: one read costs {read_cost:>2} msgs, one write costs {write_cost:>2} msgs"
        );
    }

    println!(
        "\ntotal: {} messages over {} attribute-requests; each attribute found",
        sys.messages_total(),
        3 * 400 + 6
    );
    println!("its own strategy — no a-priori tuning, exactly what SDIMS needs knobs for.");
}
