//! A 15-node TCP aggregation cluster on loopback.
//!
//! Run with `cargo run --example tcp_cluster`.
//!
//! Spawns one server thread + `TcpListener` per node of a binary tree,
//! wires the tree edges as persistent TCP connections, then drives
//! combine/write traffic through `ClusterClient`s exactly as an external
//! process would — length-prefixed frames over sockets, no shared state.
//! At the end it pulls a per-node metrics snapshot over the wire and
//! prints the cluster-wide per-edge/per-kind message stats as JSON.

use oat::core::agg::SumI64;
use oat::core::policy::rww::RwwSpec;
use oat::core::tree::{NodeId, Tree};
use oat::net::Cluster;

fn main() {
    let tree = Tree::kary(15, 2);
    let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).expect("spawn cluster");
    println!("== 15-node binary tree, RWW leases, one TCP listener per node ==\n");
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("  node {i:>2}  {addr}");
    }

    // The leaves (7..15 in a 15-node binary kary tree) report values; two
    // frontends at nodes 1 and 2 read the global sum.
    let mut frontends: Vec<_> = [1u32, 2]
        .iter()
        .map(|&n| cluster.client(NodeId(n)).expect("connect frontend"))
        .collect();

    println!("\n-- round 1: cold reads, then writes at every leaf --");
    for f in &mut frontends {
        let v = f.combine().expect("combine");
        println!("  combine @ node {} = {v}", f.node().0);
    }
    for leaf in 7u32..15 {
        let mut c = cluster.client(NodeId(leaf)).expect("connect leaf");
        c.write(leaf as i64).expect("write");
    }
    cluster.quiesce();
    println!("  messages so far: {}", cluster.total_messages());

    // RWW released some leases during the write burst (write-write runs),
    // so these reads are cheaper than cold but not free.
    println!("\n-- round 2: reads after the write burst --");
    let before = cluster.total_messages();
    for f in &mut frontends {
        let v = f.combine().expect("combine");
        println!("  combine @ node {} = {v}", f.node().0);
    }
    cluster.quiesce();
    println!(
        "  extra messages for round-2 reads: {}",
        cluster.total_messages() - before
    );

    println!("\n-- per-node metrics (served over the wire) --");
    for n in [0u32, 1, 7] {
        let m = cluster.node_metrics(NodeId(n)).expect("metrics");
        println!(
            "  node {:>2}: sent {:>3} msgs, delivered {:>3}, leases taken {} / granted {}, inbox peak {}",
            n,
            m.sent_total(),
            m.delivered,
            m.leases_taken,
            m.leases_granted,
            m.queue_peak,
        );
    }

    println!("\n-- cluster-wide message stats (JSON) --");
    println!("{}", cluster.stats_json().expect("stats"));

    let report = cluster.shutdown();
    println!("\ncluster down; {} messages total", report.stats.total());
}
