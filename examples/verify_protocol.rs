//! Protocol verification, live: model checking + the consistency
//! hierarchy.
//!
//! Run with `cargo run --release --example verify_protocol`.
//!
//! Two parts:
//!
//! 1. **Exhaustive model checking** — enumerate *every* interleaving of
//!    a small concurrent execution and check invariants, completion, and
//!    causal consistency in the whole state space (Theorem 4, verified
//!    rather than sampled).
//! 2. **The consistency hierarchy** — build the IRIW race on a 4-node
//!    path with surgical message deliveries: two readers observe two
//!    independent writes in opposite orders. The execution passes the
//!    causal checker and fails the sequential-consistency checker —
//!    exactly the separation that makes causal consistency the right
//!    target for Section 5.

use oat::consistency::{check_causal, check_sequentially_consistent, own_histories};
use oat::modelcheck::{check_all_interleavings, Limits};
use oat::prelude::*;
use oat::sim::{Engine, Schedule};
use oat_core::mechanism::CombineOutcome;
use oat_core::request::Request;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn main() {
    println!("== Part 1: exhaustive model checking ==\n");
    let tree = Tree::path(3);
    let script = vec![
        Request::combine(n(0)),
        Request::combine(n(2)),
        Request::write(n(1), 1),
        Request::combine(n(1)),
        Request::write(n(0), 2),
        Request::write(n(2), 3),
    ];
    println!("instance: 3-node path, 6 requests (3 combines racing 3 writes)");
    let rep = check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits::default())
        .expect("every interleaving verifies");
    println!(
        "explored {} distinct global states over {} transitions;",
        rep.distinct_states, rep.transitions
    );
    println!(
        "{} terminal states, {} quiescent checkpoints, max {} messages in flight",
        rep.terminal_states, rep.quiescent_states, rep.max_in_flight
    );
    println!("verdict: invariants + completion + causal consistency hold on EVERY schedule\n");

    println!("== Part 2: causal vs sequential consistency (IRIW) ==\n");
    let tree = Tree::path(4);
    let mut eng: Engine<RwwSpec, SumI64> =
        Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, true);
    // Lay leases toward both middle readers.
    eng.initiate_combine(n(1));
    eng.run_to_quiescence();
    eng.initiate_combine(n(2));
    eng.run_to_quiescence();
    // Independent writes at both ends, racing through the middle.
    eng.initiate_write(n(0), 1);
    eng.initiate_write(n(3), 2);
    // Deliver surgically: reader 1 sees only write A...
    eng.deliver_from(n(0), n(1)).unwrap();
    let r1 = match eng.initiate_combine(n(1)) {
        CombineOutcome::Done(v) => v,
        _ => unreachable!(),
    };
    // ...reader 2 sees only write B.
    eng.deliver_from(n(3), n(2)).unwrap();
    let r2 = match eng.initiate_combine(n(2)) {
        CombineOutcome::Done(v) => v,
        _ => unreachable!(),
    };
    eng.run_to_quiescence();
    println!("writers: n0 wrote 1, n3 wrote 2 (concurrently)");
    println!("reader n1 returned {r1}  (saw write A only)");
    println!("reader n2 returned {r2}  (saw write B only)");

    let logs: Vec<_> = eng
        .tree()
        .nodes()
        .map(|u| eng.node(u).ghost().unwrap().log.clone())
        .collect();
    let causal = check_causal(&SumI64, &logs);
    let sc = check_sequentially_consistent(&SumI64, &own_histories(&logs));
    println!(
        "\ncausal consistency:     {}",
        if causal.is_ok() {
            "HOLDS (Theorem 4)"
        } else {
            "violated?!"
        }
    );
    println!(
        "sequential consistency: {}",
        if sc.is_none() {
            "FAILS — no total order explains both readers"
        } else {
            "holds?!"
        }
    );
    println!("\nThat one-sided gap is the paper's Section-5 design point:");
    println!("causal consistency is the strongest of the classic models that");
    println!("lease-based aggregation can guarantee under concurrency.");
}
