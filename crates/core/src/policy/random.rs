//! Randomized lease-breaking (an extension beyond the paper).
//!
//! Deterministic online algorithms face the Theorem-3 lower bound of 5/2
//! because the adversary knows exactly when RWW's lease breaks.
//! Randomization is the classic counter (cf. marker algorithms for
//! paging): break the lease after each unread write with probability
//! `1/b`, so the *expected* tolerance is `b` writes but the adversary
//! can no longer predict the break point. [`RandomBreakSpec`] implements
//! that policy; the ablation experiment measures its expected cost on
//! the deterministic adversary and on random workloads.
//!
//! The policy is still lease-based, so every structural guarantee of the
//! paper (strict consistency sequentially, causal consistency
//! concurrently) holds verbatim; only the cost behaviour changes.
//! Randomness is a per-node deterministic splitmix64 stream seeded from
//! the spec, keeping simulations reproducible.

use super::{NodePolicy, PolicySpec};

/// Spec for the randomized-break policy: grant on first combine (like
/// RWW), break each unread write with probability `1/b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomBreakSpec {
    /// Expected number of tolerated writes (`b ≥ 1`); the break
    /// probability per unread write is `1/b`.
    pub b: u32,
    /// Seed for the per-node random streams.
    pub seed: u64,
}

impl RandomBreakSpec {
    /// New spec with expected write tolerance `b ≥ 1`.
    pub fn new(b: u32, seed: u64) -> Self {
        assert!(b >= 1);
        RandomBreakSpec { b, seed }
    }
}

/// Per-node state for [`RandomBreakSpec`].
#[derive(Clone, Debug, Hash)]
pub struct RandomBreakNode {
    b: u32,
    rng: u64,
    /// Marked-for-break flag per taken neighbour.
    marked: Vec<bool>,
}

impl RandomBreakNode {
    /// splitmix64 step.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// True with probability `1/b`.
    fn flip(&mut self) -> bool {
        self.next_u64().is_multiple_of(self.b as u64)
    }
}

impl PolicySpec for RandomBreakSpec {
    type Node = RandomBreakNode;

    fn build(&self, degree: usize) -> RandomBreakNode {
        RandomBreakNode {
            b: self.b,
            // Mix the degree in so distinct nodes draw distinct streams
            // even under a shared spec seed.
            rng: self.seed ^ (degree as u64).wrapping_mul(0x9e3779b97f4a7c15),
            marked: vec![false; degree],
        }
    }

    fn name(&self) -> String {
        format!("RandomBreak(1/{})", self.b)
    }
}

impl NodePolicy for RandomBreakNode {
    fn on_combine(&mut self, tkn: &[usize]) {
        for &v in tkn {
            self.marked[v] = false;
        }
    }

    fn on_probe_rcvd(&mut self, w: usize, tkn: &[usize]) {
        for &v in tkn {
            if v != w {
                self.marked[v] = false;
            }
        }
    }

    fn on_response_rcvd(&mut self, flag: bool, w: usize) {
        if flag {
            self.marked[w] = false;
        }
    }

    fn on_update_rcvd(&mut self, w: usize, lone_grant: bool) {
        if lone_grant && !self.marked[w] && self.flip() {
            self.marked[w] = true;
        }
    }

    fn on_release_rcvd(&mut self, _w: usize) {}

    fn set_lease(&mut self, _w: usize) -> bool {
        true
    }

    fn break_lease(&mut self, v: usize) -> bool {
        self.marked[v]
    }

    fn release_policy(&mut self, v: usize, uaw_len: usize) {
        // A cascading release reports `uaw_len` still-unread writes:
        // give each its coin, as if they had arrived as lone updates.
        for _ in 0..uaw_len {
            if self.marked[v] {
                break;
            }
            if self.flip() {
                self.marked[v] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_one_breaks_on_first_unread_write() {
        // With b = 1 the coin always lands heads: behaves like (1,1).
        let spec = RandomBreakSpec::new(1, 7);
        let mut p = spec.build(1);
        p.on_response_rcvd(true, 0);
        assert!(!p.break_lease(0));
        p.on_update_rcvd(0, true);
        assert!(p.break_lease(0));
    }

    #[test]
    fn reads_reset_the_mark() {
        let spec = RandomBreakSpec::new(1, 7);
        let mut p = spec.build(2);
        p.on_response_rcvd(true, 0);
        p.on_update_rcvd(0, true);
        assert!(p.break_lease(0));
        p.on_combine(&[0]);
        assert!(!p.break_lease(0), "combine clears the break mark");
    }

    #[test]
    fn expected_tolerance_is_roughly_b() {
        // Count writes until break over many trials; mean ≈ b.
        let b = 4u32;
        let mut total = 0u64;
        let trials = 2000;
        for seed in 0..trials {
            let spec = RandomBreakSpec::new(b, seed);
            let mut p = spec.build(1);
            p.on_response_rcvd(true, 0);
            let mut writes = 0u64;
            loop {
                writes += 1;
                p.on_update_rcvd(0, true);
                if p.break_lease(0) {
                    break;
                }
            }
            total += writes;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - b as f64).abs() < 0.4,
            "geometric mean should be ≈ {b}, got {mean}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let spec = RandomBreakSpec::new(3, seed);
            let mut p = spec.build(1);
            p.on_response_rcvd(true, 0);
            let mut pattern = Vec::new();
            for _ in 0..20 {
                p.on_update_rcvd(0, true);
                pattern.push(p.break_lease(0));
            }
            pattern
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds diverge (overwhelmingly)");
    }
}
