//! The RWW policy (Figure 3).
//!
//! RWW ("Read, Write, Write") sets the lease from `u` to `v` during the
//! execution of a combine request at a node in `subtree(v,u)`, and breaks
//! it after two consecutive write requests at nodes in `subtree(u,v)`
//! (Section 4.1). Corollary 4.1: RWW is a `(1,2)`-algorithm.
//!
//! The per-edge state is the paper's lease counter `lt[v] ∈ {0, 1, 2}`
//! whose maintenance is spelled out in the proof of Lemma 4.2:
//!
//! * on a local combine (`T1`), `lt[v] := 2` for every taken neighbour `v`;
//! * on a probe from `w` (`T3`), `lt[v] := 2` for every taken `v ≠ w`;
//! * on a response with `flag = true` (`T4`), `lt[w] := 2`;
//! * on an update from `w` (`T5`), if `grntd() \ {w} = ∅` then
//!   `lt[w] := lt[w] − 1`;
//! * `releasepolicy(v)` sets `lt[v] := lt[v] − |uaw[v]|`;
//! * `setlease(w)` always returns **true**;
//! * `breaklease(v)` returns `lt[v] = 0`.
//!
//! The invariant `I4` (Lemma 4.2) ties `lt` to the mechanism state: when
//! `taken[v]` holds and no other lease is granted, `lt[v] + |uaw[v]| = 2`
//! and `lt[v] > 0`; the simulator's test suite checks it in every quiescent
//! state.

use super::{NodePolicy, PolicySpec};

/// Spec for the RWW policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RwwSpec;

/// Per-node RWW state: the lease counter `lt[v]` per neighbour.
#[derive(Clone, Debug, Hash)]
pub struct RwwNode {
    lt: Vec<u8>,
}

impl RwwNode {
    /// Current `lt` value for a neighbour (exposed for invariant checks).
    pub fn lt(&self, v: usize) -> u8 {
        self.lt[v]
    }
}

impl PolicySpec for RwwSpec {
    type Node = RwwNode;

    fn build(&self, degree: usize) -> RwwNode {
        RwwNode {
            lt: vec![0; degree],
        }
    }

    fn name(&self) -> String {
        "RWW".to_string()
    }
}

impl NodePolicy for RwwNode {
    fn on_combine(&mut self, tkn: &[usize]) {
        for &v in tkn {
            self.lt[v] = 2;
        }
    }

    fn on_probe_rcvd(&mut self, w: usize, tkn: &[usize]) {
        for &v in tkn {
            if v != w {
                self.lt[v] = 2;
            }
        }
    }

    fn on_response_rcvd(&mut self, flag: bool, w: usize) {
        if flag {
            self.lt[w] = 2;
        }
    }

    fn on_update_rcvd(&mut self, w: usize, lone_grant: bool) {
        if lone_grant {
            self.lt[w] = self.lt[w].saturating_sub(1);
        }
    }

    fn on_release_rcvd(&mut self, _w: usize) {}

    fn set_lease(&mut self, _w: usize) -> bool {
        true
    }

    fn break_lease(&mut self, v: usize) -> bool {
        self.lt[v] == 0
    }

    fn release_policy(&mut self, v: usize, uaw_len: usize) {
        self.lt[v] = self.lt[v].saturating_sub(uaw_len.min(u8::MAX as usize) as u8);
    }

    fn on_prewarm(&mut self) {
        for lt in &mut self.lt {
            *lt = 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_refreshes_taken_neighbours() {
        let mut p = RwwSpec.build(3);
        p.on_update_rcvd(1, true); // lt[1] saturates at 0
        p.on_response_rcvd(true, 1);
        assert_eq!(p.lt(1), 2);
        p.on_update_rcvd(1, true);
        assert_eq!(p.lt(1), 1);
        p.on_combine(&[1, 2]);
        assert_eq!(p.lt(1), 2);
        assert_eq!(p.lt(2), 2);
    }

    #[test]
    fn two_updates_trigger_break() {
        let mut p = RwwSpec.build(2);
        p.on_response_rcvd(true, 0);
        assert!(!p.break_lease(0));
        p.on_update_rcvd(0, true);
        assert!(!p.break_lease(0));
        p.on_update_rcvd(0, true);
        assert!(p.break_lease(0), "lease must break after 2 writes");
    }

    #[test]
    fn probe_refreshes_other_taken_neighbours_only() {
        let mut p = RwwSpec.build(3);
        p.on_response_rcvd(true, 0);
        p.on_response_rcvd(true, 2);
        p.on_update_rcvd(0, true);
        p.on_update_rcvd(2, true);
        p.on_probe_rcvd(0, &[0, 2]);
        assert_eq!(p.lt(0), 1, "the probing edge itself is not refreshed");
        assert_eq!(p.lt(2), 2);
    }

    #[test]
    fn update_with_other_grants_does_not_decrement() {
        let mut p = RwwSpec.build(2);
        p.on_response_rcvd(true, 0);
        p.on_update_rcvd(0, false);
        assert_eq!(
            p.lt(0),
            2,
            "lt only decrements when grntd()\\{{w}} is empty"
        );
    }

    #[test]
    fn release_policy_subtracts_uaw() {
        let mut p = RwwSpec.build(1);
        p.on_response_rcvd(true, 0);
        p.release_policy(0, 2);
        assert_eq!(p.lt(0), 0);
        assert!(p.break_lease(0));
    }

    #[test]
    fn setlease_always_true() {
        let mut p = RwwSpec.build(1);
        assert!(p.set_lease(0));
    }
}
