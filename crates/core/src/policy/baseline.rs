//! Static baseline policies from the paper's motivation (Section 1).
//!
//! * [`AlwaysLeaseSpec`] grants every lease on first contact and never
//!   breaks: once the lease graph saturates, every write is pushed to all
//!   nodes and every combine is answered locally — the **Astrolabe**
//!   strategy. Combined with the simulator's *prewarm* option (all leases
//!   pre-established in the initial quiescent state) it models Astrolabe
//!   exactly.
//! * [`NeverLeaseSpec`] never grants a lease: writes are silent and every
//!   combine floods probes through the whole tree — the **MDS-2**
//!   strategy.
//!
//! Both are lease-based algorithms in the paper's sense, so they inherit
//! strict consistency in sequential executions (Lemma 3.12) and causal
//! consistency in concurrent ones (Theorem 4); only their message costs
//! differ.

use super::{NodePolicy, PolicySpec};

/// Push-all baseline: grant always, never break (Astrolabe-like).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysLeaseSpec;

/// Per-node state for [`AlwaysLeaseSpec`] (stateless).
#[derive(Clone, Copy, Debug, Default, Hash)]
pub struct AlwaysLeaseNode;

impl PolicySpec for AlwaysLeaseSpec {
    type Node = AlwaysLeaseNode;
    fn build(&self, _degree: usize) -> AlwaysLeaseNode {
        AlwaysLeaseNode
    }
    fn name(&self) -> String {
        "AlwaysLease".to_string()
    }
}

impl NodePolicy for AlwaysLeaseNode {
    fn on_combine(&mut self, _tkn: &[usize]) {}
    fn on_probe_rcvd(&mut self, _w: usize, _tkn: &[usize]) {}
    fn on_response_rcvd(&mut self, _flag: bool, _w: usize) {}
    fn on_update_rcvd(&mut self, _w: usize, _lone_grant: bool) {}
    fn on_release_rcvd(&mut self, _w: usize) {}
    fn set_lease(&mut self, _w: usize) -> bool {
        true
    }
    fn break_lease(&mut self, _v: usize) -> bool {
        false
    }
    fn release_policy(&mut self, _v: usize, _uaw_len: usize) {}
}

/// Pull-all baseline: never grant (MDS-2-like).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverLeaseSpec;

/// Per-node state for [`NeverLeaseSpec`] (stateless).
#[derive(Clone, Copy, Debug, Default, Hash)]
pub struct NeverLeaseNode;

impl PolicySpec for NeverLeaseSpec {
    type Node = NeverLeaseNode;
    fn build(&self, _degree: usize) -> NeverLeaseNode {
        NeverLeaseNode
    }
    fn name(&self) -> String {
        "NeverLease".to_string()
    }
}

impl NodePolicy for NeverLeaseNode {
    fn on_combine(&mut self, _tkn: &[usize]) {}
    fn on_probe_rcvd(&mut self, _w: usize, _tkn: &[usize]) {}
    fn on_response_rcvd(&mut self, _flag: bool, _w: usize) {}
    fn on_update_rcvd(&mut self, _w: usize, _lone_grant: bool) {}
    fn on_release_rcvd(&mut self, _w: usize) {}
    fn set_lease(&mut self, _w: usize) -> bool {
        false
    }
    fn break_lease(&mut self, _v: usize) -> bool {
        // Break immediately if a lease somehow exists (e.g. prewarmed).
        true
    }
    fn release_policy(&mut self, _v: usize, _uaw_len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_grants_never_breaks() {
        let mut p = AlwaysLeaseSpec.build(4);
        assert!(p.set_lease(2));
        assert!(!p.break_lease(2));
    }

    #[test]
    fn never_grants() {
        let mut p = NeverLeaseSpec.build(4);
        assert!(!p.set_lease(0));
        assert!(p.break_lease(0));
    }
}
