//! Lease policies: the underlined stubs of Figure 1.
//!
//! The mechanism of Figure 1 is generic in eight *policy decision points*
//! (underlined in the paper): `oncombine`, `probercvd`, `responsercvd`,
//! `updatercvd`, `releasercvd`, `setlease`, `breaklease`, and
//! `releasepolicy`. A concrete lease-based algorithm is the mechanism plus
//! an implementation of these stubs.
//!
//! This module defines the [`NodePolicy`] trait mirroring those stubs (with
//! one extension hook, [`NodePolicy::on_local_write`], needed by
//! generalised `(a,b)` policies with `a > 1`; it is a no-op for every
//! policy in the paper), and the [`PolicySpec`] factory that builds a
//! per-node policy instance.
//!
//! Shipped policies:
//!
//! * [`rww::RwwSpec`] — the paper's online algorithm **RWW** (Figure 3),
//! * [`ab::AbSpec`] — distributed realisation of the `(a,b)` class
//!   (Section 4.2); `AbSpec::new(1, 2)` behaves exactly like RWW,
//! * [`baseline::AlwaysLeaseSpec`] — push-all (Astrolabe-like),
//! * [`baseline::NeverLeaseSpec`] — pull-all (MDS-2-like),
//! * [`random::RandomBreakSpec`] — randomized breaking (an extension:
//!   break each unread write with probability `1/b`).

pub mod ab;
pub mod baseline;
pub mod random;
pub mod rww;

/// Per-node policy state and the Figure-1 policy stubs.
///
/// All neighbour arguments are *neighbour indices* (positions within the
/// node's sorted neighbour list), not node ids; the mechanism owns the
/// translation. `tkn` slices list the indices of neighbours `v` with
/// `taken[v]` at the time of the call.
pub trait NodePolicy: Send {
    /// `oncombine(u)`: a combine request was initiated locally.
    fn on_combine(&mut self, tkn: &[usize]);

    /// `probercvd(w)`: a probe was received from neighbour `w`.
    fn on_probe_rcvd(&mut self, w: usize, tkn: &[usize]);

    /// `responsercvd(flag, w)`: a response with lease flag `flag` was
    /// received from neighbour `w`.
    fn on_response_rcvd(&mut self, flag: bool, w: usize);

    /// `updatercvd(w)`: an update was received from neighbour `w`.
    /// `lone_grant` reports whether `grntd() \ {w} = ∅` held on receipt —
    /// the condition under which RWW decrements its lease counter.
    fn on_update_rcvd(&mut self, w: usize, lone_grant: bool);

    /// `releasercvd(w)`: a release was received from neighbour `w`.
    fn on_release_rcvd(&mut self, w: usize);

    /// Extension hook: a write request executed locally (`T2`). Figure 1
    /// has no stub here; policies that count per-edge write runs on the
    /// grant side (`(a,b)` with `a > 1`) need it. Default: no-op.
    fn on_local_write(&mut self) {}

    /// `setlease(w)`: decide whether to grant a lease to neighbour `w`
    /// while sending it a response. May mutate policy state (e.g. reset a
    /// combine-run counter on granting).
    fn set_lease(&mut self, w: usize) -> bool;

    /// `breaklease(v)`: decide whether to break the lease taken from
    /// neighbour `v` (consulted inside `forwardrelease`).
    fn break_lease(&mut self, v: usize) -> bool;

    /// `releasepolicy(v)`: invoked by `onrelease` after the `uaw[v]`
    /// truncation, with the surviving `|uaw[v]|`.
    fn release_policy(&mut self, v: usize, uaw_len: usize);

    /// Called when the simulator pre-establishes all leases (a warm-start
    /// quiescent state used by the push-all baseline); the policy should
    /// initialise per-edge state as if a lease had just been set on every
    /// edge. Default: no-op.
    fn on_prewarm(&mut self) {}
}

/// Factory for per-node policies; one spec describes a whole algorithm.
pub trait PolicySpec: Clone + Send + Sync + 'static {
    /// The per-node policy type.
    type Node: NodePolicy;

    /// Builds the policy state for a node with `degree` neighbours.
    fn build(&self, degree: usize) -> Self::Node;

    /// Algorithm name for reports (e.g. `"RWW"`).
    fn name(&self) -> String;
}
