//! Generalised `(a, b)` policies (Section 4.2).
//!
//! An online lease-based algorithm is an *(a,b)-algorithm* when, for every
//! ordered pair of neighbours `(u, v)` in a sequential execution:
//!
//! 1. if `u.granted[v]` is false, it becomes true after `a` consecutive
//!    combine requests in `σ(u,v)`, and
//! 2. if `u.granted[v]` is true, it becomes false after `b` consecutive
//!    write requests in `σ(u,v)`.
//!
//! RWW is the `(1,2)` instance (Corollary 4.1). This module provides a
//! distributed realisation for arbitrary `a ≥ 1`, `b ≥ 1`:
//!
//! * the break side generalises RWW's `lt` counter with budget `b`;
//! * the grant side counts consecutive probes from `v` (each combine in
//!   `σ(u,v)` reaching `u` while no lease is granted arrives as a probe),
//!   resetting the run on any write in `subtree(u,v)` observed at `u`
//!   (a local write or an update from a neighbour `≠ v`).
//!
//! For `a > 1` the probe count is a faithful proxy for the per-edge
//! definition only while the path from the requester to `u` carries no
//! leases; the exact per-edge `(a,b)` automaton used by the Theorem-3
//! analysis lives in `oat-offline::ab_replay`. For `a = 1` (including RWW)
//! the two coincide, which the cross-validation tests in `oat-offline`
//! check on random workloads.

use super::{NodePolicy, PolicySpec};

/// Spec for an `(a, b)` policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbSpec {
    /// Consecutive combines required to set a lease.
    pub a: u32,
    /// Consecutive writes required to break a lease.
    pub b: u32,
}

impl AbSpec {
    /// New `(a, b)` spec; both parameters must be positive.
    pub fn new(a: u32, b: u32) -> Self {
        assert!(a >= 1 && b >= 1, "(a,b)-algorithms require a,b >= 1");
        AbSpec { a, b }
    }
}

/// Per-node `(a,b)` state.
#[derive(Clone, Debug, Hash)]
pub struct AbNode {
    a: u32,
    b: u32,
    /// Write countdown per taken neighbour (RWW's `lt`, with budget `b`).
    lt: Vec<u32>,
    /// Consecutive-probe run length per neighbour (grant side).
    probes: Vec<u32>,
}

impl AbNode {
    /// Current write countdown for a neighbour.
    pub fn lt(&self, v: usize) -> u32 {
        self.lt[v]
    }
}

impl PolicySpec for AbSpec {
    type Node = AbNode;

    fn build(&self, degree: usize) -> AbNode {
        AbNode {
            a: self.a,
            b: self.b,
            lt: vec![0; degree],
            probes: vec![0; degree],
        }
    }

    fn name(&self) -> String {
        format!("({},{})-alg", self.a, self.b)
    }
}

impl NodePolicy for AbNode {
    fn on_combine(&mut self, tkn: &[usize]) {
        for &v in tkn {
            self.lt[v] = self.b;
        }
    }

    fn on_probe_rcvd(&mut self, w: usize, tkn: &[usize]) {
        self.probes[w] = self.probes[w].saturating_add(1);
        for &v in tkn {
            if v != w {
                self.lt[v] = self.b;
            }
        }
    }

    fn on_response_rcvd(&mut self, flag: bool, w: usize) {
        if flag {
            self.lt[w] = self.b;
        }
    }

    fn on_update_rcvd(&mut self, w: usize, lone_grant: bool) {
        if lone_grant {
            self.lt[w] = self.lt[w].saturating_sub(1);
        }
        // A write on the far side of edge w is a write in subtree(u, v)
        // for every other neighbour v: it breaks their combine runs.
        for (v, p) in self.probes.iter_mut().enumerate() {
            if v != w {
                *p = 0;
            }
        }
    }

    fn on_release_rcvd(&mut self, _w: usize) {}

    fn on_local_write(&mut self) {
        // A local write is a write in subtree(u, v) for every neighbour v.
        for p in &mut self.probes {
            *p = 0;
        }
    }

    fn set_lease(&mut self, w: usize) -> bool {
        if self.probes[w] >= self.a {
            self.probes[w] = 0;
            true
        } else {
            false
        }
    }

    fn break_lease(&mut self, v: usize) -> bool {
        self.lt[v] == 0
    }

    fn release_policy(&mut self, v: usize, uaw_len: usize) {
        self.lt[v] = self.lt[v].saturating_sub(uaw_len as u32);
    }

    fn on_prewarm(&mut self) {
        for lt in &mut self.lt {
            *lt = self.b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_two_matches_rww_shape() {
        let spec = AbSpec::new(1, 2);
        let mut p = spec.build(1);
        p.on_probe_rcvd(0, &[]);
        assert!(p.set_lease(0), "(1,2): first probe grants");
        p.on_response_rcvd(true, 0);
        p.on_update_rcvd(0, true);
        assert!(!p.break_lease(0));
        p.on_update_rcvd(0, true);
        assert!(p.break_lease(0));
    }

    #[test]
    fn a_two_needs_two_consecutive_probes() {
        let spec = AbSpec::new(2, 1);
        let mut p = spec.build(1);
        p.on_probe_rcvd(0, &[]);
        assert!(!p.set_lease(0));
        p.on_probe_rcvd(0, &[]);
        assert!(p.set_lease(0));
    }

    #[test]
    fn writes_reset_combine_runs() {
        let spec = AbSpec::new(2, 1);
        let mut p = spec.build(2);
        p.on_probe_rcvd(0, &[]);
        p.on_local_write();
        p.on_probe_rcvd(0, &[]);
        assert!(!p.set_lease(0), "local write broke the run");
        p.on_probe_rcvd(0, &[]);
        assert!(p.set_lease(0));

        // An update from a different neighbour also resets.
        p.on_probe_rcvd(0, &[]);
        p.on_update_rcvd(1, false);
        p.on_probe_rcvd(0, &[]);
        assert!(!p.set_lease(0));
    }

    #[test]
    fn update_from_same_edge_keeps_run() {
        // Writes behind neighbour 0 are in σ(v,u) for the pair (u, 0):
        // they must not reset the combine run of edge 0 itself.
        let spec = AbSpec::new(2, 1);
        let mut p = spec.build(2);
        p.on_probe_rcvd(0, &[]);
        p.on_update_rcvd(0, true);
        p.on_probe_rcvd(0, &[]);
        assert!(p.set_lease(0));
    }

    #[test]
    fn break_budget_b() {
        let spec = AbSpec::new(1, 3);
        let mut p = spec.build(1);
        p.on_response_rcvd(true, 0);
        p.on_update_rcvd(0, true);
        p.on_update_rcvd(0, true);
        assert!(!p.break_lease(0));
        p.on_update_rcvd(0, true);
        assert!(p.break_lease(0));
    }

    #[test]
    #[should_panic]
    fn zero_parameters_rejected() {
        AbSpec::new(0, 2);
    }
}
