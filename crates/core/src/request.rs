//! Requests, request sequences, and per-edge projections.
//!
//! A request is a tuple `(node, op, arg, retval)` (Section 2). The
//! competitive analysis of Sections 3–4 studies, for every ordered pair of
//! neighbouring nodes `(u, v)`, the subsequence `σ(u,v)` of a request
//! sequence `σ` containing
//!
//! * every `write` at a node of `subtree(u, v)`, and
//! * every `combine` at a node of `subtree(v, u)`.
//!
//! Lemma 4.6 further works over `σ'(u,v)`: `σ(u,v)` with a *noop* inserted
//! at the beginning, at the end, and between every pair of consecutive
//! requests — a noop is where an optimal algorithm may be charged a
//! piggy-backed `release`. [`EdgeEvent`] models the three event kinds
//! (`R`/`W`/`N` in Figure 2) and [`sigma`] / [`sigma_prime`] compute the
//! projections.

use crate::tree::{NodeId, Tree};

/// The operation of a request, carrying the written value for writes.
#[derive(Clone, Debug, PartialEq)]
pub enum ReqOp<V> {
    /// Return the global aggregate value at the requesting node.
    Combine,
    /// Replace the local value at the requesting node.
    Write(V),
}

impl<V> ReqOp<V> {
    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, ReqOp::Write(_))
    }

    /// True for combines.
    pub fn is_combine(&self) -> bool {
        matches!(self, ReqOp::Combine)
    }
}

/// A request initiated at a node.
#[derive(Clone, Debug, PartialEq)]
pub struct Request<V> {
    /// The node where the request is initiated.
    pub node: NodeId,
    /// The operation (and argument, for writes).
    pub op: ReqOp<V>,
}

impl<V> Request<V> {
    /// A combine request at `node`.
    pub fn combine(node: NodeId) -> Self {
        Request {
            node,
            op: ReqOp::Combine,
        }
    }

    /// A write request at `node` with argument `arg`.
    pub fn write(node: NodeId, arg: V) -> Self {
        Request {
            node,
            op: ReqOp::Write(arg),
        }
    }
}

/// An event of the projected per-edge sequence `σ(u,v)` / `σ'(u,v)`
/// (the `R` / `W` / `N` rows of Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeEvent {
    /// A combine request at a node of `subtree(v, u)` ("R").
    R,
    /// A write request at a node of `subtree(u, v)` ("W").
    W,
    /// A noop: the possible piggy-back point for a `release` associated
    /// with a write in `σ(v, u)` ("N").
    N,
}

/// Computes `σ(u, v)` for the ordered pair of adjacent nodes `(u, v)`.
///
/// The result contains one [`EdgeEvent::W`] per write in `subtree(u,v)` and
/// one [`EdgeEvent::R`] per combine in `subtree(v,u)`, in sequence order.
/// Requests in neither category (writes on the `v` side, combines on the
/// `u` side) are dropped — they belong to `σ(v, u)`.
pub fn sigma<V>(tree: &Tree, seq: &[Request<V>], u: NodeId, v: NodeId) -> Vec<EdgeEvent> {
    assert!(tree.adjacent(u, v), "sigma requires adjacent nodes");
    let mut out = Vec::new();
    for q in seq {
        match q.op {
            ReqOp::Write(_) => {
                if tree.in_subtree(u, v, q.node) {
                    out.push(EdgeEvent::W);
                }
            }
            ReqOp::Combine => {
                if tree.in_subtree(v, u, q.node) {
                    out.push(EdgeEvent::R);
                }
            }
        }
    }
    out
}

/// Interleaves noops into an `σ(u,v)` projection, producing `σ'(u,v)`:
/// `N e1 N e2 N … N ek N`.
pub fn sigma_prime_of(events: &[EdgeEvent]) -> Vec<EdgeEvent> {
    let mut out = Vec::with_capacity(2 * events.len() + 1);
    out.push(EdgeEvent::N);
    for &e in events {
        debug_assert_ne!(e, EdgeEvent::N, "input to sigma_prime_of must be noop-free");
        out.push(e);
        out.push(EdgeEvent::N);
    }
    out
}

/// Computes `σ'(u, v)` directly from a request sequence.
pub fn sigma_prime<V>(tree: &Tree, seq: &[Request<V>], u: NodeId, v: NodeId) -> Vec<EdgeEvent> {
    sigma_prime_of(&sigma(tree, seq, u, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn sigma_on_pair() {
        let t = Tree::pair();
        let seq = vec![
            Request::combine(n(1)),
            Request::write(n(0), 5i64),
            Request::write(n(1), 7),
            Request::combine(n(0)),
        ];
        // σ(0,1): writes in subtree(0,1) = {0}, combines in subtree(1,0) = {1}.
        assert_eq!(
            sigma(&t, &seq, n(0), n(1)),
            vec![EdgeEvent::R, EdgeEvent::W]
        );
        // σ(1,0): writes at 1, combines at 0.
        assert_eq!(
            sigma(&t, &seq, n(1), n(0)),
            vec![EdgeEvent::W, EdgeEvent::R]
        );
    }

    #[test]
    fn sigma_partitions_requests() {
        // Every request appears in exactly one of σ(u,v), σ(v,u) for each
        // edge: a write at x is in σ(u,v) iff x in subtree(u,v); a combine
        // at x is in σ(u,v) iff x in subtree(v,u).
        let t = Tree::kary(9, 2);
        let seq: Vec<Request<i64>> = (0..9u32)
            .flat_map(|i| [Request::write(n(i), i as i64), Request::combine(n(i))])
            .collect();
        for (u, v) in t.dir_edges().collect::<Vec<_>>() {
            let a = sigma(&t, &seq, u, v).len();
            let b = sigma(&t, &seq, v, u).len();
            assert_eq!(a + b, seq.len(), "edge ({u},{v})");
        }
    }

    #[test]
    fn sigma_prime_shape() {
        let ev = vec![EdgeEvent::R, EdgeEvent::W];
        let sp = sigma_prime_of(&ev);
        assert_eq!(
            sp,
            vec![
                EdgeEvent::N,
                EdgeEvent::R,
                EdgeEvent::N,
                EdgeEvent::W,
                EdgeEvent::N
            ]
        );
        assert_eq!(sigma_prime_of(&[]), vec![EdgeEvent::N]);
    }

    #[test]
    fn sigma_on_path_middle_edge() {
        let t = Tree::path(4);
        let seq = vec![
            Request::write(n(0), 1i64),
            Request::write(n(3), 2),
            Request::combine(n(1)),
            Request::combine(n(2)),
        ];
        // Edge (1,2): subtree(1,2) = {0,1}, subtree(2,1) = {2,3}.
        assert_eq!(
            sigma(&t, &seq, n(1), n(2)),
            vec![EdgeEvent::W, EdgeEvent::R]
        );
        assert_eq!(
            sigma(&t, &seq, n(2), n(1)),
            vec![EdgeEvent::W, EdgeEvent::R]
        );
    }
}
