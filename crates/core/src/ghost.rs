//! Ghost state for the causal-consistency analysis (Section 5).
//!
//! Section 5.2 augments the mechanism with *ghost actions*: every node `u`
//! keeps a ghost variable `u.log`, a sequence of the requests `u` knows
//! about. `u.wlog` is the subsequence of writes. `update` and `response`
//! messages carry the sender's `wlog`, and the receiver appends the unseen
//! suffix: `log := log . (wlog_w − log)`.
//!
//! These logs exist purely for verification: the consistency checkers in
//! `oat-consistency` consume them to build the gather-write histories
//! (`gwlog`, `gwlog'`) of Section 5.3 and validate causal consistency.
//! Ghost tracking is optional at runtime so that large benchmark runs pay
//! nothing for it.

use crate::tree::NodeId;

/// A completed `write` request: `(node, index, arg)`.
///
/// `index` is the number of requests generated at `node` that completed
/// before this one (the paper's request `index` field), so `(node, index)`
/// uniquely identifies a write across the execution.
#[derive(Clone, Debug, PartialEq, Hash)]
pub struct WriteRec<V> {
    /// Node where the write was initiated.
    pub node: NodeId,
    /// Per-node completion index.
    pub index: u32,
    /// Written value.
    pub arg: V,
}

/// An entry of a node's ghost log: a write, or a locally completed combine
/// together with its return value.
#[derive(Clone, Debug, PartialEq, Hash)]
pub enum GhostReq<V> {
    /// A write request (possibly initiated at another node and learned via
    /// a piggy-backed `wlog`).
    Write(WriteRec<V>),
    /// A combine completed at this node, with its returned global
    /// aggregate value.
    Combine {
        /// Node where the combine was initiated (always the log owner).
        node: NodeId,
        /// Per-node completion index.
        index: u32,
        /// The returned global aggregate value.
        retval: V,
    },
}

impl<V> GhostReq<V> {
    /// The write record, if this entry is a write.
    pub fn as_write(&self) -> Option<&WriteRec<V>> {
        match self {
            GhostReq::Write(w) => Some(w),
            GhostReq::Combine { .. } => None,
        }
    }
}

/// Per-node ghost state: the request log and the completed-request counter
/// used to assign indices.
#[derive(Clone, Debug)]
pub struct GhostState<V> {
    /// The ghost log `u.log`.
    pub log: Vec<GhostReq<V>>,
    /// Number of requests completed at this node (source of `index`).
    pub completed: u32,
    /// Membership index over writes already present in `log`, keyed by
    /// `(node, index)`, so merging a piggy-backed `wlog` is linear.
    seen_writes: std::collections::HashSet<(u32, u32)>,
}

impl<V: Clone> GhostState<V> {
    /// Fresh, empty ghost state.
    pub fn new() -> Self {
        GhostState {
            log: Vec::new(),
            completed: 0,
            seen_writes: std::collections::HashSet::new(),
        }
    }

    /// Records a local write; returns its record (as appended to the log).
    pub fn append_local_write(&mut self, node: NodeId, arg: V) -> WriteRec<V> {
        let rec = WriteRec {
            node,
            index: self.completed,
            arg,
        };
        self.completed += 1;
        self.seen_writes.insert((rec.node.0, rec.index));
        self.log.push(GhostReq::Write(rec.clone()));
        rec
    }

    /// Records a locally completed combine and its return value.
    pub fn append_local_combine(&mut self, node: NodeId, retval: V) {
        self.log.push(GhostReq::Combine {
            node,
            index: self.completed,
            retval,
        });
        self.completed += 1;
    }

    /// The write-only projection `u.wlog`, cloned for piggy-backing on an
    /// outgoing `update` or `response` message.
    pub fn wlog(&self) -> Vec<WriteRec<V>> {
        self.log
            .iter()
            .filter_map(|e| e.as_write().cloned())
            .collect()
    }

    /// The paper's `recentwrites(u.log, ·)` at the current log end: for
    /// each origin node `0..n`, the index of its most recent write in
    /// this log, or `-1` when none is known. This is exactly the
    /// `retval` a `gather` request issued now would return (Section 5.1).
    pub fn recent_writes(&self, n: usize) -> Vec<i64> {
        let mut last = vec![-1i64; n];
        for e in &self.log {
            if let Some(w) = e.as_write() {
                last[w.node.idx()] = w.index as i64;
            }
        }
        last
    }

    /// The ghost merge `log := log . (wlog_w − log)` performed on receipt
    /// of an `update` or `response` (Section 5.2, `T4`/`T5` line 2).
    pub fn merge_wlog(&mut self, wlog: &[WriteRec<V>]) {
        for w in wlog {
            if self.seen_writes.insert((w.node.0, w.index)) {
                self.log.push(GhostReq::Write(w.clone()));
            }
        }
    }
}

impl<V: Clone> Default for GhostState<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn indices_count_completed_requests() {
        let mut g: GhostState<i64> = GhostState::new();
        let w0 = g.append_local_write(n(3), 10);
        assert_eq!(w0.index, 0);
        g.append_local_combine(n(3), 10);
        let w1 = g.append_local_write(n(3), 20);
        assert_eq!(w1.index, 2);
        assert_eq!(g.completed, 3);
    }

    #[test]
    fn wlog_filters_writes_in_order() {
        let mut g: GhostState<i64> = GhostState::new();
        g.append_local_write(n(0), 1);
        g.append_local_combine(n(0), 1);
        g.append_local_write(n(0), 2);
        let wl = g.wlog();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].arg, 1);
        assert_eq!(wl[1].arg, 2);
    }

    #[test]
    fn recent_writes_tracks_last_index_per_origin() {
        let mut g: GhostState<i64> = GhostState::new();
        assert_eq!(g.recent_writes(3), vec![-1, -1, -1]);
        g.append_local_write(n(1), 5);
        g.merge_wlog(&[WriteRec {
            node: n(2),
            index: 0,
            arg: 7,
        }]);
        g.append_local_write(n(1), 6);
        assert_eq!(g.recent_writes(3), vec![-1, 1, 0]);
    }

    #[test]
    fn merge_appends_only_unseen_suffix() {
        let mut a: GhostState<i64> = GhostState::new();
        let mut b: GhostState<i64> = GhostState::new();
        a.append_local_write(n(0), 1);
        b.append_local_write(n(1), 5);
        // b learns a's writes.
        b.merge_wlog(&a.wlog());
        assert_eq!(b.log.len(), 2);
        // Re-merging is idempotent.
        b.merge_wlog(&a.wlog());
        assert_eq!(b.log.len(), 2);
        // Order: b's own write first, then the learned one.
        assert_eq!(b.log[0].as_write().unwrap().node, n(1));
        assert_eq!(b.log[1].as_write().unwrap().node, n(0));
    }
}
