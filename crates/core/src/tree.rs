//! Tree network topology and subtree algebra.
//!
//! The paper considers a finite set of nodes arranged in a tree `T` with
//! reliable FIFO channels between neighbours. Removing an edge `(u,v)`
//! splits `T` into two components; `subtree(u,v)` denotes the component
//! containing `u` (Section 2). For two distinct nodes `u`, `v`, the
//! *u-parent of v* is the parent of `v` in `T` rooted at `u` (Section 3.2).
//!
//! [`Tree`] stores an adjacency structure plus an Euler-tour labelling of a
//! canonical rooting at node 0, which answers `subtree(u,v)` membership and
//! *u*-parent queries in `O(deg)` time without per-edge bitsets.

use std::fmt;

/// Identifier of a node (machine) in the tree network.
///
/// Node ids are dense: a tree with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Errors produced when constructing a [`Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node count was zero.
    Empty,
    /// An edge referenced a node id `>= n`.
    NodeOutOfRange(u32),
    /// An edge connected a node to itself.
    SelfLoop(u32),
    /// The same undirected edge appeared twice.
    DuplicateEdge(u32, u32),
    /// The edge count was not `n - 1`.
    WrongEdgeCount {
        /// Number of edges supplied.
        got: usize,
        /// Required number of edges (`n - 1`).
        want: usize,
    },
    /// The edges did not connect all nodes.
    Disconnected,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree must have at least one node"),
            TreeError::NodeOutOfRange(v) => write!(f, "edge endpoint {v} out of range"),
            TreeError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            TreeError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a},{b})"),
            TreeError::WrongEdgeCount { got, want } => {
                write!(f, "a tree on these nodes needs {want} edges, got {got}")
            }
            TreeError::Disconnected => write!(f, "edges do not form a connected tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// An immutable tree network topology.
///
/// Construction validates that the edge set forms a tree (connected,
/// acyclic). Neighbour lists are sorted by node id, which fixes a canonical
/// ordering used for deterministic iteration everywhere downstream.
///
/// ```
/// use oat_core::tree::{NodeId, Tree};
///
/// //     0
/// //    / \
/// //   1   2
/// //  / \
/// // 3   4
/// let t = Tree::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]).unwrap();
/// assert_eq!(t.nbrs(NodeId(1)), &[NodeId(0), NodeId(3), NodeId(4)]);
///
/// // subtree(1, 0): the component holding node 1 after cutting (1,0).
/// assert!(t.in_subtree(NodeId(1), NodeId(0), NodeId(4)));
/// assert!(!t.in_subtree(NodeId(1), NodeId(0), NodeId(2)));
/// assert_eq!(t.subtree_size(NodeId(1), NodeId(0)), 3);
///
/// // The 3-parent of 2 is the next hop from 2 toward 3.
/// assert_eq!(t.u_parent(NodeId(3), NodeId(2)), NodeId(0));
/// ```
#[derive(Clone)]
pub struct Tree {
    adj: Vec<Vec<NodeId>>,
    /// Parent of each node when rooted at node 0 (`parent[0] == 0`).
    parent: Vec<NodeId>,
    /// Euler tour entry time per node, canonical rooting at node 0.
    tin: Vec<u32>,
    /// Euler tour exit time per node (exclusive).
    tout: Vec<u32>,
    /// `dir_off[u]` is the directed-edge index base for edges leaving `u`;
    /// the directed edge `u -> adj[u][i]` has index `dir_off[u] + i`.
    dir_off: Vec<u32>,
}

impl Tree {
    /// Builds a tree on `n` nodes from `n - 1` undirected edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(TreeError::WrongEdgeCount {
                got: edges.len(),
                want: n - 1,
            });
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in edges {
            if a as usize >= n {
                return Err(TreeError::NodeOutOfRange(a));
            }
            if b as usize >= n {
                return Err(TreeError::NodeOutOfRange(b));
            }
            if a == b {
                return Err(TreeError::SelfLoop(a));
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(TreeError::DuplicateEdge(a, b));
            }
            adj[a as usize].push(NodeId(b));
            adj[b as usize].push(NodeId(a));
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        // Iterative DFS from node 0: assigns parents and Euler tour times,
        // and doubles as the connectivity check.
        let mut parent = vec![NodeId(0); n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut clock = 0u32;
        // Stack entries: (node, next neighbour index to visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        tin[0] = clock;
        clock += 1;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < adj[u].len() {
                let v = adj[u][*i].idx();
                *i += 1;
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = NodeId(u as u32);
                    tin[v] = clock;
                    clock += 1;
                    stack.push((v, 0));
                }
            } else {
                tout[u] = clock;
                stack.pop();
            }
        }
        if visited.iter().any(|&v| !v) {
            return Err(TreeError::Disconnected);
        }

        let mut dir_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for list in &adj {
            dir_off.push(acc);
            acc += list.len() as u32;
        }
        dir_off.push(acc);

        Ok(Tree {
            adj,
            parent,
            tin,
            tout,
            dir_off,
        })
    }

    /// A path (line) graph `0 - 1 - ... - (n-1)`.
    pub fn path(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
        Tree::from_edges(n, &edges).expect("path construction is always valid")
    }

    /// A star with centre `0` and leaves `1..n`.
    pub fn star(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        Tree::from_edges(n, &edges).expect("star construction is always valid")
    }

    /// A complete `k`-ary tree on `n` nodes in heap order
    /// (node `i`'s children are `k*i + 1 ..= k*i + k`, when `< n`).
    pub fn kary(n: usize, k: usize) -> Self {
        assert!(k >= 1, "arity must be at least 1");
        let edges: Vec<(u32, u32)> = (1..n as u32)
            .map(|i| (((i as usize - 1) / k) as u32, i))
            .collect();
        Tree::from_edges(n, &edges).expect("k-ary construction is always valid")
    }

    /// A two-node tree: the smallest non-trivial topology, used by the
    /// paper's lower-bound construction (Theorem 3).
    pub fn pair() -> Self {
        Tree::path(2)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the tree has a single node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a valid tree always has >= 1 node
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Sorted neighbour list of `u`.
    #[inline]
    pub fn nbrs(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.idx()]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.idx()].len()
    }

    /// Number of undirected edges (`n - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() - 1
    }

    /// Number of directed edges (`2 * (n - 1)`).
    #[inline]
    pub fn num_dir_edges(&self) -> usize {
        2 * self.num_edges()
    }

    /// Index of neighbour `v` within `u`'s neighbour list, if adjacent.
    #[inline]
    pub fn nbr_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.adj[u.idx()].binary_search(&v).ok()
    }

    /// True when `u` and `v` are adjacent.
    #[inline]
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.nbr_index(u, v).is_some()
    }

    /// Dense index of the *directed* edge `u -> v` (requires adjacency).
    ///
    /// Directed edge indices are used for per-edge message accounting: the
    /// ordered-pair costs `C(σ, u, v)` of Lemma 3.9 are sums over these.
    #[inline]
    pub fn dir_edge_index(&self, u: NodeId, v: NodeId) -> usize {
        let i = self
            .nbr_index(u, v)
            .unwrap_or_else(|| panic!("{u} and {v} are not adjacent"));
        self.dir_off[u.idx()] as usize + i
    }

    /// The directed edge `(u, v)` with the given dense index.
    pub fn dir_edge(&self, index: usize) -> (NodeId, NodeId) {
        // Binary search over the offset table.
        let u = match self.dir_off.binary_search(&(index as u32)) {
            Ok(mut pos) => {
                // Skip empty ranges (impossible in a tree with n >= 2, but
                // robust regardless).
                while pos + 1 < self.dir_off.len() && self.dir_off[pos + 1] as usize == index {
                    pos += 1;
                }
                pos
            }
            Err(pos) => pos - 1,
        };
        let v = self.adj[u][index - self.dir_off[u] as usize];
        (NodeId(u as u32), v)
    }

    /// Iterator over all directed edges in dense-index order.
    pub fn dir_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.nbrs(u).iter().map(move |&v| (u, v)))
    }

    /// True iff `x` lies in `subtree(u, v)`: the component containing `u`
    /// after removing the edge `(u, v)`.
    ///
    /// `u` and `v` must be adjacent.
    pub fn in_subtree(&self, u: NodeId, v: NodeId, x: NodeId) -> bool {
        debug_assert!(self.adjacent(u, v), "{u} and {v} must be adjacent");
        // In the canonical rooting at node 0, one of u, v is the parent of
        // the other. If v is u's parent then subtree(u,v) is the canonical
        // subtree of u; otherwise it is everything outside v's subtree.
        if self.parent[u.idx()] == v {
            self.tin[u.idx()] <= self.tin[x.idx()] && self.tin[x.idx()] < self.tout[u.idx()]
        } else {
            debug_assert_eq!(self.parent[v.idx()], u);
            !(self.tin[v.idx()] <= self.tin[x.idx()] && self.tin[x.idx()] < self.tout[v.idx()])
        }
    }

    /// Number of nodes in `subtree(u, v)`.
    pub fn subtree_size(&self, u: NodeId, v: NodeId) -> usize {
        debug_assert!(self.adjacent(u, v));
        if self.parent[u.idx()] == v {
            (self.tout[u.idx()] - self.tin[u.idx()]) as usize
        } else {
            self.len() - (self.tout[v.idx()] - self.tin[v.idx()]) as usize
        }
    }

    /// The *u*-parent of `x`: the neighbour of `x` on the path from `x`
    /// to `u`. Requires `x != u`.
    pub fn u_parent(&self, u: NodeId, x: NodeId) -> NodeId {
        assert_ne!(u, x, "u-parent is defined only for x != u");
        // The u-parent is the unique neighbour w of x with u in
        // subtree(w, x).
        for &w in self.nbrs(x) {
            if self.in_subtree(w, x, u) {
                return w;
            }
        }
        unreachable!("tree connectivity guarantees a u-parent exists")
    }

    /// The unique path from `u` to `v`, inclusive of both endpoints.
    pub fn path_between(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        if u == v {
            return vec![u];
        }
        // Walk from v toward u via u-parents, then reverse.
        let mut rev = vec![v];
        let mut x = v;
        while x != u {
            x = self.u_parent(u, x);
            rev.push(x);
        }
        rev.reverse();
        rev
    }

    /// Distance in edges between `u` and `v`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> usize {
        self.path_between(u, v).len() - 1
    }

    /// All nodes of `subtree(u, v)` (requires adjacency).
    pub fn subtree_nodes(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        self.nodes().filter(|&x| self.in_subtree(u, v, x)).collect()
    }

    /// The list of undirected edges `(min, max)`, sorted.
    pub fn undirected_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in self.nodes() {
            for &v in self.nbrs(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tree(n={}, edges={:?})",
            self.len(),
            self.undirected_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn path_structure() {
        let t = Tree::path(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.nbrs(n(0)), &[n(1)]);
        assert_eq!(t.nbrs(n(2)), &[n(1), n(3)]);
        assert_eq!(t.degree(n(4)), 1);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.num_dir_edges(), 8);
    }

    #[test]
    fn star_structure() {
        let t = Tree::star(6);
        assert_eq!(t.degree(n(0)), 5);
        for i in 1..6 {
            assert_eq!(t.nbrs(n(i)), &[n(0)]);
        }
    }

    #[test]
    fn kary_structure() {
        let t = Tree::kary(7, 2);
        assert_eq!(t.nbrs(n(0)), &[n(1), n(2)]);
        assert_eq!(t.nbrs(n(1)), &[n(0), n(3), n(4)]);
        assert_eq!(t.nbrs(n(6)), &[n(2)]);
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_edges(1, &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.num_edges(), 0);
        assert!(t.nbrs(n(0)).is_empty());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Tree::from_edges(0, &[]).err(), Some(TreeError::Empty));
        assert!(matches!(
            Tree::from_edges(3, &[(0, 1)]),
            Err(TreeError::WrongEdgeCount { .. })
        ));
        assert_eq!(
            Tree::from_edges(3, &[(0, 1), (1, 3)]).err(),
            Some(TreeError::NodeOutOfRange(3))
        );
        assert_eq!(
            Tree::from_edges(3, &[(0, 1), (1, 1)]).err(),
            Some(TreeError::SelfLoop(1))
        );
        assert_eq!(
            Tree::from_edges(3, &[(0, 1), (1, 0)]).err(),
            Some(TreeError::DuplicateEdge(1, 0))
        );
        // A cycle on {0,1,2} with node 3 dangling: n-1 edges but not a tree.
        assert!(matches!(
            Tree::from_edges(4, &[(0, 1), (1, 2), (2, 0)]),
            Err(TreeError::Disconnected)
        ));
        assert_eq!(
            Tree::from_edges(4, &[(0, 1), (1, 2), (3, 3)]).err(),
            Some(TreeError::SelfLoop(3))
        );
    }

    #[test]
    fn subtree_membership_path() {
        let t = Tree::path(5);
        // Removing (2,3): subtree(2,3) = {0,1,2}, subtree(3,2) = {3,4}.
        for x in 0..3 {
            assert!(t.in_subtree(n(2), n(3), n(x)));
            assert!(!t.in_subtree(n(3), n(2), n(x)));
        }
        for x in 3..5 {
            assert!(!t.in_subtree(n(2), n(3), n(x)));
            assert!(t.in_subtree(n(3), n(2), n(x)));
        }
        assert_eq!(t.subtree_size(n(2), n(3)), 3);
        assert_eq!(t.subtree_size(n(3), n(2)), 2);
    }

    #[test]
    fn subtree_partition_property() {
        // For every edge (u,v) and node x: exactly one of
        // in_subtree(u,v,x), in_subtree(v,u,x) holds.
        let t = Tree::kary(13, 3);
        for (u, v) in t.dir_edges().collect::<Vec<_>>() {
            for x in t.nodes() {
                assert_ne!(
                    t.in_subtree(u, v, x),
                    t.in_subtree(v, u, x),
                    "partition violated at edge ({u},{v}) node {x}"
                );
            }
            assert_eq!(t.subtree_size(u, v) + t.subtree_size(v, u), t.len());
        }
    }

    #[test]
    fn u_parent_and_paths() {
        let t = Tree::kary(7, 2);
        // Path from 3 to 6: 3 - 1 - 0 - 2 - 6.
        assert_eq!(
            t.path_between(n(3), n(6)),
            vec![n(3), n(1), n(0), n(2), n(6)]
        );
        assert_eq!(t.distance(n(3), n(6)), 4);
        assert_eq!(t.u_parent(n(3), n(6)), n(2));
        assert_eq!(t.u_parent(n(3), n(2)), n(0));
        assert_eq!(t.u_parent(n(3), n(0)), n(1));
        assert_eq!(t.u_parent(n(3), n(1)), n(3));
        assert_eq!(t.path_between(n(4), n(4)), vec![n(4)]);
    }

    #[test]
    fn dir_edge_indexing_roundtrip() {
        let t = Tree::kary(10, 3);
        let mut seen = vec![false; t.num_dir_edges()];
        for (u, v) in t.dir_edges().collect::<Vec<_>>() {
            let i = t.dir_edge_index(u, v);
            assert!(!seen[i], "directed edge index {i} repeated");
            seen[i] = true;
            assert_eq!(t.dir_edge(i), (u, v));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn subtree_nodes_consistent_with_membership() {
        let t = Tree::path(6);
        let sub = t.subtree_nodes(n(1), n(2));
        assert_eq!(sub, vec![n(0), n(1)]);
        let sub = t.subtree_nodes(n(2), n(1));
        assert_eq!(sub, vec![n(2), n(3), n(4), n(5)]);
    }
}
