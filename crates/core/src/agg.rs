//! Aggregation operators.
//!
//! Section 2 of the paper assumes an aggregation operator `⊕` that is
//! commutative, associative, and has an identity element `0`. The paper
//! takes values to be reals for concreteness; here the operator is generic
//! over its value type, so exact integer sums can be used where equality
//! checking matters (consistency oracles) and floats/min/max/average where
//! realism matters (examples).
//!
//! The *aggregate value* over a set of nodes is `⊕` folded over their local
//! values; the *global aggregate value* folds over all nodes of the tree.

use std::fmt;

/// A commutative, associative aggregation operator with identity.
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
///
/// * `combine(a, identity()) == a` (identity),
/// * `combine(a, b) == combine(b, a)` (commutativity),
/// * `combine(combine(a, b), c) == combine(a, combine(b, c))`
///   (associativity).
///
/// These are checked by property tests in this module for every shipped
/// operator.
///
/// Implementing a custom operator:
///
/// ```
/// use oat_core::agg::AggOp;
///
/// /// Greatest common divisor (gcd(0, x) = x, so 0 is the identity).
/// #[derive(Clone)]
/// struct Gcd;
///
/// impl AggOp for Gcd {
///     type Value = u64;
///     fn identity(&self) -> u64 { 0 }
///     fn combine(&self, a: &u64, b: &u64) -> u64 {
///         let (mut a, mut b) = (*a, *b);
///         while b != 0 { (a, b) = (b, a % b); }
///         a
///     }
///     fn name(&self) -> &'static str { "gcd" }
/// }
///
/// assert_eq!(Gcd.fold([12u64, 18, 30].iter()), 6);
/// ```
pub trait AggOp: Clone + Send + Sync + 'static {
    /// The value domain of the operator.
    type Value: Clone + PartialEq + fmt::Debug + Send + Sync + 'static;

    /// The identity element `0` of `⊕`.
    fn identity(&self) -> Self::Value;

    /// `a ⊕ b`.
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Human-readable operator name for reports.
    fn name(&self) -> &'static str;

    /// Folds `⊕` over an iterator of values (the paper's `f(A)`).
    fn fold<'a, I>(&self, values: I) -> Self::Value
    where
        I: IntoIterator<Item = &'a Self::Value>,
        Self::Value: 'a,
    {
        let mut acc = self.identity();
        for v in values {
            acc = self.combine(&acc, v);
        }
        acc
    }
}

/// Exact integer sum. Wrapping arithmetic keeps the operator total (and
/// still a commutative monoid) even under adversarial inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SumI64;

impl AggOp for SumI64 {
    type Value = i64;
    fn identity(&self) -> i64 {
        0
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        a.wrapping_add(*b)
    }
    fn name(&self) -> &'static str {
        "sum(i64)"
    }
}

/// Floating-point sum (the paper's concrete instantiation).
///
/// Floating-point addition is not exactly associative; this operator is
/// intended for examples and demos, not for consistency oracles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SumF64;

impl AggOp for SumF64 {
    type Value = f64;
    fn identity(&self) -> f64 {
        0.0
    }
    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
    fn name(&self) -> &'static str {
        "sum(f64)"
    }
}

/// Minimum, with `i64::MAX` as identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinI64;

impl AggOp for MinI64 {
    type Value = i64;
    fn identity(&self) -> i64 {
        i64::MAX
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.min(b)
    }
    fn name(&self) -> &'static str {
        "min(i64)"
    }
}

/// Maximum, with `i64::MIN` as identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxI64;

impl AggOp for MaxI64 {
    type Value = i64;
    fn identity(&self) -> i64 {
        i64::MIN
    }
    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.max(b)
    }
    fn name(&self) -> &'static str {
        "max(i64)"
    }
}

/// Saturating count of events (writes contribute their argument).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountU64;

impl AggOp for CountU64 {
    type Value = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }
    fn name(&self) -> &'static str {
        "count(u64)"
    }
}

/// Logical OR (e.g. "is any node unhealthy?").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolOr;

impl AggOp for BoolOr {
    type Value = bool;
    fn identity(&self) -> bool {
        false
    }
    fn combine(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn name(&self) -> &'static str {
        "or(bool)"
    }
}

/// A `(sum, count)` pair supporting exact averages over integer samples.
///
/// The mean is `sum / count`; the identity contributes nothing. A node that
/// has never written holds the identity and therefore does not bias the
/// average — matching how aggregation frameworks treat absent samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeanValue {
    /// Sum of samples.
    pub sum: i64,
    /// Number of samples.
    pub count: u64,
}

impl MeanValue {
    /// A single sample.
    pub fn sample(v: i64) -> Self {
        MeanValue { sum: v, count: 1 }
    }

    /// The mean, or `None` when no samples contributed.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// Average operator over [`MeanValue`] pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AvgI64;

impl AggOp for AvgI64 {
    type Value = MeanValue;
    fn identity(&self) -> MeanValue {
        MeanValue::default()
    }
    fn combine(&self, a: &MeanValue, b: &MeanValue) -> MeanValue {
        MeanValue {
            sum: a.sum.wrapping_add(b.sum),
            count: a.count.saturating_add(b.count),
        }
    }
    fn name(&self) -> &'static str {
        "avg(i64)"
    }
}

/// Product of two operators, aggregating component-wise.
///
/// Useful for computing, e.g., `(min, max)` or `(sum, count)` in a single
/// pass; the product of commutative monoids is a commutative monoid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairOp<A, B>(pub A, pub B);

impl<A: AggOp, B: AggOp> AggOp for PairOp<A, B> {
    type Value = (A::Value, B::Value);
    fn identity(&self) -> Self::Value {
        (self.0.identity(), self.1.identity())
    }
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        (self.0.combine(&a.0, &b.0), self.1.combine(&a.1, &b.1))
    }
    fn name(&self) -> &'static str {
        "pair"
    }
}

/// Checks the three monoid laws on concrete values; used by tests and
/// exposed so downstream operators can self-check.
pub fn check_monoid_laws<A: AggOp>(op: &A, a: &A::Value, b: &A::Value, c: &A::Value) -> bool {
    let id = op.identity();
    op.combine(a, &id) == *a
        && op.combine(&id, a) == *a
        && op.combine(a, b) == op.combine(b, a)
        && op.combine(&op.combine(a, b), c) == op.combine(a, &op.combine(b, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_matches_manual() {
        let op = SumI64;
        let vals = [1i64, 2, 3, 4];
        assert_eq!(op.fold(vals.iter()), 10);
        assert_eq!(op.fold(std::iter::empty::<&i64>()), 0);
    }

    #[test]
    fn mean_value_semantics() {
        let op = AvgI64;
        let m = op.combine(&MeanValue::sample(10), &MeanValue::sample(20));
        assert_eq!(m.mean(), Some(15.0));
        assert_eq!(op.identity().mean(), None);
        let with_id = op.combine(&m, &op.identity());
        assert_eq!(with_id, m);
    }

    #[test]
    fn pair_op_componentwise() {
        let op = PairOp(MinI64, MaxI64);
        let v = op.combine(&(3, 3), &(7, 7));
        assert_eq!(v, (3, 7));
        assert_eq!(op.identity(), (i64::MAX, i64::MIN));
    }

    proptest! {
        #[test]
        fn sum_i64_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
            prop_assert!(check_monoid_laws(&SumI64, &a, &b, &c));
        }

        #[test]
        fn min_max_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
            prop_assert!(check_monoid_laws(&MinI64, &a, &b, &c));
            prop_assert!(check_monoid_laws(&MaxI64, &a, &b, &c));
        }

        #[test]
        fn count_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            prop_assert!(check_monoid_laws(&CountU64, &a, &b, &c));
        }

        #[test]
        fn bool_or_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
            prop_assert!(check_monoid_laws(&BoolOr, &a, &b, &c));
        }

        #[test]
        fn avg_laws(
            (s1, c1) in (any::<i64>(), 0u64..1_000_000),
            (s2, c2) in (any::<i64>(), 0u64..1_000_000),
            (s3, c3) in (any::<i64>(), 0u64..1_000_000),
        ) {
            let a = MeanValue { sum: s1, count: c1 };
            let b = MeanValue { sum: s2, count: c2 };
            let c = MeanValue { sum: s3, count: c3 };
            prop_assert!(check_monoid_laws(&AvgI64, &a, &b, &c));
        }

        #[test]
        fn pair_laws(a in any::<(i64, i64)>(), b in any::<(i64, i64)>(), c in any::<(i64, i64)>()) {
            prop_assert!(check_monoid_laws(&PairOp(SumI64, MinI64), &a, &b, &c));
        }
    }
}
