//! Seeded fault plans: the adversary as a first-class, replayable object.
//!
//! The paper's network model (Section 2) assumes reliable FIFO channels
//! and immortal nodes; everything the mechanism guarantees is proved on
//! that substrate. A [`FaultPlan`] describes a *deterministic, seeded*
//! deviation from it:
//!
//! * per-edge **drop / duplicate / delay** probabilities, decided by a
//!   per-directed-edge RNG stream (so the decision sequence for an edge
//!   depends only on the seed and the edge, never on cross-edge timing —
//!   the same plan replays identically in the single-threaded simulator
//!   and in the multi-threaded TCP runtime),
//! * a **connection-kill schedule**: directed edges whose underlying
//!   transport link is severed after carrying a given number of frames,
//! * a **node-crash schedule**: nodes whose automaton is killed after
//!   processing a given number of network messages.
//!
//! Consumers differ in what they do with a decision: the simulator
//! applies drops/duplicates directly to its channel queues (losing
//! messages for real, to *demonstrate* consistency violations), while
//! `oat-net` injects them below its sequenced link layer, whose
//! retransmission machinery must then mask them. Both record what they
//! injected in an [`InjectedFaults`] ledger so a chaos harness can assert
//! the plan actually fired.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::tree::NodeId;

/// What the plan says to do with one message/frame on an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose it (the transport must recover it, or the run shows a
    /// violation).
    Drop,
    /// Deliver it twice.
    Duplicate,
    /// Deliver it late (transport-defined delay; FIFO order preserved).
    Delay,
}

/// Sever the transport link under the directed edge `from → to` after it
/// has carried `after_frames` sequenced frames in that direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillConn {
    /// Sending side of the directed edge.
    pub from: NodeId,
    /// Receiving side.
    pub to: NodeId,
    /// Frames written in that direction before the link is cut.
    pub after_frames: u64,
}

/// Crash the node `node` after it has processed `after_delivered`
/// network messages (measured across restarts: the trigger fires when
/// the node's cumulative delivered count reaches the threshold).
///
/// The same shape schedules both fault grades: an in-process automaton
/// crash (`crash:`, the mechanism restarts from its in-memory escrow)
/// and a process-grade `kill9:` (all of the node's runtime state is
/// torn down without a handoff; recovery must come from the durability
/// backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashNode {
    /// The node to kill.
    pub node: NodeId,
    /// Cumulative delivered-message count that triggers the crash.
    pub after_delivered: u64,
}

/// A complete, seeded fault plan. `FaultPlan::default()` is the empty
/// plan: every probability zero, no schedules — the reliable network.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-edge decision stream.
    pub seed: u64,
    /// Per-frame probability of a drop on every directed edge.
    pub drop_p: f64,
    /// Per-frame probability of a duplicate delivery.
    pub dup_p: f64,
    /// Per-frame probability of a delayed delivery.
    pub delay_p: f64,
    /// Connection-kill schedule.
    pub kills: Vec<KillConn>,
    /// Node-crash schedule.
    pub crashes: Vec<CrashNode>,
    /// Process-kill (`kill9`) schedule: these nodes lose *all* runtime
    /// state at the trigger and must recover from a durability backend.
    pub kill9s: Vec<CrashNode>,
    /// Disk fault: max unsynced bytes chopped off a node's WAL tail per
    /// recovery (0 = off). Injected inside the WAL backend.
    pub torn_tail_max: u64,
    /// Disk fault: probability each WAL fsync silently fails (0.0 = off).
    pub fsync_fail_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            kills: Vec::new(),
            crashes: Vec::new(),
            kill9s: Vec::new(),
            torn_tail_max: 0,
            fsync_fail_p: 0.0,
        }
    }
}

impl FaultPlan {
    /// True when the plan injects nothing — consumers may skip all fault
    /// bookkeeping entirely (the zero-cost-when-off contract).
    pub fn is_empty(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.delay_p == 0.0
            && self.kills.is_empty()
            && self.crashes.is_empty()
            && self.kill9s.is_empty()
            && self.torn_tail_max == 0
            && self.fsync_fail_p == 0.0
    }

    /// The decision stream for the directed edge `from → to`.
    pub fn edge_stream(&self, from: NodeId, to: NodeId) -> EdgeFaults {
        EdgeFaults {
            rng: SplitMix::new(
                self.seed ^ 0x9E37_79B9_7F4A_7C15 ^ ((from.0 as u64) << 32 | to.0 as u64),
            ),
            drop_p: self.drop_p,
            dup_p: self.dup_p,
            delay_p: self.delay_p,
            kill_after: self
                .kills
                .iter()
                .find(|k| k.from == from && k.to == to)
                .map(|k| k.after_frames),
            frames: 0,
        }
    }

    /// The crash threshold for `node`, if scheduled.
    pub fn crash_after(&self, node: NodeId) -> Option<u64> {
        self.crashes
            .iter()
            .find(|c| c.node == node)
            .map(|c| c.after_delivered)
    }

    /// The kill9 threshold for `node`, if scheduled.
    pub fn kill9_after(&self, node: NodeId) -> Option<u64> {
        self.kill9s
            .iter()
            .find(|c| c.node == node)
            .map(|c| c.after_delivered)
    }

    /// Seed for the reconnect redial jitter stream of the directed edge
    /// `from → to`. Derived from the plan seed (not ambient entropy) so
    /// chaos runs are bit-reproducible across machines; the empty plan's
    /// seed 0 still yields per-edge-distinct, deterministic jitter.
    pub fn jitter_seed(&self, from: NodeId, to: NodeId) -> u64 {
        SplitMix::new(self.seed ^ 0xBF58_476D_1CE4_E5B9 ^ ((from.0 as u64) << 32 | to.0 as u64))
            .next_u64()
    }

    /// Seed for `node`'s disk-fault stream (torn-tail / fsync-fail draws
    /// inside its WAL backend).
    pub fn disk_seed(&self, node: NodeId) -> u64 {
        SplitMix::new(self.seed ^ 0x94D0_49BB_1331_11EB ^ node.0 as u64).next_u64()
    }

    /// Parses a comma-separated fault spec, e.g.
    /// `seed:7,drop:0.01,dup:0.02,delay:0.01,kill:0-1@20,crash:3@50`.
    ///
    /// Items: `seed:N`, `drop:P`, `dup:P`, `delay:P`,
    /// `kill:FROM-TO@FRAMES` (repeatable; kills the link under the
    /// directed edge), `crash:NODE@DELIVERED` (repeatable),
    /// `kill9:NODE@DELIVERED` (repeatable; process-grade kill, requires
    /// the WAL durability backend), `torn-tail:BYTES` (disk fault: chop
    /// up to BYTES unsynced log bytes per recovery), `fsync-fail:P`
    /// (disk fault: each WAL fsync fails with probability P). `none`
    /// (or an empty string) is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for item in spec.split(',') {
            let item = item.trim();
            let (key, val) = item
                .split_once(':')
                .ok_or_else(|| format!("bad fault item `{item}` (want key:value)"))?;
            let p = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if (0.0..=1.0).contains(&p) {
                    Ok(p)
                } else {
                    Err(format!("probability `{v}` out of [0,1]"))
                }
            };
            match key {
                "seed" => {
                    plan.seed = val.parse().map_err(|_| format!("bad seed `{val}`"))?;
                }
                "drop" => plan.drop_p = p(val)?,
                "dup" => plan.dup_p = p(val)?,
                "delay" => plan.delay_p = p(val)?,
                "kill" => {
                    let (edge, after) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad kill `{val}` (want FROM-TO@FRAMES)"))?;
                    let (from, to) = edge
                        .split_once('-')
                        .ok_or_else(|| format!("bad kill edge `{edge}` (want FROM-TO)"))?;
                    plan.kills.push(KillConn {
                        from: NodeId(
                            from.parse()
                                .map_err(|_| format!("bad kill node `{from}`"))?,
                        ),
                        to: NodeId(to.parse().map_err(|_| format!("bad kill node `{to}`"))?),
                        after_frames: after
                            .parse()
                            .map_err(|_| format!("bad kill frame count `{after}`"))?,
                    });
                }
                "crash" | "kill9" => {
                    let (node, after) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad {key} `{val}` (want NODE@DELIVERED)"))?;
                    let entry = CrashNode {
                        node: NodeId(
                            node.parse()
                                .map_err(|_| format!("bad {key} node `{node}`"))?,
                        ),
                        after_delivered: after
                            .parse()
                            .map_err(|_| format!("bad {key} threshold `{after}`"))?,
                    };
                    if key == "crash" {
                        plan.crashes.push(entry);
                    } else {
                        plan.kill9s.push(entry);
                    }
                }
                "torn-tail" => {
                    plan.torn_tail_max = val
                        .parse()
                        .map_err(|_| format!("bad torn-tail byte count `{val}`"))?;
                }
                "fsync-fail" => plan.fsync_fail_p = p(val)?,
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// The seeded decision stream for one directed edge: consulted once per
/// sequenced frame, in frame order. Deterministic given (seed, edge).
#[derive(Clone, Debug)]
pub struct EdgeFaults {
    rng: SplitMix,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    kill_after: Option<u64>,
    frames: u64,
}

impl EdgeFaults {
    /// Decides the fate of the next frame on this edge.
    ///
    /// Drop, duplicate, and delay are mutually exclusive per frame
    /// (drop wins, then duplicate, then delay), each decided from one
    /// RNG draw so the stream is a pure function of the frame index.
    pub fn next_action(&mut self) -> FaultAction {
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 {
            return FaultAction::Deliver;
        }
        let x = self.rng.next_f64();
        if x < self.drop_p {
            FaultAction::Drop
        } else if x < self.drop_p + self.dup_p {
            FaultAction::Duplicate
        } else if x < self.drop_p + self.dup_p + self.delay_p {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }

    /// Records one sequenced frame carried by this edge's link and
    /// reports whether the kill schedule says to sever the link *after*
    /// this frame.
    pub fn on_frame_carried(&mut self) -> bool {
        self.frames += 1;
        self.kill_after.take_if(|k| self.frames >= *k).is_some()
    }
}

/// Cluster-wide ledger of injected fault events, shared by every
/// injection site. A chaos harness compares it against the recovery
/// counters in the per-node metrics: recoveries without injections (or
/// injections without a matching plan) both indicate a bug.
#[derive(Debug, Default)]
pub struct InjectedFaults {
    /// Frames dropped by injection.
    pub drops: AtomicU64,
    /// Frames duplicated by injection.
    pub dups: AtomicU64,
    /// Frames delayed by injection.
    pub delays: AtomicU64,
    /// Transport links severed by the kill schedule.
    pub conns_killed: AtomicU64,
    /// Node automatons crashed by the crash schedule.
    pub crashes: AtomicU64,
    /// Nodes process-killed by the kill9 schedule.
    pub kill9s: AtomicU64,
    /// Torn-tail disk faults injected (WAL recoveries that chopped).
    pub torn_tails: AtomicU64,
    /// WAL fsyncs failed by the fsync-fail disk fault.
    pub fsync_fails: AtomicU64,
}

impl InjectedFaults {
    /// Snapshot as `(drops, dups, delays, conns_killed, crashes)`.
    /// Process and disk faults are reported separately by
    /// [`InjectedFaults::snapshot_process`].
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.drops.load(Ordering::Relaxed),
            self.dups.load(Ordering::Relaxed),
            self.delays.load(Ordering::Relaxed),
            self.conns_killed.load(Ordering::Relaxed),
            self.crashes.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the process/disk-grade faults as
    /// `(kill9s, torn_tails, fsync_fails)`.
    pub fn snapshot_process(&self) -> (u64, u64, u64) {
        (
            self.kill9s.load(Ordering::Relaxed),
            self.torn_tails.load(Ordering::Relaxed),
            self.fsync_fails.load(Ordering::Relaxed),
        )
    }

    /// Total injected events of any kind.
    pub fn total(&self) -> u64 {
        let (d, u, l, k, c) = self.snapshot();
        let (k9, tt, ff) = self.snapshot_process();
        d + u + l + k + c + k9 + tt + ff
    }

    /// JSON rendering with deterministic field order.
    pub fn to_json(&self) -> String {
        let (drops, dups, delays, kills, crashes) = self.snapshot();
        let (kill9s, torn_tails, fsync_fails) = self.snapshot_process();
        format!(
            "{{\"drops\": {drops}, \"dups\": {dups}, \"delays\": {delays}, \
             \"conns_killed\": {kills}, \"crashes\": {crashes}, \
             \"kill9s\": {kill9s}, \"torn_tails\": {torn_tails}, \
             \"fsync_fails\": {fsync_fails}}}"
        )
    }
}

/// splitmix64: tiny, seedable, high-quality enough for fault decisions.
/// Hand-rolled so `oat-core` keeps zero dependencies.
#[derive(Clone, Debug)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_parses_and_is_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("none").unwrap().is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn full_spec_parses() {
        let plan = FaultPlan::parse(
            "seed:7,drop:0.01,dup:0.02,kill:0-1@20,crash:3@50,kill9:0@60,torn-tail:128,fsync-fail:0.25",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_p, 0.01);
        assert_eq!(plan.dup_p, 0.02);
        assert_eq!(plan.kill9_after(NodeId(0)), Some(60));
        assert_eq!(plan.kill9_after(NodeId(3)), None);
        assert_eq!(plan.torn_tail_max, 128);
        assert_eq!(plan.fsync_fail_p, 0.25);
        assert_eq!(
            plan.kills,
            vec![KillConn {
                from: NodeId(0),
                to: NodeId(1),
                after_frames: 20
            }]
        );
        assert_eq!(plan.crash_after(NodeId(3)), Some(50));
        assert_eq!(plan.crash_after(NodeId(4)), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("drop:2.0").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("kill:0@5").is_err());
        assert!(FaultPlan::parse("crash:x@5").is_err());
        assert!(FaultPlan::parse("kill9:5").is_err());
        assert!(FaultPlan::parse("torn-tail:x").is_err());
        assert!(FaultPlan::parse("fsync-fail:1.5").is_err());
        assert!(FaultPlan::parse("wibble:1").is_err());
    }

    #[test]
    fn kill9_and_disk_faults_make_the_plan_nonempty() {
        assert!(!FaultPlan::parse("kill9:0@1").unwrap().is_empty());
        assert!(!FaultPlan::parse("torn-tail:64").unwrap().is_empty());
        assert!(!FaultPlan::parse("fsync-fail:0.1").unwrap().is_empty());
    }

    #[test]
    fn jitter_and_disk_seeds_are_deterministic_and_distinct() {
        let plan = FaultPlan {
            seed: 9,
            ..FaultPlan::default()
        };
        assert_eq!(
            plan.jitter_seed(NodeId(1), NodeId(2)),
            plan.jitter_seed(NodeId(1), NodeId(2))
        );
        assert_ne!(
            plan.jitter_seed(NodeId(1), NodeId(2)),
            plan.jitter_seed(NodeId(2), NodeId(1)),
            "directions get independent jitter streams"
        );
        assert_ne!(plan.disk_seed(NodeId(0)), plan.disk_seed(NodeId(1)));
        let other = FaultPlan {
            seed: 10,
            ..FaultPlan::default()
        };
        assert_ne!(
            plan.jitter_seed(NodeId(1), NodeId(2)),
            other.jitter_seed(NodeId(1), NodeId(2))
        );
    }

    #[test]
    fn edge_streams_are_deterministic_and_independent() {
        let plan = FaultPlan {
            seed: 42,
            drop_p: 0.3,
            dup_p: 0.3,
            ..FaultPlan::default()
        };
        let take =
            |mut s: EdgeFaults| -> Vec<FaultAction> { (0..64).map(|_| s.next_action()).collect() };
        let a1 = take(plan.edge_stream(NodeId(0), NodeId(1)));
        let a2 = take(plan.edge_stream(NodeId(0), NodeId(1)));
        let b = take(plan.edge_stream(NodeId(1), NodeId(0)));
        assert_eq!(a1, a2, "same seed + edge must replay identically");
        assert_ne!(a1, b, "opposite directions get independent streams");
        assert!(a1.contains(&FaultAction::Drop));
        assert!(a1.contains(&FaultAction::Duplicate));
        assert!(a1.contains(&FaultAction::Deliver));
    }

    #[test]
    fn kill_schedule_fires_once_at_threshold() {
        let plan = FaultPlan {
            kills: vec![KillConn {
                from: NodeId(2),
                to: NodeId(5),
                after_frames: 3,
            }],
            ..FaultPlan::default()
        };
        let mut s = plan.edge_stream(NodeId(2), NodeId(5));
        assert!(!s.on_frame_carried());
        assert!(!s.on_frame_carried());
        assert!(s.on_frame_carried(), "fires when the threshold is reached");
        assert!(!s.on_frame_carried(), "fires exactly once");
        let mut other = plan.edge_stream(NodeId(5), NodeId(2));
        for _ in 0..10 {
            assert!(!other.on_frame_carried());
        }
    }

    #[test]
    fn injected_ledger_counts_and_renders() {
        let led = InjectedFaults::default();
        led.drops.fetch_add(2, Ordering::Relaxed);
        led.crashes.fetch_add(1, Ordering::Relaxed);
        led.kill9s.fetch_add(1, Ordering::Relaxed);
        led.torn_tails.fetch_add(1, Ordering::Relaxed);
        assert_eq!(led.total(), 5);
        assert_eq!(led.snapshot(), (2, 0, 0, 0, 1));
        assert_eq!(led.snapshot_process(), (1, 1, 0));
        assert_eq!(
            led.to_json(),
            "{\"drops\": 2, \"dups\": 0, \"delays\": 0, \"conns_killed\": 0, \"crashes\": 1, \
             \"kill9s\": 1, \"torn_tails\": 1, \"fsync_fails\": 0}"
        );
    }
}
