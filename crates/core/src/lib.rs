//! # oat-core — Online Aggregation over Trees, core library
//!
//! This crate implements the heart of *Online Aggregation over Trees*
//! (Plaxton, Tiwari, Yalagandula; IPPS 2007):
//!
//! * [`tree`] — the tree network topology and its subtree algebra
//!   (`subtree(u,v)`, *u*-parents, paths),
//! * [`agg`] — commutative aggregation operators `⊕` with an identity
//!   element (sum, min, max, count, average, …),
//! * [`request`] — `combine` / `write` requests, request sequences, and the
//!   per-ordered-pair projections `σ(u,v)` used throughout the paper's
//!   competitive analysis,
//! * [`message`] — the four message kinds exchanged by lease-based
//!   algorithms (`probe`, `response`, `update`, `release`),
//! * [`mechanism`] — a faithful transcription of the Figure-1 node
//!   automaton (transitions `T1`–`T6` plus the helper procedures),
//!   parameterised by a policy,
//! * [`policy`] — the policy stubs (`setlease`, `breaklease`, …) and the
//!   concrete policies: **RWW** (Figure 3), generic **(a,b)** policies,
//!   and the static baselines (*AlwaysLease* ≈ Astrolabe push-all,
//!   *NeverLease* ≈ MDS-2 pull-all),
//! * [`ghost`] — the ghost write-logs of Section 5 used by the causal
//!   consistency analysis.
//!
//! The crate is transport-agnostic: the mechanism consumes incoming
//! messages and emits outgoing ones into a caller-provided buffer. The
//! deterministic simulator (`oat-sim`) and the threaded runtime
//! (`oat-concurrent`) both drive the same automaton.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod agg_ext;
pub mod fault;
pub mod ghost;
pub mod mechanism;
pub mod message;
pub mod policy;
pub mod request;
pub mod tree;
pub mod wire;

pub use agg::AggOp;
pub use fault::{FaultAction, FaultPlan, InjectedFaults};
pub use mechanism::{CombineOutcome, MechNode};
pub use message::{Message, MsgKind};
pub use policy::{NodePolicy, PolicySpec};
pub use request::{ReqOp, Request};
pub use tree::{NodeId, Tree};
pub use wire::{WireError, WireValue};
