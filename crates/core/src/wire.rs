//! Wire format for [`Message`]s: hand-rolled, length-independent binary
//! encoding used by the `oat-net` TCP runtime.
//!
//! Layout conventions (all integers little-endian):
//!
//! * `u32`/`u64`/`i64`/`f64` — fixed-width LE bytes (`f64` via its IEEE-754
//!   bit pattern).
//! * `bool` — one byte, `0` or `1`.
//! * `Vec<T>` / `Option<T>` — `u32` length (or `0`/`1` presence byte)
//!   followed by the elements.
//! * [`Message`] — one kind tag byte (`0` probe, `1` response, `2` update,
//!   `3` release) followed by the variant's fields in declaration order.
//!
//! The aggregate value type is abstracted by [`WireValue`], implemented
//! here for the value types of the stock [`crate::agg`] operators. Decoding
//! is strict: trailing bytes, truncated buffers, and unknown tags are
//! errors, so a framing bug surfaces as a decode failure rather than a
//! silently skewed aggregate.

use crate::ghost::WriteRec;
use crate::message::Message;
use crate::tree::NodeId;

/// A decode failure: what was being decoded and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
    /// Byte offset into the buffer.
    pub offset: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire decode error in {} at byte {}",
            self.context, self.offset
        )
    }
}

impl std::error::Error for WireError {}

/// A byte reader tracking its offset for error reporting.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn fail(&self, context: &'static str) -> WireError {
        WireError {
            context,
            offset: self.pos,
        }
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.fail(context));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, WireError> {
        Ok(self.u64(context)? as i64)
    }

    /// Reads a `bool` byte; anything but `0`/`1` is an error.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                context,
                offset: self.pos - 1,
            }),
        }
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(self, context: &'static str) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.fail(context))
        }
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Aggregate value types that can cross the wire.
///
/// Implemented for the value types of the stock operators; `oat-net` is
/// generic over any `V: WireValue`.
pub trait WireValue: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl WireValue for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.i64("i64")
    }
}

impl WireValue for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64("u64")
    }
}

impl WireValue for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.to_bits());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.u64("f64")?))
    }
}

impl WireValue for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.bool("bool")
    }
}

impl WireValue for crate::agg::MeanValue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sum.encode(out);
        self.count.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::agg::MeanValue {
            sum: i64::decode(r)?,
            count: u64::decode(r)?,
        })
    }
}

impl<A: WireValue, B: WireValue> WireValue for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: WireValue> WireValue for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.u32("vec length")? as usize;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

fn encode_wlog<V: WireValue>(wlog: &Option<Vec<WriteRec<V>>>, out: &mut Vec<u8>) {
    match wlog {
        None => out.push(0),
        Some(recs) => {
            out.push(1);
            put_u32(out, recs.len() as u32);
            for rec in recs {
                put_u32(out, rec.node.0);
                put_u32(out, rec.index);
                rec.arg.encode(out);
            }
        }
    }
}

fn decode_wlog<V: WireValue>(
    r: &mut WireReader<'_>,
) -> Result<Option<Vec<WriteRec<V>>>, WireError> {
    match r.u8("wlog presence")? {
        0 => Ok(None),
        1 => {
            let len = r.u32("wlog length")? as usize;
            let mut recs = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                recs.push(WriteRec {
                    node: NodeId(r.u32("wlog node")?),
                    index: r.u32("wlog index")?,
                    arg: V::decode(r)?,
                });
            }
            Ok(Some(recs))
        }
        _ => Err(WireError {
            context: "wlog presence",
            offset: 0,
        }),
    }
}

impl<V: WireValue> Message<V> {
    /// Appends this message's wire encoding (kind tag + payload) to `out`.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        match self {
            Message::Probe { epoch } => {
                out.push(0);
                put_u64(out, *epoch);
            }
            Message::Response {
                x,
                flag,
                epoch,
                wlog,
            } => {
                out.push(1);
                x.encode(out);
                out.push(u8::from(*flag));
                put_u64(out, *epoch);
                encode_wlog(wlog, out);
            }
            Message::Update { x, id, wlog } => {
                out.push(2);
                x.encode(out);
                put_u64(out, *id);
                encode_wlog(wlog, out);
            }
            Message::Release { ids } => {
                out.push(3);
                put_u32(out, ids.len() as u32);
                for id in ids {
                    put_u64(out, *id);
                }
            }
        }
    }

    /// Decodes one message, requiring the buffer to be fully consumed.
    pub fn decode_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let msg = match r.u8("message tag")? {
            0 => Message::Probe {
                epoch: r.u64("probe epoch")?,
            },
            1 => {
                let x = V::decode(&mut r)?;
                let flag = r.bool("response flag")?;
                let epoch = r.u64("response epoch")?;
                let wlog = decode_wlog(&mut r)?;
                Message::Response {
                    x,
                    flag,
                    epoch,
                    wlog,
                }
            }
            2 => {
                let x = V::decode(&mut r)?;
                let id = r.u64("update id")?;
                let wlog = decode_wlog(&mut r)?;
                Message::Update { x, id, wlog }
            }
            3 => {
                let len = r.u32("release length")? as usize;
                let mut ids = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    ids.push(r.u64("release id")?);
                }
                Message::Release { ids }
            }
            _ => {
                return Err(WireError {
                    context: "message tag",
                    offset: 0,
                })
            }
        };
        r.finish("message trailing bytes")?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::MeanValue;

    fn roundtrip<V: WireValue + Clone + PartialEq + std::fmt::Debug>(m: Message<V>) {
        let mut buf = Vec::new();
        m.encode_wire(&mut buf);
        let back = Message::<V>::decode_wire(&buf).expect("decodes");
        assert_eq!(back, m);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip::<i64>(Message::Probe { epoch: 7 });
        roundtrip(Message::Response {
            x: -42i64,
            flag: true,
            epoch: 0,
            wlog: None,
        });
        roundtrip(Message::Response {
            x: 7i64,
            flag: false,
            epoch: 0,
            wlog: Some(vec![
                WriteRec {
                    node: NodeId(3),
                    index: 9,
                    arg: -1i64,
                },
                WriteRec {
                    node: NodeId(0),
                    index: 0,
                    arg: i64::MIN,
                },
            ]),
        });
        roundtrip(Message::Update {
            x: i64::MAX,
            id: u64::MAX,
            wlog: Some(vec![]),
        });
        roundtrip::<i64>(Message::Release { ids: vec![] });
        roundtrip::<i64>(Message::Release {
            ids: vec![0, 1, u64::MAX],
        });
    }

    #[test]
    fn value_types_roundtrip() {
        roundtrip(Message::Update {
            x: MeanValue { sum: -5, count: 3 },
            id: 1,
            wlog: None,
        });
        roundtrip(Message::Response {
            x: (i64::MIN, i64::MAX),
            flag: true,
            epoch: 0,
            wlog: None,
        });
        roundtrip(Message::Response {
            x: 2.5f64,
            flag: false,
            epoch: 0,
            wlog: None,
        });
        roundtrip(Message::Response {
            x: true,
            flag: false,
            epoch: 0,
            wlog: None,
        });
        roundtrip(Message::Update {
            x: vec![3i64, -9, 0],
            id: 2,
            wlog: None,
        });
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        // Unknown tag.
        assert!(Message::<i64>::decode_wire(&[9]).is_err());
        // Truncated response payload.
        assert!(Message::<i64>::decode_wire(&[1, 1, 2, 3]).is_err());
        // Trailing bytes after a valid probe.
        assert!(Message::<i64>::decode_wire(&[0, 0]).is_err());
        // Invalid bool byte.
        let mut buf = Vec::new();
        Message::Response {
            x: 5i64,
            flag: true,
            epoch: 0,
            wlog: None,
        }
        .encode_wire(&mut buf);
        buf[9] = 2; // flag byte
        assert!(Message::<i64>::decode_wire(&buf).is_err());
        // Empty buffer.
        assert!(Message::<i64>::decode_wire(&[]).is_err());
    }
}
