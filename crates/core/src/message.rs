//! The four message kinds of lease-based aggregation algorithms.
//!
//! Section 3.1: a lease-based algorithm exchanges `probe`, `response`,
//! `update`, and `release` messages. `response` and `update` carry an
//! aggregate value; `update` additionally carries a per-sender message
//! identifier (from `newid()`); `release` carries the set of update
//! identifiers `uaw[v]` not yet acknowledged by the releasing side.
//!
//! For the Section-5 analysis, `response` and `update` optionally carry the
//! sender's ghost write-log (`wlog`).

use crate::ghost::WriteRec;

/// A message exchanged between neighbouring tree nodes.
#[derive(Clone, Debug, PartialEq, Hash)]
pub enum Message<V> {
    /// Pull request for the aggregate value of the receiver's side
    /// (`probe()` in Figure 1).
    Probe {
        /// Incarnation of the probing automaton. Figure 1 assumes
        /// immortal nodes, so the paper's probe carries nothing; with
        /// crash-restart (`oat-net`), a response must echo the epoch of
        /// the probe it answers so the prober can discard answers
        /// addressed to a dead incarnation (see
        /// `MechNode::handle_message`, `T4`). Always `0` in the
        /// crash-free simulator.
        epoch: u64,
    },
    /// Reply to a probe: `x` is `subval` of the sender toward the
    /// receiver; `flag` reports whether the sender granted a lease
    /// (`response(x, flag)`).
    Response {
        /// Aggregate value over `subtree(sender, receiver)`.
        x: V,
        /// Whether the sender set `granted[receiver]`.
        flag: bool,
        /// Echo of the answered probe's `epoch`; the prober drops the
        /// response when it no longer matches its own incarnation.
        epoch: u64,
        /// Ghost write-log of the sender at send time (Section 5.2);
        /// `None` when ghost tracking is disabled.
        wlog: Option<Vec<WriteRec<V>>>,
    },
    /// Push of a new aggregate value along a granted lease
    /// (`update(x, id)`).
    Update {
        /// Aggregate value over `subtree(sender, receiver)`.
        x: V,
        /// Sender-local update identifier from `newid()`.
        id: u64,
        /// Ghost write-log of the sender at send time.
        wlog: Option<Vec<WriteRec<V>>>,
    },
    /// Lease break from the lease holder back to the granter
    /// (`release(S)`); `ids` is the holder's `uaw` set for that edge.
    Release {
        /// Identifiers of updates received over the edge since the last
        /// clearing — the `S` of `onrelease`.
        ids: Vec<u64>,
    },
}

impl<V> Message<V> {
    /// The kind tag of this message, for accounting.
    pub fn kind(&self) -> MsgKind {
        match self {
            Message::Probe { .. } => MsgKind::Probe,
            Message::Response { .. } => MsgKind::Response,
            Message::Update { .. } => MsgKind::Update,
            Message::Release { .. } => MsgKind::Release,
        }
    }
}

/// Message kind tag, used as an index into per-edge counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// `probe()`
    Probe,
    /// `response(x, flag)`
    Response,
    /// `update(x, id)`
    Update,
    /// `release(S)`
    Release,
}

impl MsgKind {
    /// All kinds, in counter-index order.
    pub const ALL: [MsgKind; 4] = [
        MsgKind::Probe,
        MsgKind::Response,
        MsgKind::Update,
        MsgKind::Release,
    ];

    /// Dense index (0..4) for counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgKind::Probe => 0,
            MsgKind::Response => 1,
            MsgKind::Update => 2,
            MsgKind::Release => 3,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Probe => "probe",
            MsgKind::Response => "response",
            MsgKind::Update => "update",
            MsgKind::Release => "release",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        let msgs: Vec<Message<i64>> = vec![
            Message::Probe { epoch: 0 },
            Message::Response {
                x: 1,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            Message::Update {
                x: 2,
                id: 7,
                wlog: None,
            },
            Message::Release { ids: vec![1, 2] },
        ];
        for (m, k) in msgs.iter().zip(MsgKind::ALL) {
            assert_eq!(m.kind(), k);
            assert_eq!(MsgKind::ALL[m.kind().index()], k);
        }
    }
}
