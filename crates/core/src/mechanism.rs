//! The lease-based aggregation mechanism: Figure 1, transcribed.
//!
//! A [`MechNode`] is the per-node automaton of Figure 1 (with the ghost
//! actions of Figure 6 / Section 5.2 available behind a runtime switch).
//! It is transport-agnostic: the three entry points
//! [`MechNode::handle_combine`] (`T1`), [`MechNode::handle_write`] (`T2`)
//! and [`MechNode::handle_message`] (`T3`–`T6`) mutate local state and push
//! outgoing messages into a caller-provided [`Outbox`]; a driver (the
//! deterministic simulator in `oat-sim`, or real threads in
//! `oat-concurrent`) owns the channels.
//!
//! ## State (Figure 1, `var` block)
//!
//! | paper            | here                  |
//! |------------------|-----------------------|
//! | `taken[v]`       | `taken[vi]`           |
//! | `granted[v]`     | `granted[vi]`         |
//! | `aval[v]`        | `aval[vi]`            |
//! | `val`            | `val`                 |
//! | `uaw[v]`         | `uaw[vi]`             |
//! | `pndg`           | `pndg`                |
//! | `snt[w]`         | `snt` (assoc. list keyed by requester node) |
//! | `upcntr`         | `upcntr`              |
//! | `sntupdates`     | `sntupdates`          |
//!
//! where `vi` is the index of neighbour `v` in the node's sorted neighbour
//! list. `snt` is keyed by the *requesting* node (`snt[u] := …` in `T1`
//! indexes by the node itself), which is either the node or one of its
//! neighbours.
//!
//! The policy stubs (underlined in the paper) are dispatched through
//! [`NodePolicy`].

use crate::agg::AggOp;
use crate::ghost::GhostState;
use crate::message::Message;
use crate::policy::NodePolicy;
use crate::tree::{NodeId, Tree};

/// Buffer of outgoing `(destination, message)` pairs filled by handlers.
pub type Outbox<V> = Vec<(NodeId, Message<V>)>;

/// Result of initiating a combine request at a node (`T1`).
#[derive(Clone, Debug, PartialEq)]
pub enum CombineOutcome<V> {
    /// All neighbours hold leases toward us: answered locally with the
    /// global aggregate value (`T1` line 6).
    Done(V),
    /// Probes were sent; the combine completes later in `T4`.
    Pending,
    /// The node was already in `pndg`: this combine coalesces with the
    /// in-flight fan-out and completes together with it.
    Coalesced,
}

/// A record of a forwarded update: `{node, rcvid, sntid}` (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SntUpdate {
    /// Neighbour index the triggering update was received from.
    pub from: usize,
    /// Identifier of the received update (in the sender's id space).
    pub rcvid: u64,
    /// Identifier of the forwarded updates (in our id space).
    pub sntid: u64,
}

/// The per-node automaton of Figure 1.
pub struct MechNode<P: NodePolicy, A: AggOp> {
    id: NodeId,
    nbrs: Vec<NodeId>,
    op: A,
    // --- mechanism state (Figure 1 `var` block) ---
    val: A::Value,
    taken: Vec<bool>,
    granted: Vec<bool>,
    aval: Vec<A::Value>,
    uaw: Vec<Vec<u64>>,
    pndg: Vec<NodeId>,
    snt: Vec<(NodeId, Vec<NodeId>)>,
    upcntr: u64,
    sntupdates: Vec<SntUpdate>,
    /// Incarnation of this automaton (0 for the first). Outgoing probes
    /// carry it; responses echo the probe's epoch; `T4` discards
    /// responses whose echo does not match, so an answer addressed to a
    /// pre-crash incarnation can neither complete a fresh fan-out with a
    /// stale value nor plant a phantom `taken` lease that a later
    /// `forward_release` would spuriously release. Always 0 outside the
    /// crash-restarting TCP runtime.
    epoch: u64,
    /// Per neighbour: the epoch carried by the most recent probe received
    /// from it, echoed back in the eventual response. Constant within one
    /// peer incarnation (FIFO links deliver the peer's RESET before any
    /// post-restart probe).
    probe_epoch: Vec<u64>,
    /// Stale-epoch responses discarded by `T4` (diagnostic counter).
    stale_responses: u64,
    /// Pruning watermark per neighbour `w`: every update id we sent to
    /// `w` *before* `watermark[w]` has been acknowledged (by a release
    /// from `w`, or because `w`'s lease was granted afresh with an empty
    /// `uaw`). A future `release(S)` from `w` therefore satisfies
    /// `min(S) ≥ watermark[w]`, so `sntupdates` tuples with `sntid`
    /// below every granted neighbour's watermark can never be consulted
    /// again and are dropped — keeping the ledger `O(degree)` instead of
    /// `O(history)`. Pure optimisation: behaviour is unchanged (tested).
    watermark: Vec<u64>,
    // --- policy + ghost ---
    policy: P,
    ghost: Option<GhostState<A::Value>>,
}

impl<P: NodePolicy + Clone, A: AggOp> Clone for MechNode<P, A> {
    fn clone(&self) -> Self {
        MechNode {
            id: self.id,
            nbrs: self.nbrs.clone(),
            op: self.op.clone(),
            val: self.val.clone(),
            taken: self.taken.clone(),
            granted: self.granted.clone(),
            aval: self.aval.clone(),
            uaw: self.uaw.clone(),
            pndg: self.pndg.clone(),
            snt: self.snt.clone(),
            upcntr: self.upcntr,
            sntupdates: self.sntupdates.clone(),
            epoch: self.epoch,
            probe_epoch: self.probe_epoch.clone(),
            stale_responses: self.stale_responses,
            watermark: self.watermark.clone(),
            policy: self.policy.clone(),
            ghost: self.ghost.clone(),
        }
    }
}

impl<P: NodePolicy + std::hash::Hash, A: AggOp> MechNode<P, A>
where
    A::Value: std::hash::Hash,
{
    /// Feeds the complete node state (mechanism variables, policy state,
    /// and ghost log) into a hasher. Used by the model checker to
    /// deduplicate explored global states; two nodes with equal hashes
    /// behave identically for every future input (modulo negligible
    /// collision probability).
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.id.hash(h);
        self.val.hash(h);
        self.taken.hash(h);
        self.granted.hash(h);
        self.aval.hash(h);
        self.uaw.hash(h);
        self.pndg.hash(h);
        self.snt.hash(h);
        self.upcntr.hash(h);
        for t in &self.sntupdates {
            (t.from, t.rcvid, t.sntid).hash(h);
        }
        self.epoch.hash(h);
        self.probe_epoch.hash(h);
        self.watermark.hash(h);
        self.policy.hash(h);
        if let Some(g) = &self.ghost {
            g.completed.hash(h);
            g.log.hash(h);
        }
    }
}

impl<P: NodePolicy, A: AggOp> MechNode<P, A> {
    /// Creates the node `id` of `tree` with the given operator and policy
    /// state, in the paper's initial state (all leases down, identity
    /// values everywhere).
    pub fn new(tree: &Tree, id: NodeId, op: A, policy: P, ghost: bool) -> Self {
        let nbrs = tree.nbrs(id).to_vec();
        let k = nbrs.len();
        MechNode {
            id,
            op: op.clone(),
            val: op.identity(),
            taken: vec![false; k],
            granted: vec![false; k],
            aval: vec![op.identity(); k],
            uaw: vec![Vec::new(); k],
            watermark: vec![0; k],
            pndg: Vec::new(),
            snt: Vec::new(),
            upcntr: 0,
            sntupdates: Vec::new(),
            epoch: 0,
            probe_epoch: vec![0; k],
            stale_responses: 0,
            policy,
            ghost: if ghost { Some(GhostState::new()) } else { None },
            nbrs,
        }
    }

    /// Pre-establishes leases in **both** directions on every incident
    /// edge, as if a probe/response pass had completed everywhere. This is
    /// a valid quiescent state (it satisfies Lemmas 3.1 and 3.2 globally
    /// when applied to all nodes) used to model Astrolabe-style push-all
    /// operation from time zero.
    pub fn prewarm_leases(&mut self) {
        for i in 0..self.nbrs.len() {
            self.taken[i] = true;
            self.granted[i] = true;
        }
        self.policy.on_prewarm();
    }

    // ---- small accessors used by drivers, checkers, and tests ----

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sorted neighbour list.
    pub fn nbrs(&self) -> &[NodeId] {
        &self.nbrs
    }

    /// The local value `val`.
    pub fn val(&self) -> &A::Value {
        &self.val
    }

    /// `taken[v]` by neighbour index.
    pub fn taken(&self, vi: usize) -> bool {
        self.taken[vi]
    }

    /// `granted[v]` by neighbour index.
    pub fn granted(&self, vi: usize) -> bool {
        self.granted[vi]
    }

    /// `aval[v]` by neighbour index.
    pub fn aval(&self, vi: usize) -> &A::Value {
        &self.aval[vi]
    }

    /// `uaw[v]` by neighbour index.
    pub fn uaw(&self, vi: usize) -> &[u64] {
        &self.uaw[vi]
    }

    /// The pending-requester set `pndg`.
    pub fn pndg(&self) -> &[NodeId] {
        &self.pndg
    }

    /// True when every `snt[w]` is empty (quiescence check, Lemma 3.4).
    pub fn snt_all_empty(&self) -> bool {
        self.snt.iter().all(|(_, s)| s.is_empty())
    }

    /// Current `sntupdates` ledger size (bounded-memory tests).
    pub fn sntupdates_len(&self) -> usize {
        self.sntupdates.len()
    }

    /// This automaton's incarnation number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the incarnation number. Call once, right after constructing
    /// the replacement automaton of a restarted node, with a value
    /// strictly greater than any previous incarnation's.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Responses discarded because they echoed a dead incarnation.
    pub fn stale_responses(&self) -> u64 {
        self.stale_responses
    }

    /// Immutable access to the policy state (for invariant checks).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Ghost state, when tracking is enabled.
    pub fn ghost(&self) -> Option<&GhostState<A::Value>> {
        self.ghost.as_ref()
    }

    /// Index of neighbour `v`; panics when not adjacent.
    pub fn nbr_index(&self, v: NodeId) -> usize {
        self.nbrs
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("{v} is not a neighbour of {}", self.id))
    }

    // ---- Figure 1 helper functions ----

    /// `tkn()`: indices of neighbours with `taken` set.
    fn tkn(&self) -> Vec<usize> {
        (0..self.nbrs.len()).filter(|&i| self.taken[i]).collect()
    }

    /// `grntd()` is non-empty excluding `except`.
    fn grntd_nonempty_except(&self, except: Option<usize>) -> bool {
        self.granted
            .iter()
            .enumerate()
            .any(|(i, &g)| g && Some(i) != except)
    }

    /// `isgoodforrelease(w)`: `grntd() \ {w} = ∅`.
    fn is_good_for_release(&self, wi: usize) -> bool {
        !self.grntd_nonempty_except(Some(wi))
    }

    /// `v ∈ sntprobes()`: is `v` in any outstanding probe target set?
    ///
    /// Membership test instead of materializing the union: `send_probes`
    /// queries it per neighbour on every probe fan-out, and the sets are
    /// degree-bounded, so scanning beats allocating a sorted/deduped
    /// `Vec` on each handler invocation.
    fn probe_sent_to(&self, v: NodeId) -> bool {
        self.snt.iter().any(|(_, s)| s.contains(&v))
    }

    /// `newid()`.
    fn newid(&mut self) -> u64 {
        self.upcntr += 1;
        self.upcntr
    }

    /// `gval()`: the global aggregate as known locally.
    pub fn gval(&self) -> A::Value {
        let mut x = self.val.clone();
        for a in &self.aval {
            x = self.op.combine(&x, a);
        }
        x
    }

    /// `subval(w)`: aggregate over `subtree(self, w)` as known locally.
    pub fn subval(&self, wi: usize) -> A::Value {
        let mut x = self.val.clone();
        for (i, a) in self.aval.iter().enumerate() {
            if i != wi {
                x = self.op.combine(&x, a);
            }
        }
        x
    }

    /// Snapshot of the ghost write-log for piggy-backing, if enabled.
    fn wlog_snapshot(&self) -> Option<Vec<crate::ghost::WriteRec<A::Value>>> {
        self.ghost.as_ref().map(|g| g.wlog())
    }

    /// `sendprobes(w)`: mark `w` pending and probe every neighbour not
    /// already leased, probed, or equal to `w`.
    fn send_probes(&mut self, w: NodeId, out: &mut Outbox<A::Value>) {
        if !self.pndg.contains(&w) {
            self.pndg.push(w);
        }
        for (i, &v) in self.nbrs.iter().enumerate() {
            if self.taken[i] || v == w || self.probe_sent_to(v) {
                continue;
            }
            out.push((v, Message::Probe { epoch: self.epoch }));
        }
    }

    /// `forwardupdates(w, id)`: push `subval` to every granted neighbour
    /// except `exclude`.
    fn forward_updates(&mut self, exclude: Option<usize>, id: u64, out: &mut Outbox<A::Value>) {
        let wlog = self.wlog_snapshot();
        for i in 0..self.nbrs.len() {
            if self.granted[i] && Some(i) != exclude {
                out.push((
                    self.nbrs[i],
                    Message::Update {
                        x: self.subval(i),
                        id,
                        wlog: wlog.clone(),
                    },
                ));
            }
        }
    }

    /// Drops `sntupdates` tuples that can no longer influence any future
    /// `onrelease`, in two provably-equivalent steps:
    ///
    /// 1. **Watermark**: a future `release(S)` from `w` has
    ///    `min(S) ≥ watermark[w]`, so tuples with `sntid` below every
    ///    granted neighbour's watermark never match `A` again. With no
    ///    grants outstanding the whole ledger clears.
    /// 2. **Stale-β collapse**: for a source `v`, tuples with
    ///    `rcvid < min(uaw[v])` all produce the same outcome when they
    ///    win the `β = argmin rcvid` race — "retain all of `uaw[v]`" —
    ///    and `min(uaw[v])` only grows over time. Keeping just the one
    ///    with the largest `sntid` (the most likely to qualify for
    ///    future `A` sets) preserves behaviour exactly.
    ///
    /// Together these keep the ledger `O(degree · |uaw|)` instead of
    /// `O(history)`; the long-run tests pin the bound.
    fn prune_sntupdates(&mut self) {
        let min_watermark = (0..self.nbrs.len())
            .filter(|&i| self.granted[i])
            .map(|i| self.watermark[i])
            .min();
        match min_watermark {
            Some(wm) => self.sntupdates.retain(|t| t.sntid >= wm),
            None => {
                self.sntupdates.clear();
                return;
            }
        }
        // Per source, the best (max-sntid) stale-β representative.
        let k = self.nbrs.len();
        let mut best_stale: Vec<Option<u64>> = vec![None; k];
        for t in &self.sntupdates {
            let m = self.uaw[t.from].iter().copied().min().unwrap_or(u64::MAX);
            if t.rcvid < m {
                let slot = &mut best_stale[t.from];
                *slot = Some(slot.map_or(t.sntid, |s: u64| s.max(t.sntid)));
            }
        }
        self.sntupdates.retain(|t| {
            let m = self.uaw[t.from].iter().copied().min().unwrap_or(u64::MAX);
            t.rcvid >= m || best_stale[t.from] == Some(t.sntid)
        });
    }

    /// `sendresponse(w)`: possibly grant a lease, then reply with
    /// `subval(w)` and the grant flag.
    fn send_response(&mut self, wi: usize, out: &mut Outbox<A::Value>) {
        // if (nbrs() \ {tkn() ∪ {w}} = ∅) → granted[w] := setlease(w)
        let others_all_taken = (0..self.nbrs.len()).all(|i| i == wi || self.taken[i]);
        if others_all_taken {
            let was = self.granted[wi];
            self.granted[wi] = self.policy.set_lease(wi);
            if self.granted[wi] {
                if !was {
                    oat_obs::trace_event!(
                        oat_obs::EventKind::LeaseSet,
                        self.id.0,
                        self.nbrs[wi].0,
                        0
                    );
                }
                // A fresh grant starts with an empty uaw at w: nothing
                // sent before now can come back in a release from w.
                self.watermark[wi] = self.upcntr + 1;
            }
        }
        out.push((
            self.nbrs[wi],
            Message::Response {
                x: self.subval(wi),
                flag: self.granted[wi],
                epoch: self.probe_epoch[wi],
                wlog: self.wlog_snapshot(),
            },
        ));
    }

    /// `forwardrelease()`: break and release every taken lease the policy
    /// wants to drop, provided no other grant pins it.
    fn forward_release(&mut self, out: &mut Outbox<A::Value>) {
        for vi in 0..self.nbrs.len() {
            if self.taken[vi] && self.is_good_for_release(vi) && self.policy.break_lease(vi) {
                self.taken[vi] = false;
                oat_obs::trace_event!(
                    oat_obs::EventKind::LeaseBreak,
                    self.id.0,
                    self.nbrs[vi].0,
                    0
                );
                let ids = std::mem::take(&mut self.uaw[vi]);
                out.push((self.nbrs[vi], Message::Release { ids }));
            }
        }
    }

    /// `onrelease(w, S)`: trim `uaw` sets against the acknowledged update
    /// ids, consult the release policy, then try to cascade the release.
    ///
    /// `S` lists the update ids (in our id space) the releasing neighbour
    /// `w` never acknowledged; everything we forwarded to `w` with a
    /// smaller id was acknowledged — i.e. a combine/probe at `w`'s side
    /// cleared it, which counts as a read of those writes. For each other
    /// taken neighbour `v`, the surviving `uaw[v]` is therefore the ids
    /// received from `v` at or after `β.rcvid`, where `β` is the earliest
    /// still-unacknowledged forward originating from `v`; when no such
    /// forward exists (`A = ∅`), every update from `v` was acknowledged
    /// and `uaw[v]` empties.
    fn on_release(&mut self, wi: usize, s: &[u64], out: &mut Outbox<A::Value>) {
        // "Let id is the smallest id in S". An empty S (possible for
        // policies that break before any update flows) matches no tuples.
        let id_min = s.iter().copied().min().unwrap_or(u64::MAX);
        for vi in 0..self.nbrs.len() {
            if vi == wi || !self.taken[vi] {
                continue;
            }
            // A = { α ∈ sntupdates : α.node = v ∧ α.sntid ≥ id }
            // β = argmin over A of rcvid
            let beta_rcvid = self
                .sntupdates
                .iter()
                .filter(|t| t.from == vi && t.sntid >= id_min)
                .map(|t| t.rcvid)
                .min();
            match beta_rcvid {
                // S' = ids in uaw[v] with id ≥ β.rcvid
                Some(beta) => self.uaw[vi].retain(|&x| x >= beta),
                None => self.uaw[vi].clear(),
            }
            if self.is_good_for_release(vi) {
                self.policy.release_policy(vi, self.uaw[vi].len());
            }
        }
        self.forward_release(out);
    }

    // ---- transitions T1–T6 ----

    /// `T1`: a combine request is initiated at this node.
    pub fn handle_combine(&mut self, out: &mut Outbox<A::Value>) -> CombineOutcome<A::Value> {
        let tkn = self.tkn();
        self.policy.on_combine(&tkn);
        for &v in &tkn {
            self.uaw[v].clear();
        }
        if self.pndg.contains(&self.id) {
            return CombineOutcome::Coalesced;
        }
        let all_taken = tkn.len() == self.nbrs.len();
        if all_taken {
            let g = self.gval();
            if let Some(gh) = self.ghost.as_mut() {
                gh.append_local_combine(self.id, g.clone());
            }
            CombineOutcome::Done(g)
        } else {
            // sendprobes(u); snt[u] := nbrs() \ tkn()
            self.send_probes(self.id, out);
            let missing: Vec<NodeId> = self
                .nbrs
                .iter()
                .enumerate()
                .filter(|&(i, _)| !self.taken[i])
                .map(|(_, &v)| v)
                .collect();
            self.set_snt(self.id, missing);
            CombineOutcome::Pending
        }
    }

    /// `T2`: a write request with argument `arg` executes at this node.
    pub fn handle_write(&mut self, arg: A::Value, out: &mut Outbox<A::Value>) {
        self.val = arg.clone();
        if let Some(gh) = self.ghost.as_mut() {
            gh.append_local_write(self.id, arg);
        }
        self.policy.on_local_write();
        if self.grntd_nonempty_except(None) {
            let id = self.newid();
            self.forward_updates(None, id, out);
        }
    }

    /// `T3`–`T6`: a message arrives from neighbour `from`.
    ///
    /// Returns `Some(value)` when a locally initiated combine completes
    /// during this step (`T4`, `v = u` branch).
    pub fn handle_message(
        &mut self,
        from: NodeId,
        msg: Message<A::Value>,
        out: &mut Outbox<A::Value>,
    ) -> Option<A::Value> {
        let wi = self.nbr_index(from);
        match msg {
            Message::Probe { epoch } => {
                self.probe_epoch[wi] = epoch;
                self.t3_probe(from, wi, out);
                None
            }
            Message::Response {
                x,
                flag,
                epoch,
                wlog,
            } => {
                // Probe-epoch guard: an answer to a dead incarnation's
                // probe must not touch the fresh automaton — accepting it
                // could double-count the fan-out answer (the live re-probe
                // is also answered) or plant a phantom `taken` lease whose
                // eventual break would be a spurious `release`.
                if epoch != self.epoch {
                    self.stale_responses += 1;
                    oat_obs::trace_event!(oat_obs::EventKind::StaleDrop, self.id.0, from.0, epoch);
                    return None;
                }
                self.t4_response(from, wi, x, flag, wlog, out)
            }
            Message::Update { x, id, wlog } => {
                self.t5_update(wi, x, id, wlog, out);
                None
            }
            Message::Release { ids } => {
                self.t6_release(wi, &ids, out);
                None
            }
        }
    }

    /// `T3`: probe received from `w`.
    fn t3_probe(&mut self, w: NodeId, wi: usize, out: &mut Outbox<A::Value>) {
        let tkn = self.tkn();
        self.policy.on_probe_rcvd(wi, &tkn);
        for &v in &tkn {
            if v != wi {
                self.uaw[v].clear();
            }
        }
        if self.pndg.contains(&w) {
            return;
        }
        // B = nbrs() \ { tkn() ∪ {w} }
        let b: Vec<NodeId> = self
            .nbrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.taken[i] && i != wi)
            .map(|(_, &v)| v)
            .collect();
        if b.is_empty() {
            self.send_response(wi, out);
        } else {
            self.send_probes(w, out);
            self.set_snt(w, b);
        }
    }

    /// `T4`: response received from `w`.
    fn t4_response(
        &mut self,
        w: NodeId,
        wi: usize,
        x: A::Value,
        flag: bool,
        wlog: Option<Vec<crate::ghost::WriteRec<A::Value>>>,
        out: &mut Outbox<A::Value>,
    ) -> Option<A::Value> {
        self.policy.on_response_rcvd(flag, wi);
        self.aval[wi] = x;
        if let (Some(gh), Some(wl)) = (self.ghost.as_mut(), wlog.as_ref()) {
            gh.merge_wlog(wl);
        }
        if flag && !self.taken[wi] {
            oat_obs::trace_event!(oat_obs::EventKind::LeaseTaken, self.id.0, w.0, 0);
        }
        self.taken[wi] = flag;

        let mut completed_local = None;
        // foreach v ∈ pndg: snt[v] := snt[v] \ {w}; if snt[v] = ∅ → …
        let pndg_snapshot = self.pndg.clone();
        for v in pndg_snapshot {
            let emptied = {
                let entry = self.snt_mut(v);
                if let Some(set) = entry {
                    set.retain(|&x| x != w);
                    set.is_empty()
                } else {
                    false
                }
            };
            if emptied {
                self.pndg.retain(|&p| p != v);
                self.snt.retain(|(k, _)| *k != v);
                if v == self.id {
                    let g = self.gval();
                    if let Some(gh) = self.ghost.as_mut() {
                        gh.append_local_combine(self.id, g.clone());
                    }
                    completed_local = Some(g);
                } else {
                    let vi = self.nbr_index(v);
                    self.send_response(vi, out);
                }
            }
        }
        completed_local
    }

    /// `T5`: update received from `w`.
    fn t5_update(
        &mut self,
        wi: usize,
        x: A::Value,
        id: u64,
        wlog: Option<Vec<crate::ghost::WriteRec<A::Value>>>,
        out: &mut Outbox<A::Value>,
    ) {
        let lone = !self.grntd_nonempty_except(Some(wi));
        self.policy.on_update_rcvd(wi, lone);
        self.aval[wi] = x;
        if let (Some(gh), Some(wl)) = (self.ghost.as_mut(), wlog.as_ref()) {
            gh.merge_wlog(wl);
        }
        self.uaw[wi].push(id);
        if !lone {
            let nid = self.newid();
            self.sntupdates.push(SntUpdate {
                from: wi,
                rcvid: id,
                sntid: nid,
            });
            self.forward_updates(Some(wi), nid, out);
            self.prune_sntupdates();
        } else {
            self.forward_release(out);
        }
    }

    /// `T6`: release received from `w`.
    fn t6_release(&mut self, wi: usize, ids: &[u64], out: &mut Outbox<A::Value>) {
        self.policy.on_release_rcvd(wi);
        if self.granted[wi] {
            oat_obs::trace_event!(
                oat_obs::EventKind::LeaseBreak,
                self.id.0,
                self.nbrs[wi].0,
                0
            );
        }
        self.granted[wi] = false;
        self.on_release(wi, ids, out);
        // Everything sent to w so far is now acknowledged.
        self.watermark[wi] = self.upcntr + 1;
        self.prune_sntupdates();
    }

    // ---- crash-recovery transitions (not in Figure 1) ----
    //
    // Figure 1 assumes immortal nodes on reliable FIFO channels. When a
    // node crashes and restarts with a fresh automaton (only `val` is
    // durable), its neighbours hold lease state the restarted peer no
    // longer remembers, and — transitively — every cached aggregate that
    // includes the crashed node's subtree is no longer refreshed. The two
    // transitions below restore the mechanism's invariants: a RESET from
    // the restarted peer clears the shared edge in both directions, and a
    // REVOKE cascade tears down exactly the grants whose cached `subval`
    // contains the crashed subtree (grants pointing *away* from the
    // crash). Leases are a performance device, never a correctness one,
    // so tearing them down is always safe; re-probing rebuilds them.

    /// Peer `from` crashed and restarted with a fresh automaton.
    ///
    /// Clears both directions of the shared edge (the peer forgot every
    /// lease, probe, and update id on it), purges bookkeeping tied to the
    /// peer's old update-id space, and un-stalls pending combine chains:
    /// any fan-out still waiting on (or having already consumed) the
    /// peer's answer gets `from` re-added to its `snt` set and a fresh
    /// probe, because the pre-crash answer no longer reflects a held
    /// lease and the cached `aval` was cleared.
    ///
    /// Returns the neighbours whose grants became unsound (their cached
    /// aggregate includes the peer's subtree): the driver must deliver a
    /// revoke — [`MechNode::handle_revoke`] — to each.
    pub fn handle_peer_reset(&mut self, from: NodeId, out: &mut Outbox<A::Value>) -> Vec<NodeId> {
        let wi = self.nbr_index(from);
        // Both directions of the shared edge are void: the peer forgot
        // the lease it granted us and the one it took from us.
        if self.taken[wi] || self.granted[wi] {
            oat_obs::trace_event!(oat_obs::EventKind::LeaseBreak, self.id.0, from.0, 0);
        }
        self.taken[wi] = false;
        self.granted[wi] = false;
        self.aval[wi] = self.op.identity();
        self.uaw[wi].clear();
        // Tuples recording forwards of the peer's updates reference its
        // old id space; no future release can match them.
        self.sntupdates.retain(|t| t.from != wi);
        self.watermark[wi] = self.upcntr + 1;
        self.prune_sntupdates();
        // The peer forgot it probed us: drop its pending fan-out. Its
        // client will retry and re-probe through a fresh `T1`/`T3`.
        self.pndg.retain(|&p| p != from);
        self.snt.retain(|(k, _)| *k != from);
        // Grants to other neighbours cache a subtree aggregate that
        // includes the peer's side and will no longer be refreshed.
        let revoke = self.revoke_grants_except(wi);
        // Re-fetch the peer's subtree value for every still-pending
        // fan-out: whether its response was still outstanding (the crash
        // dropped it) or already consumed (the crash voided it), the
        // completion reads `aval[wi]`, which we just reset.
        let mut need_probe = false;
        for (_, set) in &mut self.snt {
            if !set.contains(&from) {
                set.push(from);
            }
            need_probe = true;
        }
        if need_probe {
            out.push((from, Message::Probe { epoch: self.epoch }));
        }
        revoke
    }

    /// Neighbour `from` can no longer honour the lease we hold on it
    /// (its own cached inputs were voided by a crash behind it).
    ///
    /// Drops `taken[from]` and answers with a normal `release` carrying
    /// `uaw[from]`, so the granter's ledger bookkeeping runs through the
    /// ordinary `T6` path; then cascades to our own now-unsound grants.
    /// Returns the neighbours the driver must forward the revoke to.
    pub fn handle_revoke(&mut self, from: NodeId, out: &mut Outbox<A::Value>) -> Vec<NodeId> {
        let wi = self.nbr_index(from);
        if self.taken[wi] {
            self.taken[wi] = false;
            let ids = std::mem::take(&mut self.uaw[wi]);
            out.push((from, Message::Release { ids }));
        }
        self.revoke_grants_except(wi)
    }

    /// Involuntarily drops every grant except toward `wi` (whose cached
    /// aggregate excludes the invalidated subtree and stays sound).
    /// Returns the former grantees, who must each be sent a revoke.
    fn revoke_grants_except(&mut self, wi: usize) -> Vec<NodeId> {
        let mut targets = Vec::new();
        for j in 0..self.nbrs.len() {
            if j != wi && self.granted[j] {
                self.granted[j] = false;
                self.policy.on_release_rcvd(j);
                oat_obs::trace_event!(
                    oat_obs::EventKind::LeaseRevoke,
                    self.id.0,
                    self.nbrs[j].0,
                    0
                );
                targets.push(self.nbrs[j]);
            }
        }
        targets
    }

    // ---- snt association-list plumbing ----

    fn set_snt(&mut self, key: NodeId, val: Vec<NodeId>) {
        if let Some(entry) = self.snt.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = val;
        } else {
            self.snt.push((key, val));
        }
    }

    fn snt_mut(&mut self, key: NodeId) -> Option<&mut Vec<NodeId>> {
        self.snt.iter_mut().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::SumI64;
    use crate::policy::rww::RwwSpec;
    use crate::policy::PolicySpec;
    use crate::tree::Tree;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn node(tree: &Tree, id: u32) -> MechNode<crate::policy::rww::RwwNode, SumI64> {
        MechNode::new(
            tree,
            n(id),
            SumI64,
            RwwSpec.build(tree.degree(n(id))),
            false,
        )
    }

    #[test]
    fn single_node_combine_is_local() {
        let t = Tree::from_edges(1, &[]).unwrap();
        let mut u = node(&t, 0);
        let mut out = Vec::new();
        u.handle_write(42, &mut out);
        assert!(out.is_empty(), "write with no grants sends nothing");
        match u.handle_combine(&mut out) {
            CombineOutcome::Done(v) => assert_eq!(v, 42),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(out.is_empty());
    }

    #[test]
    fn combine_without_lease_probes() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut out = Vec::new();
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, n(1));
        assert_eq!(out[0].1.kind(), crate::message::MsgKind::Probe);
        assert_eq!(u.pndg(), &[n(0)]);
    }

    #[test]
    fn probe_at_leaf_grants_and_responds() {
        let t = Tree::pair();
        let mut v = node(&t, 1);
        let mut out = Vec::new();
        v.handle_write(7, &mut out);
        v.handle_message(n(0), Message::Probe { epoch: 0 }, &mut out);
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            Message::Response { x, flag, .. } => {
                assert_eq!(*x, 7);
                assert!(*flag, "RWW setlease always grants");
            }
            m => panic!("expected response, got {m:?}"),
        }
        assert!(v.granted(0));
    }

    #[test]
    fn full_probe_response_roundtrip_on_pair() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut v = node(&t, 1);
        let mut out = Vec::new();

        v.handle_write(5, &mut out);
        assert!(out.is_empty());

        // combine at u: probe u -> v
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        let (to, probe) = out.pop().unwrap();
        assert_eq!(to, n(1));

        // v answers with a response granting the lease
        v.handle_message(n(0), probe, &mut out);
        let (to, resp) = out.pop().unwrap();
        assert_eq!(to, n(0));

        // u completes the combine
        let done = u.handle_message(n(1), resp, &mut out);
        assert_eq!(done, Some(5));
        assert!(out.is_empty());
        assert!(u.taken(0), "u took the lease");
        assert!(u.pndg().is_empty());
        assert!(u.snt_all_empty());
    }

    #[test]
    fn write_pushes_update_along_lease_then_two_writes_release() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut v = node(&t, 1);
        let mut out = Vec::new();

        // Establish the lease v -> u ... (u takes from v) via a combine at u.
        u.handle_combine(&mut out);
        let (_, probe) = out.pop().unwrap();
        v.handle_message(n(0), probe, &mut out);
        let (_, resp) = out.pop().unwrap();
        u.handle_message(n(1), resp, &mut out);
        assert!(v.granted(0));

        // First write at v: one update v -> u, no release yet.
        v.handle_write(10, &mut out);
        let (to, upd) = out.pop().unwrap();
        assert_eq!(to, n(0));
        assert!(out.is_empty());
        u.handle_message(n(1), upd, &mut out);
        assert!(out.is_empty(), "RWW tolerates one write");
        assert_eq!(u.aval(0), &10);

        // Second write at v: update then release u -> v.
        v.handle_write(20, &mut out);
        let (_, upd) = out.pop().unwrap();
        u.handle_message(n(1), upd, &mut out);
        let (to, rel) = out.pop().unwrap();
        assert_eq!(to, n(1));
        match &rel {
            Message::Release { ids } => assert_eq!(ids.len(), 2),
            m => panic!("expected release, got {m:?}"),
        }
        assert!(!u.taken(0));
        v.handle_message(n(0), rel, &mut out);
        assert!(!v.granted(0), "lease broken after two writes");
        assert!(out.is_empty());
    }

    #[test]
    fn prewarm_sets_symmetric_leases() {
        let t = Tree::path(3);
        let mut m = node(&t, 1);
        m.prewarm_leases();
        assert!(m.taken(0) && m.taken(1));
        assert!(m.granted(0) && m.granted(1));
        // A combine is now local.
        let mut out = Vec::new();
        match m.handle_combine(&mut out) {
            CombineOutcome::Done(v) => assert_eq!(v, 0),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn peer_reset_clears_edge_and_reprobes_pending_fanout() {
        let t = Tree::path(3); // 0 - 1 - 2
        let mut m = node(&t, 1);
        let mut out = Vec::new();

        // Combine at 1 probes both neighbours.
        assert_eq!(m.handle_combine(&mut out), CombineOutcome::Pending);
        assert_eq!(out.len(), 2);
        out.clear();

        // 2's response arrives and grants; 0 is still outstanding.
        m.handle_message(
            n(2),
            Message::Response {
                x: 7,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out,
        );
        assert!(m.taken(1));
        assert_eq!(m.aval(1), &7);

        // 2 crashes and restarts: its edge state is void, and the
        // pending fan-out must re-fetch its subtree value.
        let revoke = m.handle_peer_reset(n(2), &mut out);
        assert!(revoke.is_empty(), "no grants yet, nothing to revoke");
        assert!(!m.taken(1));
        assert_eq!(m.aval(1), &0, "cached aggregate reset to identity");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, n(2));
        assert_eq!(out[0].1.kind(), crate::message::MsgKind::Probe);
        out.clear();

        // Fresh responses from both sides now complete the combine with
        // post-crash values only.
        m.handle_message(
            n(2),
            Message::Response {
                x: 3,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out,
        );
        let done = m.handle_message(
            n(0),
            Message::Response {
                x: 10,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out,
        );
        assert_eq!(done, Some(13));
        assert!(m.pndg().is_empty());
        assert!(m.snt_all_empty());
    }

    #[test]
    fn peer_reset_revokes_grants_and_revoke_cascades() {
        let t = Tree::path(3); // 0 - 1 - 2
        let mut m = node(&t, 1);
        let mut out = Vec::new();

        // Probe from 0 while 2 is leased: 1 fans out to 2, gets the
        // grant, then grants 0 — now granted[0] caches subval(0) which
        // includes 2's subtree.
        m.handle_message(n(0), Message::Probe { epoch: 0 }, &mut out);
        out.clear();
        m.handle_message(
            n(2),
            Message::Response {
                x: 5,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out,
        );
        assert!(m.granted(0), "1 granted node 0's probe");
        out.clear();

        // 2 crashes: the grant to 0 is unsound and must be revoked.
        let revoke = m.handle_peer_reset(n(2), &mut out);
        assert_eq!(revoke, vec![n(0)]);
        assert!(!m.granted(0));
        assert!(!m.taken(1));

        // The taker side of a revoke releases through the normal path
        // and cascades to its own grants (none here).
        let mut taker = node(&t, 1);
        let mut out2 = Vec::new();
        taker.handle_combine(&mut out2);
        out2.clear();
        taker.handle_message(
            n(0),
            Message::Response {
                x: 1,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out2,
        );
        taker.handle_message(
            n(2),
            Message::Response {
                x: 2,
                flag: true,
                epoch: 0,
                wlog: None,
            },
            &mut out2,
        );
        assert!(taker.taken(0));
        out2.clear();
        let next = taker.handle_revoke(n(0), &mut out2);
        assert!(next.is_empty());
        assert!(!taker.taken(0));
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].0, n(0));
        assert_eq!(out2[0].1.kind(), crate::message::MsgKind::Release);
    }

    #[test]
    fn peer_reset_is_idempotent_and_drops_peer_fanout() {
        let t = Tree::pair();
        let mut v = node(&t, 1);
        let mut out = Vec::new();
        // 0 probes 1 (leaf): 1 grants and responds.
        v.handle_message(n(0), Message::Probe { epoch: 0 }, &mut out);
        assert!(v.granted(0));
        out.clear();
        let r1 = v.handle_peer_reset(n(0), &mut out);
        assert!(
            r1.is_empty(),
            "grant toward the resetting peer is dropped, not revoked"
        );
        assert!(!v.granted(0));
        assert!(out.is_empty(), "no pending fan-out, no re-probe");
        let r2 = v.handle_peer_reset(n(0), &mut out);
        assert!(r2.is_empty() && out.is_empty(), "reset is idempotent");
        assert!(v.pndg().is_empty() && v.snt_all_empty());
    }

    #[test]
    fn coalesced_combine_while_pending() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut out = Vec::new();
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        out.clear();
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Coalesced);
        assert!(out.is_empty(), "no duplicate probes for coalesced combine");
    }

    /// The exact post-crash duplicate-response interleaving the probe
    /// epochs close (ISSUE 5 satellite):
    ///
    /// 1. `u@0` probes `v`; `v` grants and answers — but the answer sits
    ///    in flight.
    /// 2. `u` crashes and restarts as `u@1`; its RESET reaches `v`
    ///    (FIFO), which re-grants nothing yet.
    /// 3. A client retry makes `u@1` probe `v` again *before* the stale
    ///    answer arrives.
    /// 4. The stale `response(flag=true, epoch=0)` is delivered to `u@1`.
    ///
    /// Without the epoch guard, step 4 completes `u@1`'s fan-out with the
    /// pre-crash value AND plants `taken[v]` for a lease `v` no longer
    /// remembers granting — then `v`'s real answer arrives as a duplicate
    /// and a later break emits a spurious `release`.
    #[test]
    fn stale_epoch_response_is_discarded_not_double_counted() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut v = node(&t, 1);
        let mut out = Vec::new();

        // Step 1: u@0 probes v; v answers with a grant (in flight).
        v.handle_write(10, &mut out);
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        assert_eq!(out.pop(), Some((n(1), Message::Probe { epoch: 0 })));
        v.handle_message(n(0), Message::Probe { epoch: 0 }, &mut out);
        let stale = out.pop().expect("v answered").1;
        assert!(matches!(
            stale,
            Message::Response {
                flag: true,
                epoch: 0,
                ..
            }
        ));

        // Step 2: u crashes; only `val` survives. v processes the RESET.
        let mut u = node(&t, 0);
        u.set_epoch(1);
        v.handle_peer_reset(n(0), &mut out);
        out.clear();

        // Step 3: the restarted u re-probes before the stale answer lands.
        v.handle_write(32, &mut out);
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        assert_eq!(out.pop(), Some((n(1), Message::Probe { epoch: 1 })));

        // Step 4: the stale answer arrives at u@1 — and is discarded.
        let completed = u.handle_message(n(1), stale, &mut out);
        assert_eq!(
            completed, None,
            "stale response must not complete the fan-out"
        );
        assert!(!u.taken(0), "no phantom lease from a dead incarnation");
        assert!(u.pndg().contains(&n(0)), "fan-out still waiting");
        assert!(out.is_empty());
        assert_eq!(u.stale_responses(), 1);

        // v answers the live probe; u@1 completes exactly once, with the
        // post-crash value, and takes the lease for real.
        v.handle_message(n(0), Message::Probe { epoch: 1 }, &mut out);
        let (dst, fresh) = out.pop().expect("fresh response");
        assert_eq!(dst, n(0));
        let completed = u.handle_message(n(1), fresh, &mut out);
        assert_eq!(completed, Some(32), "exactly one completion, fresh value");
        assert!(u.taken(0) && u.pndg().is_empty());

        // A policy-driven break now releases only the *real* lease; had
        // the stale flag been honoured, u would have sent a second,
        // spurious release for a grant v no longer holds.
        assert_eq!(u.stale_responses(), 1);
    }

    /// A stale response arriving when the restarted node has *no*
    /// outstanding probe (the client retry came later) must be a pure
    /// no-op — previously it planted `taken` + a stale `aval` that a
    /// later break would release spuriously.
    #[test]
    fn stale_epoch_response_without_outstanding_probe_is_a_noop() {
        let t = Tree::pair();
        let mut u = node(&t, 0);
        let mut v = node(&t, 1);
        let mut out = Vec::new();
        v.handle_write(7, &mut out);
        assert_eq!(u.handle_combine(&mut out), CombineOutcome::Pending);
        out.clear();
        v.handle_message(n(0), Message::Probe { epoch: 0 }, &mut out);
        let stale = out.pop().unwrap().1;

        // Crash-restart; stale answer arrives before any new activity.
        let mut u = node(&t, 0);
        u.set_epoch(1);
        assert_eq!(u.handle_message(n(1), stale, &mut out), None);
        assert!(!u.taken(0), "no lease");
        assert_eq!(*u.aval(0), 0, "no stale cached aggregate");
        assert!(out.is_empty(), "no messages, so no spurious release later");
        assert_eq!(u.stale_responses(), 1);
    }

    /// Epochs are sticky per probe: a node relaying a chained fan-out
    /// echoes each requester's own epoch, so a restarted *relay* cannot
    /// misdirect answers either.
    #[test]
    fn chained_response_echoes_the_requesters_probe_epoch() {
        let t = Tree::path(3); // 0 — 1 — 2
        let mut mid = node(&t, 1);
        let mut leaf = node(&t, 2);
        let mut out = Vec::new();
        // Node 0 (epoch 4) probes the relay; the relay fans out to 2
        // with its own epoch (0 here).
        mid.handle_message(n(0), Message::Probe { epoch: 4 }, &mut out);
        assert_eq!(out.pop(), Some((n(2), Message::Probe { epoch: 0 })));
        leaf.handle_message(n(1), Message::Probe { epoch: 0 }, &mut out);
        let (_, resp) = out.pop().unwrap();
        mid.handle_message(n(2), resp, &mut out);
        // The relay's answer back to 0 echoes 0's epoch, not its own.
        match out.pop() {
            Some((dst, Message::Response { epoch, .. })) => {
                assert_eq!(dst, n(0));
                assert_eq!(epoch, 4, "response echoes the requester's probe epoch");
            }
            other => panic!("expected response to 0, got {other:?}"),
        }
    }
}
