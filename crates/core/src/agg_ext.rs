//! Extended aggregation operators for the paper's motivating
//! applications.
//!
//! Section 1 lists system management, service placement, file location,
//! and sensor queries as aggregation consumers; those need more than
//! sums: *top-k* (the k most loaded machines), *set membership* (which
//! services run somewhere below), and *histograms* (load distribution).
//! Each operator here is a commutative monoid — checked by the same
//! property tests as the core operators — so the Figure-1 mechanism and
//! every theorem apply unchanged.

use crate::agg::AggOp;

/// Top-k multiset: keeps the `k` largest values seen, sorted descending.
///
/// `⊕` merges two top-k lists and re-truncates; the identity is the
/// empty list. The value domain is descending-sorted lists of length at
/// most `k` (singletons from [`TopK::sample`], merges from `⊕`);
/// associativity holds on that domain because merge-then-truncate keeps
/// exactly the k largest elements of the combined multiset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopK {
    /// How many values to keep.
    pub k: usize,
}

impl TopK {
    /// Top-k operator keeping `k ≥ 1` values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopK { k }
    }

    /// A singleton value (one node's sample).
    pub fn sample(&self, v: i64) -> Vec<i64> {
        vec![v]
    }
}

impl AggOp for TopK {
    type Value = Vec<i64>;

    fn identity(&self) -> Vec<i64> {
        Vec::new()
    }

    fn combine(&self, a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        debug_assert!(a.windows(2).all(|w| w[0] >= w[1]), "inputs sorted desc");
        debug_assert!(b.windows(2).all(|w| w[0] >= w[1]));
        let mut out = Vec::with_capacity(self.k.min(a.len() + b.len()));
        let (mut i, mut j) = (0, 0);
        while out.len() < self.k && (i < a.len() || j < b.len()) {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x >= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_a {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "top-k(i64)"
    }
}

/// Bitwise-OR set union over up to 64 element ids (e.g. "which of these
/// 64 services is running somewhere in the subtree?").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitsetUnion;

impl BitsetUnion {
    /// A singleton set containing element `id < 64`.
    pub fn singleton(id: u8) -> u64 {
        assert!(id < 64);
        1u64 << id
    }
}

impl AggOp for BitsetUnion {
    type Value = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a | b
    }
    fn name(&self) -> &'static str {
        "bitset-union"
    }
}

/// Fixed-bucket histogram over `B` buckets (element-wise counter sums).
///
/// Bucketing of raw samples happens at the writer via
/// [`Histogram::bucketize`]; the aggregate is the per-bucket count
/// vector, whose `⊕` is element-wise saturating addition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Histogram<const B: usize> {
    /// Lower bound of bucket 0.
    pub min: i64,
    /// Width of each bucket (the last bucket absorbs overflow).
    pub width: i64,
}

impl<const B: usize> Histogram<B> {
    /// New histogram operator; `width ≥ 1`.
    pub fn new(min: i64, width: i64) -> Self {
        assert!(width >= 1, "bucket width must be positive");
        assert!(B >= 1, "need at least one bucket");
        Histogram { min, width }
    }

    /// Converts one raw sample into a histogram value (a one-hot count
    /// vector); out-of-range samples clamp to the boundary buckets.
    pub fn bucketize(&self, sample: i64) -> [u64; B] {
        let mut v = [0u64; B];
        let idx = if sample < self.min {
            0
        } else {
            (((sample - self.min) / self.width) as usize).min(B - 1)
        };
        v[idx] = 1;
        v
    }
}

impl<const B: usize> AggOp for Histogram<B> {
    type Value = [u64; B];

    fn identity(&self) -> [u64; B] {
        [0; B]
    }

    fn combine(&self, a: &[u64; B], b: &[u64; B]) -> [u64; B] {
        let mut out = [0u64; B];
        for i in 0..B {
            out[i] = a[i].saturating_add(b[i]);
        }
        out
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::check_monoid_laws;
    use proptest::prelude::*;

    #[test]
    fn topk_merges_and_truncates() {
        let op = TopK::new(3);
        let a = vec![9, 5, 1];
        let b = vec![7, 6];
        assert_eq!(op.combine(&a, &b), vec![9, 7, 6]);
        assert_eq!(op.combine(&a, &op.identity()), a);
        assert_eq!(
            op.combine(&op.identity(), &op.identity()),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn topk_with_duplicates() {
        let op = TopK::new(4);
        assert_eq!(op.combine(&vec![5, 5], &vec![5, 3]), vec![5, 5, 5, 3]);
    }

    #[test]
    fn bitset_union_semantics() {
        let op = BitsetUnion;
        let a = BitsetUnion::singleton(3);
        let b = BitsetUnion::singleton(7);
        let u = op.combine(&a, &b);
        assert_eq!(u, (1 << 3) | (1 << 7));
        assert_eq!(op.combine(&u, &op.identity()), u);
    }

    #[test]
    fn histogram_bucketize_and_merge() {
        let op: Histogram<4> = Histogram::new(0, 10);
        assert_eq!(op.bucketize(-5), [1, 0, 0, 0]);
        assert_eq!(op.bucketize(15), [0, 1, 0, 0]);
        assert_eq!(op.bucketize(999), [0, 0, 0, 1]);
        let merged = op.combine(&op.bucketize(1), &op.bucketize(15));
        assert_eq!(merged, [1, 1, 0, 0]);
    }

    fn sorted_desc(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
        proptest::collection::vec(-1000i64..1000, 0..=max_len).prop_map(|mut v| {
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        })
    }

    proptest! {
        #[test]
        fn topk_laws(a in sorted_desc(4), b in sorted_desc(4), c in sorted_desc(4)) {
            // The domain is lists of length <= k.
            prop_assert!(check_monoid_laws(&TopK::new(4), &a, &b, &c));
        }

        #[test]
        fn bitset_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            prop_assert!(check_monoid_laws(&BitsetUnion, &a, &b, &c));
        }

        #[test]
        fn histogram_laws(
            a in proptest::array::uniform4(0u64..1_000_000),
            b in proptest::array::uniform4(0u64..1_000_000),
            c in proptest::array::uniform4(0u64..1_000_000),
        ) {
            let op: Histogram<4> = Histogram::new(0, 5);
            prop_assert!(check_monoid_laws(&op, &a, &b, &c));
        }
    }
}
