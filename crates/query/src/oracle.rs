//! The sequential reference: exact per-group, per-window aggregates.
//!
//! A single in-memory fold over the fact stream with the same grouping
//! and windowing semantics as the engine. The engine's finals must
//! equal this exactly at quiescence — the convergence contract the
//! property tests and the CI smoke pin.

use crate::spec::{QuerySpec, WindowSpec};
use oat_workloads::facts::Fact;
use std::collections::BTreeMap;

/// One exact final: the aggregate of group `key` over window `window`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Final {
    /// Group key (`0` when the query has no `group by`).
    pub key: u32,
    /// Window index (`at_ms / T` for tumbling; `0` otherwise).
    pub window: u64,
    /// The exact aggregate value.
    pub value: i64,
}

/// Folds `facts` sequentially under `spec` and returns every non-empty
/// `(group, window)` final, sorted by `(key, window)`.
pub fn oracle_finals(spec: &QuerySpec, facts: &[Fact]) -> Vec<Final> {
    let mut out = Vec::new();
    match spec.window {
        WindowSpec::None => {
            let mut groups: BTreeMap<u32, i64> = BTreeMap::new();
            for f in facts {
                let k = group_of(spec, f);
                let acc = groups.entry(k).or_insert_with(|| spec.op.identity());
                *acc = spec.op.combine(*acc, spec.op.map_val(f.val));
            }
            for (key, value) in groups {
                out.push(Final {
                    key,
                    window: 0,
                    value,
                });
            }
        }
        WindowSpec::LastN(n) => {
            let mut groups: BTreeMap<u32, Vec<i64>> = BTreeMap::new();
            for f in facts {
                groups
                    .entry(group_of(spec, f))
                    .or_default()
                    .push(spec.op.map_val(f.val));
            }
            for (key, vals) in groups {
                let tail = &vals[vals.len().saturating_sub(n)..];
                let value = tail
                    .iter()
                    .fold(spec.op.identity(), |a, &b| spec.op.combine(a, b));
                out.push(Final {
                    key,
                    window: 0,
                    value,
                });
            }
        }
        WindowSpec::Tumbling(ms) => {
            let mut groups: BTreeMap<(u32, u64), i64> = BTreeMap::new();
            for f in facts {
                let k = (group_of(spec, f), f.at_ms / ms);
                let acc = groups.entry(k).or_insert_with(|| spec.op.identity());
                *acc = spec.op.combine(*acc, spec.op.map_val(f.val));
            }
            for ((key, window), value) in groups {
                out.push(Final { key, window, value });
            }
        }
    }
    out
}

fn group_of(spec: &QuerySpec, f: &Fact) -> u32 {
    if spec.group_by_key {
        f.key
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpKind;

    fn facts() -> Vec<Fact> {
        vec![
            Fact {
                key: 0,
                val: 3,
                at_ms: 0,
            },
            Fact {
                key: 1,
                val: -2,
                at_ms: 40,
            },
            Fact {
                key: 0,
                val: 10,
                at_ms: 120,
            },
            Fact {
                key: 0,
                val: 1,
                at_ms: 130,
            },
        ]
    }

    fn spec(op: OpKind, group: bool, window: WindowSpec) -> QuerySpec {
        QuerySpec {
            op,
            group_by_key: group,
            window,
        }
    }

    #[test]
    fn unwindowed_group_by() {
        let f = oracle_finals(&spec(OpKind::Sum, true, WindowSpec::None), &facts());
        assert_eq!(
            f,
            vec![
                Final {
                    key: 0,
                    window: 0,
                    value: 14
                },
                Final {
                    key: 1,
                    window: 0,
                    value: -2
                },
            ]
        );
    }

    #[test]
    fn no_group_by_folds_everything_into_key_zero() {
        let f = oracle_finals(&spec(OpKind::Count, false, WindowSpec::None), &facts());
        assert_eq!(
            f,
            vec![Final {
                key: 0,
                window: 0,
                value: 4
            }]
        );
    }

    #[test]
    fn tumbling_splits_by_fact_time() {
        let f = oracle_finals(
            &spec(OpKind::Sum, true, WindowSpec::Tumbling(100)),
            &facts(),
        );
        assert_eq!(
            f,
            vec![
                Final {
                    key: 0,
                    window: 0,
                    value: 3
                },
                Final {
                    key: 0,
                    window: 1,
                    value: 11
                },
                Final {
                    key: 1,
                    window: 0,
                    value: -2
                },
            ]
        );
    }

    #[test]
    fn last_n_keeps_the_tail() {
        let f = oracle_finals(&spec(OpKind::Max, true, WindowSpec::LastN(2)), &facts());
        // Key 0's last two facts are 10, 1.
        assert_eq!(f[0].value, 10);
        let f = oracle_finals(&spec(OpKind::Sum, true, WindowSpec::LastN(1)), &facts());
        assert_eq!(f[0].value, 1);
    }
}
