//! # oat-query — progressive online aggregation over a forest of trees
//!
//! The paper's mechanism answers one aggregate over one tree. Online
//! aggregation (Hellerstein et al.; DeepOLA for the modern treatment)
//! asks for something stronger: start answering *before* all the data
//! has arrived, and refine the answer continuously with an explicit
//! handle on how much of the input it reflects. This crate layers that
//! query model on top of the existing cluster runtime:
//!
//! * [`spec`] — declarative query specs:
//!   `agg(op) [group by key] [window last-N | tumbling(T)]`, where `op`
//!   is any of `sum`/`min`/`max`/`count` (all monoids the node automaton
//!   already aggregates),
//! * [`engine`] — the continuous-query engine. A `group by key` query
//!   instantiates a **forest**: one lazily-created tree per observed
//!   key, all multiplexed over the same nodes, reactors, and
//!   connections (tree ids ≥ 1; tree 0 stays the sim-parity pinned
//!   built-in). Facts are sharded across nodes as absolute-valued
//!   per-shard accumulators, so a crash or kill9 that loses volatile
//!   forest state is healed by re-writing the accumulators,
//! * [`oracle`] — the sequential reference: the exact per-key,
//!   per-window aggregate a single fold over the fact stream produces.
//!   Engine finals must match it exactly at quiescence,
//! * [`json`] — the stable `oat-query-v1` report schema consumed by the
//!   CLI, the bench harness, and the CI smoke.
//!
//! Every emitted partial carries freshness metadata: the count of
//! acknowledged writes it reflects (`last_write_seq`), the number of
//! still-outstanding writes (`staleness`), and the fraction of the
//! total stream already applied (`coverage`, monotone by construction
//! because the stream is pre-generated and acknowledgements only
//! accumulate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod oracle;
pub mod spec;

pub use engine::{run, PartialRecord, QueryRun, RefineStats};
pub use oracle::{oracle_finals, Final};
pub use spec::{OpKind, QuerySpec, WindowSpec};
