//! Declarative query specs and their parser.
//!
//! Grammar (whitespace-separated, case-insensitive keywords):
//!
//! ```text
//! SPEC   := OP [ "group" "by" "key" ] [ "window" WINDOW ]
//! OP     := "sum" | "min" | "max" | "count"
//! WINDOW := "last-" N            (sliding window over the last N facts)
//!         | "tumbling(" T "ms)"  (fact-time windows of T milliseconds)
//! ```
//!
//! Examples: `sum`, `count group by key`,
//! `sum group by key window tumbling(100ms)`, `max window last-50`.

use std::fmt;
use std::str::FromStr;

/// Which monoid the query folds. `count` runs the cluster under integer
/// sum with every fact mapped to `1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Wrapping integer sum.
    Sum,
    /// Minimum (`i64::MAX` identity).
    Min,
    /// Maximum (`i64::MIN` identity).
    Max,
    /// Fact count (sum of `1` per fact).
    Count,
}

impl OpKind {
    /// Identity element of the operator's value domain.
    pub fn identity(self) -> i64 {
        match self {
            OpKind::Sum | OpKind::Count => 0,
            OpKind::Min => i64::MAX,
            OpKind::Max => i64::MIN,
        }
    }

    /// `a ⊕ b` on already-mapped values.
    pub fn combine(self, a: i64, b: i64) -> i64 {
        match self {
            OpKind::Sum | OpKind::Count => a.wrapping_add(b),
            OpKind::Min => a.min(b),
            OpKind::Max => a.max(b),
        }
    }

    /// Maps a raw fact value into the operator's domain (`count`
    /// discards the value and contributes `1`).
    pub fn map_val(self, v: i64) -> i64 {
        match self {
            OpKind::Count => 1,
            _ => v,
        }
    }

    /// Spec keyword for this operator.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Sum => "sum",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Count => "count",
        }
    }
}

/// Windowing mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Unwindowed: the aggregate covers the whole stream.
    None,
    /// Sliding window over the last `N` facts of each group. Expiring
    /// facts are *retired*: the affected shard accumulator is refolded
    /// from the surviving ring contents and re-written.
    LastN(usize),
    /// Tumbling fact-time windows of the given width in milliseconds.
    /// A group's window is finalized (exactly) when its first fact of a
    /// later window arrives, and the group's shards reset to identity.
    Tumbling(u64),
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::None => write!(f, "none"),
            WindowSpec::LastN(n) => write!(f, "last-{n}"),
            WindowSpec::Tumbling(ms) => write!(f, "tumbling({ms}ms)"),
        }
    }
}

/// A parsed query spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The aggregation operator.
    pub op: OpKind,
    /// Whether the query groups by fact key (forest of per-key trees)
    /// or aggregates the whole stream as one group (a single tree).
    pub group_by_key: bool,
    /// Windowing mode.
    pub window: WindowSpec,
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.name())?;
        if self.group_by_key {
            write!(f, " group by key")?;
        }
        if self.window != WindowSpec::None {
            write!(f, " window {}", self.window)?;
        }
        Ok(())
    }
}

impl FromStr for QuerySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<QuerySpec, String> {
        let toks: Vec<String> = s.split_whitespace().map(str::to_ascii_lowercase).collect();
        let mut it = toks.iter().map(String::as_str).peekable();
        let op = match it.next() {
            Some("sum") => OpKind::Sum,
            Some("min") => OpKind::Min,
            Some("max") => OpKind::Max,
            Some("count") => OpKind::Count,
            Some(other) => return Err(format!("unknown operator {other:?} (sum|min|max|count)")),
            None => return Err("empty query spec".into()),
        };
        let mut spec = QuerySpec {
            op,
            group_by_key: false,
            window: WindowSpec::None,
        };
        while let Some(tok) = it.next() {
            match tok {
                "group" => {
                    if it.next() != Some("by") || it.next() != Some("key") {
                        return Err("expected `group by key`".into());
                    }
                    if spec.group_by_key {
                        return Err("duplicate `group by key`".into());
                    }
                    spec.group_by_key = true;
                }
                "window" => {
                    if spec.window != WindowSpec::None {
                        return Err("duplicate `window` clause".into());
                    }
                    let w = it.next().ok_or("expected window after `window`")?;
                    spec.window = parse_window(w)?;
                }
                other => return Err(format!("unexpected token {other:?}")),
            }
        }
        Ok(spec)
    }
}

fn parse_window(w: &str) -> Result<WindowSpec, String> {
    if let Some(n) = w.strip_prefix("last-") {
        let n: usize = n.parse().map_err(|_| format!("bad window size in {w:?}"))?;
        if n == 0 {
            return Err("window last-0 is empty".into());
        }
        return Ok(WindowSpec::LastN(n));
    }
    if let Some(inner) = w
        .strip_prefix("tumbling(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let ms = inner
            .strip_suffix("ms")
            .ok_or(format!("tumbling width needs an `ms` suffix in {w:?}"))?;
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad tumbling width in {w:?}"))?;
        if ms == 0 {
            return Err("tumbling(0ms) is empty".into());
        }
        return Ok(WindowSpec::Tumbling(ms));
    }
    Err(format!("unknown window {w:?} (last-N | tumbling(Tms))"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let s: QuerySpec = "sum group by key window tumbling(100ms)".parse().unwrap();
        assert_eq!(
            s,
            QuerySpec {
                op: OpKind::Sum,
                group_by_key: true,
                window: WindowSpec::Tumbling(100),
            }
        );
        let s: QuerySpec = "MAX window last-50".parse().unwrap();
        assert_eq!(s.op, OpKind::Max);
        assert!(!s.group_by_key);
        assert_eq!(s.window, WindowSpec::LastN(50));
        let s: QuerySpec = "count".parse().unwrap();
        assert_eq!(s.op, OpKind::Count);
        assert_eq!(s.window, WindowSpec::None);
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            "sum",
            "count group by key",
            "min window last-7",
            "max group by key window tumbling(250ms)",
        ] {
            let spec: QuerySpec = src.parse().unwrap();
            assert_eq!(spec.to_string(), src);
            let again: QuerySpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "avg",
            "sum group key",
            "sum window",
            "sum window last-0",
            "sum window tumbling(0ms)",
            "sum window tumbling(5s)",
            "sum window forever",
            "sum group by key group by key",
            "sum window last-3 window last-4",
            "sum extra",
        ] {
            assert!(bad.parse::<QuerySpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn op_monoids() {
        for op in [OpKind::Sum, OpKind::Min, OpKind::Max, OpKind::Count] {
            let e = op.identity();
            for v in [-5i64, 0, 7] {
                let m = op.map_val(v);
                assert_eq!(op.combine(e, m), m);
                assert_eq!(op.combine(m, e), m);
            }
        }
        assert_eq!(OpKind::Count.map_val(-100), 1);
    }
}
