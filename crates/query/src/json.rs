//! The stable `oat-query-v1` report schema.
//!
//! Hand-rolled like the bench report (no serde in the offline image).
//! The document is consumed three ways: the `oat query --json` CLI
//! output, the `"query"` block of the `oat-bench-v4` report, and the CI
//! query smoke (which greps the schema tag and the verdict fields), so
//! field names here are pinned — add fields, never rename.

use crate::engine::QueryRun;
use oat_workloads::facts::Fact;

/// Schema tag for the query report document.
pub const QUERY_SCHEMA: &str = "oat-query-v1";

/// Run parameters echoed into the report.
#[derive(Clone, Debug)]
pub struct ReportMeta<'a> {
    /// Fact-stream generator name (`uniform` / `zipf` / `phases`).
    pub stream: &'a str,
    /// Stream seed.
    pub seed: u64,
    /// Number of distinct keys in the stream.
    pub keys: u32,
    /// Transport name (`tcp` / `uds` / `ring`).
    pub transport: &'a str,
    /// Tree spec string.
    pub tree: &'a str,
    /// Policy spec string.
    pub policy: &'a str,
}

fn opt_ms(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

/// Renders the full `oat-query-v1` document: spec echo, verdicts
/// (oracle match, monotonicity), refinement-latency stats, finals with
/// their oracle values, and the complete partial sequence.
pub fn report_json(run: &QueryRun, facts: &[Fact], meta: &ReportMeta<'_>) -> String {
    let oracle = crate::oracle::oracle_finals(&run.spec, facts);
    let mut finals = String::from("[");
    let mut sorted = run.finals.clone();
    sorted.sort_by_key(|f| (f.key, f.window));
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            finals.push_str(", ");
        }
        let want = oracle
            .iter()
            .find(|o| o.key == f.key && o.window == f.window)
            .map(|o| o.value.to_string())
            .unwrap_or_else(|| "null".to_string());
        finals.push_str(&format!(
            "{{\"key\": {}, \"window\": {}, \"value\": {}, \"oracle\": {}}}",
            f.key, f.window, f.value, want
        ));
    }
    finals.push(']');
    let mut partials = String::from("[");
    for (i, p) in run.partials.iter().enumerate() {
        if i > 0 {
            partials.push_str(", ");
        }
        partials.push_str(&format!(
            "{{\"key\": {}, \"window\": {}, \"refine_seq\": {}, \"value\": {}, \"coverage\": {:.6}, \"last_write_seq\": {}, \"staleness\": {}, \"at_ms\": {}, \"wall_ms\": {:.3}, \"final\": {}}}",
            p.key,
            p.window,
            p.refine_seq,
            p.value,
            p.coverage,
            p.last_write_seq,
            p.staleness,
            p.at_ms,
            p.wall_ms,
            p.is_final
        ));
    }
    partials.push(']');
    format!(
        "{{\n  \"schema\": \"{QUERY_SCHEMA}\",\n  \"spec\": \"{}\",\n  \"config\": {{\"stream\": \"{}\", \"facts\": {}, \"keys\": {}, \"seed\": {}, \"transport\": \"{}\", \"tree\": \"{}\", \"policy\": \"{}\"}},\n  \"oracle_match\": {},\n  \"coverage_monotone\": {},\n  \"refine_seq_monotone\": {},\n  \"min_partials_per_key\": {},\n  \"refinement\": {{\"elapsed_ms\": {:.3}, \"first_partial_p50_ms\": {:.3}, \"first_partial_p99_ms\": {:.3}, \"t95_coverage_ms\": {}, \"partials_total\": {}, \"pushes_rx\": {}}},\n  \"finals\": {},\n  \"partials\": {}\n}}",
        run.spec,
        meta.stream,
        facts.len(),
        meta.keys,
        meta.seed,
        meta.transport,
        meta.tree,
        meta.policy,
        run.matches_oracle(facts),
        run.coverage_monotone(),
        run.refine_seq_monotone(),
        run.min_partials_per_key(),
        run.stats.elapsed_ms,
        run.stats.first_partial_p50_ms,
        run.stats.first_partial_p99_ms,
        opt_ms(run.stats.t95_coverage_ms),
        run.stats.partials_total,
        run.stats.pushes_rx,
        finals,
        partials,
    )
}
