//! The continuous-query engine: progressive refinement over a forest.
//!
//! ## Execution model
//!
//! The fact stream is pre-generated, so its total length is known up
//! front and **coverage** — the fraction of facts whose writes the
//! cluster has acknowledged — is monotone by construction. Each group
//! key owns one lazily-instantiated forest tree (`tree = key + 1`;
//! tree 0 stays the sim-parity built-in), multiplexed over the same
//! nodes and connections as everything else.
//!
//! Facts are **sharded** round-robin across nodes. The engine keeps an
//! absolute per-`(key, shard)` accumulator and writes the accumulator
//! value — not the delta — on every fact. Absolute writes make the
//! protocol self-healing: forest values are volatile (not WAL-logged),
//! so after a crash or `kill9` the engine simply re-writes every
//! accumulator during [`run`]'s settlement phase and the tree recovers
//! exactly.
//!
//! ## Refinement sources
//!
//! Partials are emitted from three places, all stamped with an
//! engine-assigned per-key `refine_seq`, the ack high-water mark, the
//! outstanding-write staleness bound, and coverage:
//!
//! 1. **Pushed refinements** — the engine subscribes to each key's tree
//!    at node 0; the node pushes `TAG_PARTIAL` whenever the tree's
//!    aggregate changes (plus one priming push at subscribe time).
//! 2. **Window finals** — a tumbling window is finalized when the
//!    group's first fact of a later window arrives: outstanding writes
//!    for the group are drained, a synchronous combine reads the exact
//!    window value, and the group's shards reset to identity.
//! 3. **Settlement** — after the stream ends: one pre-final snapshot
//!    per key, then heal (re-write all accumulators), drain, quiesce,
//!    and one exact final combine per key.
//!
//! Every key therefore emits at least three partials (priming push,
//! pre-final snapshot, final), and finals equal the sequential oracle
//! exactly ([`QueryRun::matches_oracle`]).

use crate::oracle::{oracle_finals, Final};
use crate::spec::{QuerySpec, WindowSpec};
use oat_core::agg::AggOp;
use oat_core::tree::NodeId;
use oat_net::{Cluster, ClusterClient, Response};
use oat_workloads::facts::Fact;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::io;
use std::time::{Duration, Instant};

/// One emitted partial: a progressively refined answer plus the
/// freshness metadata needed to interpret it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialRecord {
    /// Group key (`0` when the query has no `group by`).
    pub key: u32,
    /// Window index the value refers to (`at_ms / T` for tumbling,
    /// else `0`).
    pub window: u64,
    /// Engine-assigned per-key refinement sequence, strictly
    /// increasing.
    pub refine_seq: u64,
    /// The current aggregate as reported by the cluster.
    pub value: i64,
    /// Fraction of the total fact stream already acknowledged —
    /// monotone across the whole emission sequence.
    pub coverage: f64,
    /// Count of acknowledged fact writes when this partial was emitted
    /// (the "last applied write" high-water mark).
    pub last_write_seq: u64,
    /// Staleness bound: fact writes submitted but not yet acknowledged.
    pub staleness: u64,
    /// Fact-stream time high-water mark (ms) at emission.
    pub at_ms: u64,
    /// Wall-clock ms since the query started.
    pub wall_ms: f64,
    /// True for exact finals (window finalization or settlement).
    pub is_final: bool,
}

/// Refinement-latency statistics for one query run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineStats {
    /// Total wall-clock ms from first fact to last final.
    pub elapsed_ms: f64,
    /// p50 across keys of the time to each key's first partial (ms).
    pub first_partial_p50_ms: f64,
    /// p99 across keys of the time to each key's first partial (ms).
    pub first_partial_p99_ms: f64,
    /// Wall-clock ms until coverage first reached 0.95 (`None` when
    /// the stream was empty or coverage jumped straight past it before
    /// any ack was observed).
    pub t95_coverage_ms: Option<f64>,
    /// Partials emitted in total (including finals).
    pub partials_total: u64,
    /// `TAG_PARTIAL` push frames received from the cluster.
    pub pushes_rx: u64,
}

/// The full result of one query run.
#[derive(Clone, Debug)]
pub struct QueryRun {
    /// The spec the run executed.
    pub spec: QuerySpec,
    /// Every emitted partial, in emission order.
    pub partials: Vec<PartialRecord>,
    /// Exact finals, one per `(key, window)` that saw facts.
    pub finals: Vec<Final>,
    /// Refinement-latency statistics.
    pub stats: RefineStats,
}

impl QueryRun {
    /// Coverage never decreases across the emission sequence.
    pub fn coverage_monotone(&self) -> bool {
        self.partials
            .windows(2)
            .all(|w| w[0].coverage <= w[1].coverage + 1e-12)
    }

    /// Per-key refinement sequences are strictly increasing.
    pub fn refine_seq_monotone(&self) -> bool {
        let mut last: HashMap<u32, u64> = HashMap::new();
        self.partials.iter().all(|p| {
            let prev = last.insert(p.key, p.refine_seq);
            prev.is_none_or(|s| p.refine_seq > s)
        })
    }

    /// Minimum number of partials any key emitted (0 when no facts).
    pub fn min_partials_per_key(&self) -> u64 {
        let mut per_key: HashMap<u32, u64> = HashMap::new();
        for p in &self.partials {
            *per_key.entry(p.key).or_insert(0) += 1;
        }
        per_key.values().copied().min().unwrap_or(0)
    }

    /// Engine finals equal the sequential oracle exactly.
    pub fn matches_oracle(&self, facts: &[Fact]) -> bool {
        let want = oracle_finals(&self.spec, facts);
        let mut got = self.finals.clone();
        got.sort_by_key(|f| (f.key, f.window));
        got == want
    }
}

/// What an unacknowledged write was for, so acks can settle coverage
/// and the per-key staleness bound.
#[derive(Clone, Copy)]
struct PendTag {
    key: u32,
    /// True for the one write that carries a fact's contribution;
    /// false for refolds, window resets, and heal re-writes.
    is_fact: bool,
}

struct Driver<'a> {
    spec: &'a QuerySpec,
    n: usize,
    total: u64,
    start: Instant,
    sub: ClusterClient<i64>,
    writers: Vec<ClusterClient<i64>>,
    pending: Vec<HashMap<u64, PendTag>>,
    outstanding_by_key: HashMap<u32, u64>,
    /// Absolute per-(key, shard) accumulators — the engine-side truth
    /// the forest is healed from.
    accs: BTreeMap<(u32, usize), i64>,
    /// Shards written in the current window, per key (tumbling reset
    /// set).
    touched: HashMap<u32, BTreeSet<usize>>,
    /// Sliding-window rings: the last N `(mapped value, shard)` per
    /// key.
    rings: HashMap<u32, VecDeque<(i64, usize)>>,
    cur_window: HashMap<u32, u64>,
    key_count: BTreeMap<u32, u64>,
    subscribed: HashSet<u32>,
    submitted: u64,
    acked: u64,
    at_hw: u64,
    refine_seq: HashMap<u32, u64>,
    t95_ms: Option<f64>,
    first_partial_ms: BTreeMap<u32, f64>,
    pushes_rx: u64,
    partials: Vec<PartialRecord>,
    finals: Vec<Final>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Per-read timeout armed on every engine connection: under injected
/// faults (kill9 severing a node) the retry policy redials and re-sends
/// rather than blocking forever.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(500);
const CLIENT_RETRIES: u32 = 120;

impl<'a> Driver<'a> {
    fn new<A>(cluster: &Cluster<A>, spec: &'a QuerySpec, total: usize) -> io::Result<Driver<'a>>
    where
        A: AggOp<Value = i64>,
    {
        let n = cluster.tree().len();
        let mut sub = cluster.client(NodeId(0))?;
        sub.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)?;
        let mut writers = Vec::with_capacity(n);
        for i in 0..n {
            let mut c = cluster.client(NodeId(i as u32))?;
            c.set_timeout(Some(CLIENT_TIMEOUT), CLIENT_RETRIES)?;
            writers.push(c);
        }
        Ok(Driver {
            spec,
            n,
            total: total as u64,
            start: Instant::now(),
            sub,
            writers,
            pending: (0..n).map(|_| HashMap::new()).collect(),
            outstanding_by_key: HashMap::new(),
            accs: BTreeMap::new(),
            touched: HashMap::new(),
            rings: HashMap::new(),
            cur_window: HashMap::new(),
            key_count: BTreeMap::new(),
            subscribed: HashSet::new(),
            submitted: 0,
            acked: 0,
            at_hw: 0,
            refine_seq: HashMap::new(),
            t95_ms: None,
            first_partial_ms: BTreeMap::new(),
            pushes_rx: 0,
            partials: Vec::new(),
            finals: Vec::new(),
        })
    }

    fn tree_of(key: u32) -> u32 {
        key + 1
    }

    fn emit(&mut self, key: u32, window: u64, value: i64, is_final: bool) {
        let seq = {
            let e = self.refine_seq.entry(key).or_insert(0);
            *e += 1;
            *e
        };
        let wall = ms(self.start.elapsed());
        self.first_partial_ms.entry(key).or_insert(wall);
        let coverage = if self.total == 0 {
            1.0
        } else {
            self.acked as f64 / self.total as f64
        };
        oat_obs::trace_event!(oat_obs::EventKind::QueryEmit, key, window as u32, seq);
        self.partials.push(PartialRecord {
            key,
            window,
            refine_seq: seq,
            value,
            coverage,
            last_write_seq: self.acked,
            staleness: self.submitted - self.acked,
            at_ms: self.at_hw,
            wall_ms: wall,
            is_final,
        });
    }

    fn record_ack(&mut self, tag: PendTag) {
        if let Some(c) = self.outstanding_by_key.get_mut(&tag.key) {
            *c = c.saturating_sub(1);
        }
        if tag.is_fact {
            self.acked += 1;
            if self.t95_ms.is_none()
                && self.total > 0
                && self.acked as f64 / self.total as f64 >= 0.95
            {
                self.t95_ms = Some(ms(self.start.elapsed()));
            }
        }
    }

    /// Blocks until writer `i` has at most `down_to` unacked writes.
    fn drain_writer(&mut self, i: usize, down_to: usize) -> io::Result<()> {
        while self.pending[i].len() > down_to {
            let (id, _resp) = self.writers[i].next_response()?;
            if let Some(tag) = self.pending[i].remove(&id) {
                self.record_ack(tag);
            }
        }
        Ok(())
    }

    /// Blocks until no writer holds an unacked write touching `key`.
    fn drain_key(&mut self, key: u32) -> io::Result<()> {
        for i in 0..self.n {
            while self.pending[i].values().any(|t| t.key == key) {
                let (id, _resp) = self.writers[i].next_response()?;
                if let Some(tag) = self.pending[i].remove(&id) {
                    self.record_ack(tag);
                }
            }
        }
        Ok(())
    }

    /// Submits one absolute-value write on writer `shard` and applies
    /// light backpressure so unacked writes stay bounded.
    fn submit(&mut self, shard: usize, key: u32, value: i64, is_fact: bool) -> io::Result<()> {
        let id = self.writers[shard].submit_write_tree(Self::tree_of(key), value)?;
        self.writers[shard].flush_retry()?;
        self.pending[shard].insert(id, PendTag { key, is_fact });
        *self.outstanding_by_key.entry(key).or_insert(0) += 1;
        if is_fact {
            self.submitted += 1;
        }
        // Keep at most one write in flight per writer: acks settle
        // promptly (coverage tracks the stream closely) while writes
        // still pipeline across the round-robin shards.
        if self.pending[shard].len() >= 2 {
            self.drain_writer(shard, 1)?;
        }
        Ok(())
    }

    /// Drains pushed refinements, emitting one partial per push.
    fn poll_sub(&mut self, wait: Duration) -> io::Result<()> {
        while let Some((_sid, resp)) = self.sub.try_next_response(wait)? {
            if let Response::Partial { tree, value, .. } = resp {
                self.pushes_rx += 1;
                let key = tree - 1;
                let w = self.cur_window.get(&key).copied().unwrap_or(0);
                self.emit(key, w, value, false);
            }
        }
        Ok(())
    }

    /// Finalizes tumbling window `w` of `key` exactly: drain the key's
    /// outstanding writes, read the window value synchronously, emit it
    /// as a final, and reset the key's shards to identity for the next
    /// window.
    fn finalize_window(&mut self, key: u32, w: u64) -> io::Result<()> {
        self.drain_key(key)?;
        let v = self.sub.combine_tree(Self::tree_of(key))?;
        self.emit(key, w, v, true);
        self.finals.push(Final {
            key,
            window: w,
            value: v,
        });
        let ident = self.spec.op.identity();
        let shards: Vec<usize> = self
            .touched
            .remove(&key)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for s in shards {
            self.accs.insert((key, s), ident);
            self.submit(s, key, ident, false)?;
        }
        Ok(())
    }

    fn process_fact(&mut self, f: &Fact) -> io::Result<()> {
        let key = if self.spec.group_by_key { f.key } else { 0 };
        if let WindowSpec::Tumbling(width) = self.spec.window {
            let w = f.at_ms / width;
            let cur = *self.cur_window.entry(key).or_insert(w);
            if w > cur {
                self.finalize_window(key, cur)?;
                self.cur_window.insert(key, w);
            }
        }
        if self.subscribed.insert(key) {
            self.sub.subscribe(Self::tree_of(key))?;
        }
        let cnt = self.key_count.entry(key).or_insert(0);
        let shard = ((u64::from(key) + *cnt) % self.n as u64) as usize;
        *cnt += 1;
        let op = self.spec.op;
        let mv = op.map_val(f.val);
        let mut retired: Option<(usize, i64)> = None;
        match self.spec.window {
            WindowSpec::LastN(cap) => {
                let ring = self.rings.entry(key).or_default();
                ring.push_back((mv, shard));
                if ring.len() > cap {
                    // Retire-on-expiry: refold every shard the eviction
                    // touched from the surviving ring contents.
                    let (_, evicted_shard) = ring.pop_front().expect("ring non-empty");
                    let refold = |s: usize, ring: &VecDeque<(i64, usize)>| {
                        ring.iter()
                            .filter(|&&(_, rs)| rs == s)
                            .fold(op.identity(), |a, &(v, _)| op.combine(a, v))
                    };
                    let nv = refold(shard, ring);
                    if evicted_shard != shard {
                        let ev = refold(evicted_shard, ring);
                        retired = Some((evicted_shard, ev));
                    }
                    self.accs.insert((key, shard), nv);
                    if let Some((s, v)) = retired {
                        self.accs.insert((key, s), v);
                    }
                } else {
                    let e = self
                        .accs
                        .entry((key, shard))
                        .or_insert_with(|| op.identity());
                    *e = op.combine(*e, mv);
                }
            }
            _ => {
                let e = self
                    .accs
                    .entry((key, shard))
                    .or_insert_with(|| op.identity());
                *e = op.combine(*e, mv);
            }
        }
        self.at_hw = f.at_ms;
        let marks = self.touched.entry(key).or_default();
        marks.insert(shard);
        if let Some((s, v)) = retired {
            marks.insert(s);
            self.submit(s, key, v, false)?;
        }
        let v = self.accs[&(key, shard)];
        self.submit(shard, key, v, true)?;
        // One bounded poll per fact: collect pushed refinements as they
        // arrive and pace the stream.
        self.poll_sub(Duration::from_millis(1))
    }
}

/// Runs `spec` over `facts` against `cluster`, blocking until the
/// stream is fully applied and the finals are exact.
///
/// The cluster's operator must implement the same monoid over `i64` as
/// `spec.op` (`sum`/`count` → `SumI64`, `min` → `MinI64`, `max` →
/// `MaxI64`); the engine folds its shard accumulators with `spec.op`
/// and the nodes fold shard values with the cluster's operator, so a
/// mismatch silently corrupts finals.
pub fn run<A>(cluster: &Cluster<A>, spec: &QuerySpec, facts: &[Fact]) -> io::Result<QueryRun>
where
    A: AggOp<Value = i64>,
{
    let mut d = Driver::new(cluster, spec, facts.len())?;
    for f in facts {
        d.process_fact(f)?;
    }

    // ---- Settlement ------------------------------------------------
    let keys: Vec<u32> = d.key_count.keys().copied().collect();
    // Pre-final snapshots: one last in-flight refinement per key before
    // the heal, so consumers see where the answer stood at stream end.
    for &key in &keys {
        let v = d.sub.combine_tree(Driver::tree_of(key))?;
        let w = d.cur_window.get(&key).copied().unwrap_or(0);
        d.emit(key, w, v, false);
    }
    // Heal: forest values are volatile, so a crash or kill9 during the
    // stream may have zeroed node-local state. Re-writing every
    // absolute accumulator restores it exactly; with no faults these
    // writes are no-op overwrites.
    let heal: Vec<((u32, usize), i64)> = d.accs.iter().map(|(&k, &v)| (k, v)).collect();
    for ((key, shard), v) in heal {
        d.submit(shard, key, v, false)?;
    }
    for i in 0..d.n {
        d.drain_writer(i, 0)?;
    }
    cluster.quiesce();
    // Late pushes (including any parked during sync combines).
    d.poll_sub(Duration::from_millis(5))?;
    // Exact finals: every fact write is acked and the cluster is quiet,
    // so the synchronous combine equals the sequential oracle.
    for &key in &keys {
        let v = d.sub.combine_tree(Driver::tree_of(key))?;
        let w = d.cur_window.get(&key).copied().unwrap_or(0);
        d.emit(key, w, v, true);
        d.finals.push(Final {
            key,
            window: w,
            value: v,
        });
    }

    let elapsed_ms = ms(d.start.elapsed());
    let mut firsts: Vec<f64> = d.first_partial_ms.values().copied().collect();
    firsts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let pct = |q: f64| -> f64 {
        if firsts.is_empty() {
            0.0
        } else {
            firsts[((firsts.len() - 1) as f64 * q).round() as usize]
        }
    };
    let stats = RefineStats {
        elapsed_ms,
        first_partial_p50_ms: pct(0.50),
        first_partial_p99_ms: pct(0.99),
        t95_coverage_ms: d.t95_ms,
        partials_total: d.partials.len() as u64,
        pushes_rx: d.pushes_rx,
    };
    Ok(QueryRun {
        spec: spec.clone(),
        partials: d.partials,
        finals: d.finals,
        stats,
    })
}
