//! End-to-end engine properties over the in-process ring transport:
//! partial sequences are monotone in coverage, refinement sequences
//! strictly increase per key, and finals converge to the sequential
//! oracle exactly — per key and per window, across operators, window
//! modes, and seeds.

use oat_core::agg::{MaxI64, MinI64, SumI64};
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_net::{Cluster, NetConfig, TransportKind};
use oat_query::{oracle_finals, run, OpKind, QuerySpec};
use oat_workloads::facts::{phase_facts, uniform_facts, zipf_facts, Fact};

fn ring_cfg() -> NetConfig {
    NetConfig {
        transport: TransportKind::Ring,
        ..NetConfig::default()
    }
}

fn check(spec: &QuerySpec, facts: &[Fact], tree: &Tree) {
    let cfg = ring_cfg();
    let run = match spec.op {
        OpKind::Sum | OpKind::Count => {
            let c = Cluster::spawn_with(tree, SumI64, &RwwSpec, false, Default::default(), cfg)
                .unwrap();
            run(&c, spec, facts).unwrap()
        }
        OpKind::Min => {
            let c = Cluster::spawn_with(tree, MinI64, &RwwSpec, false, Default::default(), cfg)
                .unwrap();
            run(&c, spec, facts).unwrap()
        }
        OpKind::Max => {
            let c = Cluster::spawn_with(tree, MaxI64, &RwwSpec, false, Default::default(), cfg)
                .unwrap();
            run(&c, spec, facts).unwrap()
        }
    };
    assert!(run.coverage_monotone(), "{spec}: coverage regressed");
    assert!(run.refine_seq_monotone(), "{spec}: refine_seq regressed");
    assert!(
        run.matches_oracle(facts),
        "{spec}: finals {:?} != oracle {:?}",
        run.finals,
        oracle_finals(spec, facts)
    );
    if !facts.is_empty() {
        assert!(
            run.min_partials_per_key() >= 3,
            "{spec}: a key refined fewer than 3 times"
        );
        let last = run.partials.last().unwrap();
        assert!(
            (last.coverage - 1.0).abs() < 1e-12,
            "{spec}: final coverage"
        );
        assert_eq!(last.staleness, 0, "{spec}: final staleness");
    }
}

fn spec(op: OpKind, group: bool, window: &str) -> QuerySpec {
    let mut s = op.name().to_string();
    if group {
        s.push_str(" group by key");
    }
    if !window.is_empty() {
        s.push_str(" window ");
        s.push_str(window);
    }
    s.parse().unwrap()
}

#[test]
fn sum_group_by_converges_to_oracle() {
    let tree = Tree::kary(5, 2);
    let facts = zipf_facts(120, 4, 1.2, 2, 11);
    check(&spec(OpKind::Sum, true, ""), &facts, &tree);
}

#[test]
fn count_without_group_by() {
    let tree = Tree::path(4);
    let facts = uniform_facts(80, 6, 2, 3);
    check(&spec(OpKind::Count, false, ""), &facts, &tree);
}

#[test]
fn min_and_max_group_by() {
    let tree = Tree::star(4);
    let facts = uniform_facts(90, 3, 2, 5);
    check(&spec(OpKind::Min, true, ""), &facts, &tree);
    check(&spec(OpKind::Max, true, ""), &facts, &tree);
}

#[test]
fn tumbling_windows_finalize_exactly() {
    let tree = Tree::kary(5, 2);
    // 2ms gap, 40ms windows: ~20 facts per window, several windows.
    let facts = zipf_facts(150, 4, 1.2, 2, 17);
    check(&spec(OpKind::Sum, true, "tumbling(40ms)"), &facts, &tree);
}

#[test]
fn sliding_window_retires_expired_facts() {
    let tree = Tree::path(4);
    let facts = uniform_facts(100, 3, 1, 23);
    check(&spec(OpKind::Sum, true, "last-10"), &facts, &tree);
    check(&spec(OpKind::Max, true, "last-7"), &facts, &tree);
}

#[test]
fn empty_stream_is_a_clean_noop() {
    let tree = Tree::path(3);
    check(&spec(OpKind::Sum, true, ""), &[], &tree);
}

#[test]
fn seeded_sweep_converges_across_modes() {
    // A compact seeded sweep standing in for a full proptest harness:
    // stream kind x window mode x seed, all on one small tree.
    let tree = Tree::kary(4, 2);
    for seed in [1u64, 2, 3] {
        for (kind, facts) in [
            ("uniform", uniform_facts(60, 3, 2, seed)),
            ("zipf", zipf_facts(60, 3, 1.3, 2, seed)),
            ("phases", phase_facts(60, 3, 2, seed)),
        ] {
            for window in ["", "last-8", "tumbling(30ms)"] {
                let s = spec(OpKind::Sum, true, window);
                eprintln!("sweep: {kind} seed={seed} window={window:?}");
                check(&s, &facts, &tree);
            }
        }
    }
}
