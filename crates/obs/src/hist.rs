//! Log-bucketed, mergeable latency histograms (HDR-style).
//!
//! Values (typically nanoseconds) are bucketed by their binary exponent
//! with [`SUB_BITS`] bits of mantissa resolution: values below
//! 2^[`SUB_BITS`] are recorded exactly, and above that each bucket spans a
//! `2^-SUB_BITS` = 1/64 slice of its octave. Reported quantiles use the
//! bucket midpoint, so the relative error is bounded by
//! `1 / 2^(SUB_BITS+1)` < 1/64 ≈ 1.6% (property-tested).
//!
//! Histograms are plain arrays of counters: `merge` is element-wise
//! addition, which is associative and commutative — per-thread histograms
//! recorded concurrently can be folded together in any order (used by the
//! bench harness and `oat top`).

/// Mantissa bits per octave; 6 ⇒ 64 sub-buckets, ≤ 1/64 relative error.
pub const SUB_BITS: u32 = 6;

const SUB: u64 = 1 << SUB_BITS; // 64: exact range and per-octave buckets
const OCTAVES: usize = (64 - SUB_BITS as usize) + 1; // exponents 6..=63
const BUCKETS: usize = SUB as usize + (OCTAVES - 1) * SUB as usize;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let mantissa = (v >> (e - SUB_BITS)) & (SUB - 1);
        SUB as usize + ((e - SUB_BITS) as usize) * SUB as usize + mantissa as usize
    }
}

/// Midpoint of the bucket, the value reported for samples in it.
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let rel = idx - SUB as usize;
        let e = SUB_BITS + (rel / SUB as usize) as u32;
        let mantissa = (rel % SUB as usize) as u64;
        let low = (1u64 << e) | (mantissa << (e - SUB_BITS));
        let width = 1u64 << (e - SUB_BITS);
        low.saturating_add(width / 2)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise sum with `other` (associative and commutative).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (exact); `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact); `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact); `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]` (`0.5` = median), with relative
    /// error ≤ 1/64. Quantiles at the extremes snap to the exact
    /// min/max. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `quantile`, scaled to microseconds for reporting (samples are
    /// nanoseconds by convention).
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.mean(), 31.5);
    }

    #[test]
    fn extreme_magnitudes_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        let q = h.quantile(0.99);
        assert!(q.abs_diff(u64::MAX) <= u64::MAX / 64, "q={q} near max");
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_value_lies_within_its_bucket() {
        for v in [1u64, 63, 64, 65, 1000, 1 << 20, u64::MAX / 3] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            assert_eq!(bucket_index(rep), idx, "midpoint of {v}'s bucket stays put");
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn quantile_error_is_bounded(
            samples in proptest::collection::vec(0u64..1_000_000_000, 1..400),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let mut h = LogHistogram::new();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &s in &samples {
                h.record(s);
            }
            for q in qs {
                let exact = exact_quantile(&sorted, q);
                let approx = h.quantile(q);
                // ≤ 1/64 relative error (plus 1 for integer rounding).
                let bound = exact / 64 + 1;
                prop_assert!(
                    approx.abs_diff(exact) <= bound,
                    "q={q}: approx {approx} vs exact {exact} (bound {bound})"
                );
            }
        }

        #[test]
        fn merge_is_associative_and_order_free(
            xs in proptest::collection::vec(0u64..1_000_000_000, 0..100),
            ys in proptest::collection::vec(0u64..1_000_000_000, 0..100),
            zs in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        ) {
            let hist_of = |vals: &[u64]| {
                let mut h = LogHistogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (hx, hy, hz) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

            // (x ⊕ y) ⊕ z
            let mut left = hx.clone();
            left.merge(&hy);
            left.merge(&hz);
            // x ⊕ (y ⊕ z)
            let mut yz = hy.clone();
            yz.merge(&hz);
            let mut right = hx.clone();
            right.merge(&yz);
            // one histogram over the concatenation
            let mut all = xs.clone();
            all.extend(&ys);
            all.extend(&zs);
            let direct = hist_of(&all);

            for h in [&right, &direct] {
                prop_assert_eq!(left.count(), h.count());
                prop_assert_eq!(left.min(), h.min());
                prop_assert_eq!(left.max(), h.max());
                prop_assert_eq!(&*left.counts, &*h.counts);
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(left.quantile(q), h.quantile(q));
                }
            }
        }
    }
}
