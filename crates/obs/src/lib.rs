//! # oat-obs
//!
//! The observability substrate shared by the simulator, the TCP runtime,
//! and the bench harness:
//!
//! * [`event`] — the fixed-size [`event::Event`] record and its taxonomy
//!   ([`event::EventKind`], grouped into coarse categories for filtering).
//! * [`ring`] — per-thread lock-free ring buffers behind a process-global
//!   sink, with a constant-cost fast path when tracing is disabled (one
//!   relaxed atomic load). See the [`trace_event!`] / [`trace_span!`]
//!   macros.
//! * [`hist`] — log-bucketed, mergeable latency histograms (HDR-style)
//!   with a ≤ 1/64 relative error bound on reported quantiles.
//! * [`export`] — the stable `oat-trace-v1` JSONL schema and the Chrome
//!   `trace_event` JSON format (loadable in `chrome://tracing` /
//!   Perfetto).
//! * [`breakdown`] — matches client-side request events against node-side
//!   serve events and attributes each request's wall time to
//!   poll / queue / dispatch / wire phases.
//!
//! The crate has no dependencies and performs no allocation on the event
//! fast path; everything heavier (sorting, matching, JSON) happens at
//! drain/export time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod event;
pub mod export;
pub mod hist;
pub mod ring;

pub use breakdown::{
    phase_breakdown, wire_latency, wire_latency_by_edge, PhaseBreakdown, WireLatency,
};
pub use event::{Event, EventKind};
pub use export::{to_chrome, to_jsonl};
pub use hist::LogHistogram;
pub use ring::{
    disable, drain, emit, enabled, install, now_ns, span, Trace, DEFAULT_RING_CAPACITY,
};

/// Emits one instantaneous trace event when the sink is enabled.
///
/// Expands to a single relaxed atomic load plus a branch when tracing is
/// off; the argument expressions are not evaluated in that case.
#[macro_export]
macro_rules! trace_event {
    ($kind:expr, $a:expr, $b:expr, $c:expr) => {
        if $crate::enabled() {
            $crate::emit($kind, 0, $a, $b, $c);
        }
    };
}

/// Closes a span opened with [`now_ns`] and emits it when enabled.
///
/// `$t0` is the value returned by [`now_ns`] at span start (`0` when the
/// sink was off, in which case nothing is emitted — spans never straddle
/// an enable/disable edge).
#[macro_export]
macro_rules! trace_span {
    ($kind:expr, $t0:expr, $a:expr, $b:expr, $c:expr) => {
        if $t0 != 0 && $crate::enabled() {
            $crate::span($kind, $t0, $a, $b, $c);
        }
    };
}
