//! The fixed-size trace event record and its taxonomy.
//!
//! Every event is four machine words: a monotonic timestamp (nanoseconds
//! since sink installation), an optional span duration, a kind tag, the
//! emitting ring's id, and three kind-specific payload words `a`/`b`/`c`.
//! The per-kind meaning of the payload words is documented on
//! [`EventKind`] and mirrored in DESIGN.md §12; exporters emit them under
//! those generic names so the wire schema never changes when a kind is
//! added.

/// What happened. Grouped into coarse categories (see
/// [`EventKind::category`]) for filtering and for the CI trace smoke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Client submitted a request. `a`=node, `c`=req id.
    ReqStart = 1,
    /// Client received the matching response. `a`=node, `c`=req id,
    /// `dur`=measured latency.
    ReqEnd = 2,
    /// Node decoded a client request frame. `a`=node, `b`=client conn id,
    /// `c`=req id.
    ReqRecv = 3,
    /// Node ran the request handler. Span: `ts`=handler start,
    /// `dur`=handler time. `a`=node, `b`=client conn id, `c`=req id.
    ReqServe = 4,
    /// Node enqueued the response frame. `a`=node, `b`=client conn id,
    /// `c`=req id.
    RespTx = 5,
    /// A frame was queued for transmission. `a`=node, `b`=peer,
    /// `c`=`(link seq << 8) | frame tag` — the per-link sequence number
    /// lets a matching [`EventKind::FrameRx`] attribute per-edge wire
    /// latency (see `wire_latency`).
    FrameTx = 6,
    /// A frame was decoded off a connection (in sequence order; dups and
    /// go-back-N re-deliveries are dropped before this event). `a`=node,
    /// `b`=peer, `c`=`(link seq << 8) | frame tag`, matching the
    /// originating [`EventKind::FrameTx`].
    FrameRx = 7,
    /// This node granted a lease. `a`=granter, `b`=grantee.
    LeaseSet = 8,
    /// This node took a lease (accepted `flag=true`). `a`=holder,
    /// `b`=granter.
    LeaseTaken = 9,
    /// A lease was broken (released by the holder, or the grant was
    /// cleared by an incoming release). `a`=node, `b`=peer.
    LeaseBreak = 10,
    /// A grant was torn down involuntarily by the crash-recovery cascade.
    /// `a`=node, `b`=former grantee.
    LeaseRevoke = 11,
    /// Sequenced frames were re-sent. `a`=node, `b`=peer, `c`=frames.
    Retransmit = 12,
    /// A retransmission timer expired. `a`=node, `b`=peer.
    RtoExpire = 13,
    /// An edge connection was re-established. `a`=node, `b`=peer.
    Reconnect = 14,
    /// A stale-epoch response was discarded by the prober. `a`=node,
    /// `b`=peer, `c`=stale epoch.
    StaleDrop = 15,
    /// A node's automaton panicked / was killed. `a`=node.
    Crash = 16,
    /// A node's automaton was restarted. `a`=node, `c`=new epoch.
    Restart = 17,
    /// A reactor `poll(2)` call. Span: `ts`=entry, `dur`=blocked time.
    /// `a`=shard, `b`=ready descriptors.
    PollWake = 18,
    /// One reactor readiness-dispatch pass. Span. `a`=shard,
    /// `b`=descriptors handled.
    Dispatch = 19,
    /// The simulator delivered one message. `a`=from, `b`=to,
    /// `c`=message kind index (the MLAP engine reuses this with `c`=4
    /// for a flush edge child→parent).
    SimDeliver = 20,
    /// The simulator initiated a request. `a`=node, `c`=0 combine /
    /// 1 write / 2 MLAP request arrival.
    SimInitiate = 21,
    /// A WAL record was appended (`write(2)`, not yet necessarily
    /// synced). `a`=node, `b`=record type tag, `c`=framed bytes.
    WalAppend = 22,
    /// A WAL group-commit fsync completed. `a`=node, `c`=records in the
    /// batch.
    WalFsync = 23,
    /// A WAL recovery replay ran. `a`=node, `b`=torn bytes discarded,
    /// `c`=records replayed.
    WalRecover = 24,
    /// A continuous-query subscription was registered. `a`=node,
    /// `b`=client conn id, `c`=sub id.
    SubStart = 25,
    /// A node pushed a `TAG_PARTIAL` refinement. `a`=node, `b`=client
    /// conn id, `c`=per-tree refinement seq.
    PartialTx = 26,
    /// A client decoded a pushed partial. `a`=tree id, `c`=refinement
    /// seq.
    PartialRx = 27,
    /// The query engine emitted one refined partial to its consumer.
    /// `a`=group key, `b`=window index, `c`=engine refine seq.
    QueryEmit = 28,
}

impl EventKind {
    /// Every kind, for exhaustive iteration in tests and exporters.
    pub const ALL: [EventKind; 28] = [
        EventKind::ReqStart,
        EventKind::ReqEnd,
        EventKind::ReqRecv,
        EventKind::ReqServe,
        EventKind::RespTx,
        EventKind::FrameTx,
        EventKind::FrameRx,
        EventKind::LeaseSet,
        EventKind::LeaseTaken,
        EventKind::LeaseBreak,
        EventKind::LeaseRevoke,
        EventKind::Retransmit,
        EventKind::RtoExpire,
        EventKind::Reconnect,
        EventKind::StaleDrop,
        EventKind::Crash,
        EventKind::Restart,
        EventKind::PollWake,
        EventKind::Dispatch,
        EventKind::SimDeliver,
        EventKind::SimInitiate,
        EventKind::WalAppend,
        EventKind::WalFsync,
        EventKind::WalRecover,
        EventKind::SubStart,
        EventKind::PartialTx,
        EventKind::PartialRx,
        EventKind::QueryEmit,
    ];

    /// Decodes a kind tag byte; `None` for unknown tags.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v.wrapping_sub(1) as usize).copied()
    }

    /// Stable snake_case name, used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ReqStart => "req_start",
            EventKind::ReqEnd => "req_end",
            EventKind::ReqRecv => "req_recv",
            EventKind::ReqServe => "req_serve",
            EventKind::RespTx => "resp_tx",
            EventKind::FrameTx => "frame_tx",
            EventKind::FrameRx => "frame_rx",
            EventKind::LeaseSet => "lease_set",
            EventKind::LeaseTaken => "lease_taken",
            EventKind::LeaseBreak => "lease_break",
            EventKind::LeaseRevoke => "lease_revoke",
            EventKind::Retransmit => "retransmit",
            EventKind::RtoExpire => "rto_expire",
            EventKind::Reconnect => "reconnect",
            EventKind::StaleDrop => "stale_drop",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
            EventKind::PollWake => "poll_wake",
            EventKind::Dispatch => "dispatch",
            EventKind::SimDeliver => "sim_deliver",
            EventKind::SimInitiate => "sim_initiate",
            EventKind::WalAppend => "wal_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::WalRecover => "wal_recover",
            EventKind::SubStart => "sub_start",
            EventKind::PartialTx => "partial_tx",
            EventKind::PartialRx => "partial_rx",
            EventKind::QueryEmit => "query_emit",
        }
    }

    /// Coarse category: `request`, `frame`, `lease`, `fault`, `reactor`,
    /// `sim`, or `query`. The CI trace smoke requires at least one event
    /// of the first six categories in a recorded chaos workload (`query`
    /// events only appear when a continuous query is running).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::ReqStart
            | EventKind::ReqEnd
            | EventKind::ReqRecv
            | EventKind::ReqServe
            | EventKind::RespTx => "request",
            EventKind::FrameTx | EventKind::FrameRx => "frame",
            EventKind::LeaseSet
            | EventKind::LeaseTaken
            | EventKind::LeaseBreak
            | EventKind::LeaseRevoke => "lease",
            EventKind::Retransmit
            | EventKind::RtoExpire
            | EventKind::Reconnect
            | EventKind::StaleDrop
            | EventKind::Crash
            | EventKind::Restart
            | EventKind::WalAppend
            | EventKind::WalFsync
            | EventKind::WalRecover => "fault",
            EventKind::PollWake | EventKind::Dispatch => "reactor",
            EventKind::SimDeliver | EventKind::SimInitiate => "sim",
            EventKind::SubStart
            | EventKind::PartialTx
            | EventKind::PartialRx
            | EventKind::QueryEmit => "query",
        }
    }

    /// All category names, in display order.
    pub const CATEGORIES: [&'static str; 7] = [
        "request", "frame", "lease", "fault", "reactor", "sim", "query",
    ];

    /// Whether this kind carries a meaningful duration (rendered as a
    /// Chrome "complete" event rather than an instant).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::ReqServe | EventKind::ReqEnd | EventKind::PollWake | EventKind::Dispatch
        )
    }
}

/// One trace record. 32 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic nanoseconds since the sink was installed.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants; saturates at
    /// `u32::MAX` ≈ 4.3 s).
    pub dur_ns: u32,
    /// What happened.
    pub kind: EventKind,
    /// Id of the ring (≈ thread) that emitted the event.
    pub tid: u32,
    /// First payload word (see [`EventKind`]).
    pub a: u32,
    /// Second payload word.
    pub b: u32,
    /// Third payload word.
    pub c: u64,
}

impl Event {
    /// Packs into the four ring-slot words.
    pub(crate) fn pack(&self) -> [u64; 4] {
        [
            self.ts_ns,
            (u64::from(self.dur_ns) << 32) | u64::from(self.kind as u8),
            u64::from(self.a) | (u64::from(self.b) << 32),
            self.c,
        ]
    }

    /// Unpacks a ring slot; `None` when the kind tag is invalid (an
    /// unwritten or torn slot).
    pub(crate) fn unpack(w: [u64; 4], tid: u32) -> Option<Event> {
        let kind = EventKind::from_u8((w[1] & 0xFF) as u8)?;
        Some(Event {
            ts_ns: w[0],
            dur_ns: (w[1] >> 32) as u32,
            kind,
            tid,
            a: w[2] as u32,
            b: (w[2] >> 32) as u32,
            c: w[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_roundtrip_and_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
            assert!(EventKind::CATEGORIES.contains(&k.category()));
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(EventKind::ALL.len() as u8 + 1), None);
    }

    #[test]
    fn every_category_has_a_kind() {
        for cat in EventKind::CATEGORIES {
            assert!(
                EventKind::ALL.iter().any(|k| k.category() == cat),
                "empty category {cat}"
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Event {
            ts_ns: u64::MAX - 7,
            dur_ns: u32::MAX,
            kind: EventKind::SimInitiate,
            tid: 3,
            a: 0xDEAD_BEEF,
            b: 0xFEED_FACE,
            c: u64::MAX,
        };
        assert_eq!(Event::unpack(e.pack(), 3), Some(e));
        assert_eq!(Event::unpack([0; 4], 0), None);
    }
}
