//! Trace exporters: the stable `oat-trace-v1` JSONL schema and Chrome's
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! ## `oat-trace-v1`
//!
//! Line 1 is a header object:
//!
//! ```json
//! {"schema":"oat-trace-v1","events":N,"dropped":D,"rings":R}
//! ```
//!
//! followed by one object per event, ascending by timestamp:
//!
//! ```json
//! {"ts_ns":123,"kind":"frame_tx","cat":"frame","tid":0,"a":3,"b":1,"c":9,"dur_ns":0}
//! ```
//!
//! Field meanings per kind are documented on
//! [`crate::event::EventKind`]; the *shape* of a record never varies, so
//! consumers can parse every line with one schema. All output is plain
//! ASCII with deterministic key order.

use std::fmt::Write as _;

use crate::event::Event;
use crate::ring::Trace;

/// Renders the `oat-trace-v1` JSONL document.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 96);
    let _ = writeln!(
        out,
        "{{\"schema\":\"oat-trace-v1\",\"events\":{},\"dropped\":{},\"rings\":{}}}",
        trace.events.len(),
        trace.dropped,
        trace.rings
    );
    for e in &trace.events {
        let _ = writeln!(
            out,
            "{{\"ts_ns\":{},\"kind\":\"{}\",\"cat\":\"{}\",\"tid\":{},\"a\":{},\"b\":{},\"c\":{},\"dur_ns\":{}}}",
            e.ts_ns,
            e.kind.name(),
            e.kind.category(),
            e.tid,
            e.a,
            e.b,
            e.c,
            e.dur_ns
        );
    }
    out
}

/// Renders a Chrome `trace_event` JSON document (the "JSON object
/// format": a top-level object with a `traceEvents` array).
///
/// Span kinds become `ph:"X"` complete events with microsecond `ts`/`dur`
/// (Chrome's native unit); instants become `ph:"i"` with thread scope.
/// The payload words ride in `args`.
pub fn to_chrome(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        chrome_record(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

fn chrome_record(out: &mut String, e: &Event) {
    let ts_us = e.ts_ns as f64 / 1000.0;
    if e.kind.is_span() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"a\":{},\"b\":{},\"c\":{}}}}}",
            e.kind.name(),
            e.kind.category(),
            ts_us,
            f64::from(e.dur_ns) / 1000.0,
            e.tid,
            e.a,
            e.b,
            e.c
        );
    } else {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"a\":{},\"b\":{},\"c\":{}}}}}",
            e.kind.name(),
            e.kind.category(),
            ts_us,
            e.tid,
            e.a,
            e.b,
            e.c
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    /// A small deterministic trace exercising an instant, a span, and
    /// payload extremes.
    pub(crate) fn sample_trace() -> Trace {
        let ev = |ts_ns, dur_ns, kind, tid, a, b, c| Event {
            ts_ns,
            dur_ns,
            kind,
            tid,
            a,
            b,
            c,
        };
        Trace {
            events: vec![
                ev(1, 0, EventKind::ReqStart, 0, 3, 0, 1),
                ev(1500, 0, EventKind::FrameRx, 1, 3, 1, 9),
                ev(2000, 250_000, EventKind::ReqServe, 1, 3, 7, 1),
                ev(999_999_999, 0, EventKind::Restart, 2, u32::MAX, 0, u64::MAX),
            ],
            dropped: 5,
            rings: 3,
        }
    }

    #[test]
    fn jsonl_golden() {
        let got = to_jsonl(&sample_trace());
        let want = "\
{\"schema\":\"oat-trace-v1\",\"events\":4,\"dropped\":5,\"rings\":3}
{\"ts_ns\":1,\"kind\":\"req_start\",\"cat\":\"request\",\"tid\":0,\"a\":3,\"b\":0,\"c\":1,\"dur_ns\":0}
{\"ts_ns\":1500,\"kind\":\"frame_rx\",\"cat\":\"frame\",\"tid\":1,\"a\":3,\"b\":1,\"c\":9,\"dur_ns\":0}
{\"ts_ns\":2000,\"kind\":\"req_serve\",\"cat\":\"request\",\"tid\":1,\"a\":3,\"b\":7,\"c\":1,\"dur_ns\":250000}
{\"ts_ns\":999999999,\"kind\":\"restart\",\"cat\":\"fault\",\"tid\":2,\"a\":4294967295,\"b\":0,\"c\":18446744073709551615,\"dur_ns\":0}
";
        assert_eq!(got, want);
    }

    #[test]
    fn chrome_golden() {
        let got = to_chrome(&sample_trace());
        let want = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[
  {\"name\":\"req_start\",\"cat\":\"request\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0.001,\"pid\":1,\"tid\":0,\"args\":{\"a\":3,\"b\":0,\"c\":1}},
  {\"name\":\"frame_rx\",\"cat\":\"frame\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.500,\"pid\":1,\"tid\":1,\"args\":{\"a\":3,\"b\":1,\"c\":9}},
  {\"name\":\"req_serve\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":2.000,\"dur\":250.000,\"pid\":1,\"tid\":1,\"args\":{\"a\":3,\"b\":7,\"c\":1}},
  {\"name\":\"restart\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":999999.999,\"pid\":1,\"tid\":2,\"args\":{\"a\":4294967295,\"b\":0,\"c\":18446744073709551615}}
]}
";
        assert_eq!(got, want);
    }

    #[test]
    fn jsonl_lines_are_balanced_json_objects() {
        for line in to_jsonl(&sample_trace()).lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }
}
