//! Span-aware request phase breakdown.
//!
//! Matches the client-side request events (`req_start`/`req_end`) against
//! the node-side events for the same request (`req_recv`, `req_serve`,
//! `resp_tx`) and splits each request's wall time into four contiguous
//! phases:
//!
//! | phase      | interval                        | dominated by |
//! |------------|---------------------------------|--------------|
//! | `poll`     | submit → node decodes the frame | kernel + reactor `poll(2)` wake-up |
//! | `queue`    | decode → handler starts         | work queued behind other dispatches |
//! | `dispatch` | handler start → response queued | handler time, plus the probe fan-out wait for parked combines |
//! | `wire`     | response queued → client reads  | write queue flush + kernel + client wake-up |
//!
//! The phases partition `[submit, response]` exactly, so their sum equals
//! the client-observed latency by construction; the bench harness
//! cross-checks the breakdown's latency histogram against its own
//! independent `Instant`-based measurements.
//!
//! Client events are keyed by `(ring, node, req id)` and node events by
//! `(node, conn, req id)`; the conn id is not known client-side, so pairs
//! are matched greedily by requiring the node's decode timestamp to fall
//! inside the client's request window — unambiguous because a connection's
//! req ids are strictly increasing and at most one incarnation of a req id
//! is in flight per connection.

use std::collections::HashMap;

use crate::event::{Event, EventKind};
use crate::hist::LogHistogram;

/// Per-phase latency histograms over the matched requests (nanosecond
/// samples).
#[derive(Clone, Debug, Default)]
pub struct PhaseBreakdown {
    /// Client request pairs (`req_start` + `req_end`) observed.
    pub requests: u64,
    /// Pairs successfully matched to a full node-side record.
    pub matched: u64,
    /// Submit → node decode.
    pub poll: LogHistogram,
    /// Decode → handler start.
    pub queue: LogHistogram,
    /// Handler start → response queued.
    pub dispatch: LogHistogram,
    /// Response queued → client read.
    pub wire: LogHistogram,
    /// Client-observed wall time (equals the sum of the four phases per
    /// request).
    pub latency: LogHistogram,
}

impl PhaseBreakdown {
    /// Compact JSON object (used inside the bench report): per phase, the
    /// p50/p99 in microseconds, plus match accounting.
    pub fn to_json(&self) -> String {
        let hist = |h: &LogHistogram| {
            format!(
                "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                h.quantile_us(0.50),
                h.quantile_us(0.99)
            )
        };
        format!(
            "{{\"requests\": {}, \"matched\": {}, \"poll\": {}, \"queue\": {}, \"dispatch\": {}, \"wire\": {}, \"latency\": {}}}",
            self.requests,
            self.matched,
            hist(&self.poll),
            hist(&self.queue),
            hist(&self.dispatch),
            hist(&self.wire),
            hist(&self.latency)
        )
    }
}

#[derive(Default, Clone, Copy)]
struct NodeRecord {
    recv_ts: u64,
    serve_ts: u64,
    resp_ts: u64,
    consumed: bool,
}

/// Computes the phase breakdown from a drained event stream (ascending
/// timestamps not required; events are grouped by key).
pub fn phase_breakdown(events: &[Event]) -> PhaseBreakdown {
    // Node-side records keyed by (node, conn, req id).
    let mut node_side: HashMap<(u32, u32, u64), NodeRecord> = HashMap::new();
    // Client-side windows keyed by (ring, node, req id).
    let mut starts: HashMap<(u32, u32, u64), u64> = HashMap::new();
    let mut pairs: Vec<(u32, u64, u64, u64)> = Vec::new(); // (node, req, start, end)
    for e in events {
        match e.kind {
            EventKind::ReqRecv => {
                node_side.entry((e.a, e.b, e.c)).or_default().recv_ts = e.ts_ns;
            }
            EventKind::ReqServe => {
                node_side.entry((e.a, e.b, e.c)).or_default().serve_ts = e.ts_ns;
            }
            EventKind::RespTx => {
                node_side.entry((e.a, e.b, e.c)).or_default().resp_ts = e.ts_ns;
            }
            EventKind::ReqStart => {
                starts.insert((e.tid, e.a, e.c), e.ts_ns);
            }
            EventKind::ReqEnd => {
                if let Some(start) = starts.remove(&(e.tid, e.a, e.c)) {
                    pairs.push((e.a, e.c, start, e.ts_ns));
                }
            }
            _ => {}
        }
    }

    // Index complete node records by (node, req id); multiple connections
    // can reuse a req id, hence the Vec.
    let mut by_req: HashMap<(u32, u64), Vec<NodeRecord>> = HashMap::new();
    for ((node, _conn, req), rec) in node_side {
        if rec.recv_ts > 0 && rec.serve_ts >= rec.recv_ts && rec.resp_ts >= rec.serve_ts {
            by_req.entry((node, req)).or_default().push(rec);
        }
    }

    let mut out = PhaseBreakdown {
        requests: pairs.len() as u64,
        ..PhaseBreakdown::default()
    };
    pairs.sort_by_key(|&(_, _, start, _)| start);
    for (node, req, start, end) in pairs {
        out.latency.record(end.saturating_sub(start));
        let Some(candidates) = by_req.get_mut(&(node, req)) else {
            continue;
        };
        // Earliest unconsumed record whose decode falls in the window.
        let Some(rec) = candidates
            .iter_mut()
            .filter(|r| !r.consumed && r.recv_ts >= start && r.resp_ts <= end)
            .min_by_key(|r| r.recv_ts)
        else {
            continue;
        };
        rec.consumed = true;
        out.matched += 1;
        out.poll.record(rec.recv_ts - start);
        out.queue.record(rec.serve_ts - rec.recv_ts);
        out.dispatch.record(rec.resp_ts - rec.serve_ts);
        out.wire.record(end - rec.resp_ts);
    }
    out
}

/// Per-edge wire latency over the matched `frame_tx`/`frame_rx` pairs.
#[derive(Clone, Debug, Default)]
pub struct WireLatency {
    /// `frame_tx` events observed.
    pub tx: u64,
    /// Pairs matched to the corresponding `frame_rx` on the receiving
    /// node (frames lost, retransmitted out of window, or still in
    /// flight at drain time stay unmatched).
    pub matched: u64,
    /// Enqueue-at-sender → decode-at-receiver latency histogram
    /// (nanosecond samples).
    pub hist: LogHistogram,
}

/// Matches each `frame_tx` against the `frame_rx` for the same frame and
/// records the per-edge transit time. Both events carry
/// `c = (link seq << 8) | tag`, and the per-link sequence number is
/// unique per direction, so a tx at `(from, to, c)` pairs with exactly
/// the rx at `(to, from, c)`.
pub fn wire_latency(events: &[Event]) -> WireLatency {
    let mut tx: HashMap<(u32, u32, u64), u64> = HashMap::new();
    let mut out = WireLatency::default();
    for e in events {
        if e.kind == EventKind::FrameTx {
            out.tx += 1;
            tx.insert((e.a, e.b, e.c), e.ts_ns);
        }
    }
    for e in events {
        if e.kind == EventKind::FrameRx {
            if let Some(&sent) = tx.get(&(e.b, e.a, e.c)) {
                if e.ts_ns >= sent {
                    out.matched += 1;
                    out.hist.record(e.ts_ns - sent);
                }
            }
        }
    }
    out
}

/// [`wire_latency`], split per directed edge: one [`WireLatency`] per
/// `(from, to)` node pair that transmitted at least one frame, sorted
/// by edge for stable display.
pub fn wire_latency_by_edge(events: &[Event]) -> Vec<((u32, u32), WireLatency)> {
    let mut tx: HashMap<(u32, u32, u64), u64> = HashMap::new();
    let mut edges: HashMap<(u32, u32), WireLatency> = HashMap::new();
    for e in events {
        if e.kind == EventKind::FrameTx {
            tx.insert((e.a, e.b, e.c), e.ts_ns);
            edges.entry((e.a, e.b)).or_default().tx += 1;
        }
    }
    for e in events {
        if e.kind == EventKind::FrameRx {
            if let Some(&sent) = tx.get(&(e.b, e.a, e.c)) {
                if e.ts_ns >= sent {
                    // Attribute to the sending direction (b → a), the
                    // same keying as the per-edge message counters.
                    let w = edges.entry((e.b, e.a)).or_default();
                    w.matched += 1;
                    w.hist.record(e.ts_ns - sent);
                }
            }
        }
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_by_key(|&(k, _)| k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, tid: u32, ts_ns: u64, a: u32, b: u32, c: u64) -> Event {
        Event {
            ts_ns,
            dur_ns: 0,
            kind,
            tid,
            a,
            b,
            c,
        }
    }

    #[test]
    fn phases_partition_the_request_window() {
        let events = vec![
            ev(EventKind::ReqStart, 9, 100, 3, 0, 1),
            ev(EventKind::ReqRecv, 1, 140, 3, 5, 1),
            ev(EventKind::ReqServe, 1, 150, 3, 5, 1),
            ev(EventKind::RespTx, 1, 180, 3, 5, 1),
            ev(EventKind::ReqEnd, 9, 200, 3, 0, 1),
        ];
        let b = phase_breakdown(&events);
        assert_eq!((b.requests, b.matched), (1, 1));
        assert_eq!(b.poll.quantile(0.5), 40);
        assert_eq!(b.queue.quantile(0.5), 10);
        assert_eq!(b.dispatch.quantile(0.5), 30);
        assert_eq!(b.wire.quantile(0.5), 20);
        assert_eq!(b.latency.quantile(0.5), 100);
        let sum = b.poll.quantile(0.5)
            + b.queue.quantile(0.5)
            + b.dispatch.quantile(0.5)
            + b.wire.quantile(0.5);
        assert_eq!(sum, b.latency.quantile(0.5), "phases sum to latency");
    }

    #[test]
    fn same_req_id_on_two_connections_disambiguates_by_window() {
        // Two clients (rings 8 and 9, conns 1 and 2) both use req id 1 on
        // node 0, with disjoint windows.
        let events = vec![
            ev(EventKind::ReqStart, 8, 100, 0, 0, 1),
            ev(EventKind::ReqRecv, 0, 110, 0, 1, 1),
            ev(EventKind::ReqServe, 0, 115, 0, 1, 1),
            ev(EventKind::RespTx, 0, 120, 0, 1, 1),
            ev(EventKind::ReqEnd, 8, 130, 0, 0, 1),
            ev(EventKind::ReqStart, 9, 500, 0, 0, 1),
            ev(EventKind::ReqRecv, 0, 540, 0, 2, 1),
            ev(EventKind::ReqServe, 0, 541, 0, 2, 1),
            ev(EventKind::RespTx, 0, 542, 0, 2, 1),
            ev(EventKind::ReqEnd, 9, 600, 0, 0, 1),
        ];
        let b = phase_breakdown(&events);
        assert_eq!((b.requests, b.matched), (2, 2));
        assert_eq!(b.poll.quantile(0.0), 10);
        assert_eq!(b.poll.quantile(1.0), 40);
    }

    #[test]
    fn unmatched_requests_still_count_latency() {
        let events = vec![
            ev(EventKind::ReqStart, 9, 100, 3, 0, 1),
            ev(EventKind::ReqEnd, 9, 160, 3, 0, 1),
        ];
        let b = phase_breakdown(&events);
        assert_eq!((b.requests, b.matched), (1, 0));
        assert_eq!(b.latency.count(), 1);
        assert_eq!(b.poll.count(), 0);
        let json = b.to_json();
        assert!(json.contains("\"requests\": 1"));
        assert!(json.contains("\"latency\": {\"p50_us\":"));
    }

    #[test]
    fn wire_latency_matches_tx_rx_by_seq_and_edge() {
        const TAG: u64 = 3;
        let c = |seq: u64| (seq << 8) | TAG;
        let events = vec![
            // Frame seq 1 on edge 0→1: 50ns transit.
            ev(EventKind::FrameTx, 0, 100, 0, 1, c(1)),
            ev(EventKind::FrameRx, 1, 150, 1, 0, c(1)),
            // Frame seq 1 on the reverse edge 1→0 reuses the seq without
            // colliding: 70ns transit.
            ev(EventKind::FrameTx, 1, 200, 1, 0, c(1)),
            ev(EventKind::FrameRx, 0, 270, 0, 1, c(1)),
            // Frame seq 2 on 0→1 was lost: tx without rx.
            ev(EventKind::FrameTx, 0, 300, 0, 1, c(2)),
        ];
        let w = wire_latency(&events);
        assert_eq!((w.tx, w.matched), (3, 2));
        assert_eq!(w.hist.quantile(0.0), 50);
        assert_eq!(w.hist.quantile(1.0), 70);
    }

    #[test]
    fn wire_latency_by_edge_splits_directions() {
        const TAG: u64 = 3;
        let c = |seq: u64| (seq << 8) | TAG;
        let events = vec![
            ev(EventKind::FrameTx, 0, 100, 0, 1, c(1)),
            ev(EventKind::FrameRx, 1, 150, 1, 0, c(1)),
            ev(EventKind::FrameTx, 1, 200, 1, 0, c(1)),
            ev(EventKind::FrameRx, 0, 270, 0, 1, c(1)),
            // Lost frame: counted in tx for 0→1, never matched.
            ev(EventKind::FrameTx, 0, 300, 0, 1, c(2)),
        ];
        let edges = wire_latency_by_edge(&events);
        assert_eq!(edges.len(), 2);
        let (k0, w0) = &edges[0];
        assert_eq!(*k0, (0, 1));
        assert_eq!((w0.tx, w0.matched), (2, 1));
        assert_eq!(w0.hist.quantile(0.5), 50);
        let (k1, w1) = &edges[1];
        assert_eq!(*k1, (1, 0));
        assert_eq!((w1.tx, w1.matched), (1, 1));
        assert_eq!(w1.hist.quantile(0.5), 70);
    }

    #[test]
    fn wire_latency_ignores_unrelated_events() {
        let events = vec![
            ev(EventKind::ReqStart, 9, 100, 3, 0, 1),
            ev(EventKind::FrameRx, 1, 150, 1, 0, (1 << 8) | 3),
        ];
        let w = wire_latency(&events);
        assert_eq!((w.tx, w.matched), (0, 0));
        assert_eq!(w.hist.count(), 0);
    }
}
