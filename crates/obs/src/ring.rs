//! Per-thread lock-free event rings behind a process-global sink.
//!
//! ## Memory model
//!
//! Each emitting thread owns one single-producer [`Ring`]: a power-of-two
//! capacity of 4-word slots (each word an `AtomicU64`) plus a monotone
//! `head` counter of events ever written. An emit is four relaxed stores
//! followed by one release store of `head`; there are no CAS loops and no
//! locks. When the ring is full the oldest slot is overwritten and the
//! difference `head - capacity` is reported as the ring's *dropped*
//! count — tracing sheds load instead of applying backpressure.
//!
//! Slot storage is segmented (256 slots = 8 KiB per segment) and each
//! segment is allocated on first touch via a `OnceLock`, so a thread that
//! emits a handful of events pays for one small heap allocation, not the
//! full configured capacity. Segments are deliberately sized below the
//! malloc mmap threshold: with large (128 KiB) segments, dozens of client
//! threads each faulting in a fresh mmap'd segment mid-benchmark showed
//! up as ~35% throughput overhead on a single-core box; at 8 KiB the
//! same workload traces at parity with the untraced run. The
//! steady-state cost is one extra relaxed load per emit to fetch the
//! segment pointer.
//!
//! The global registry (a `Mutex<Vec<Arc<Ring>>>`) is touched only when a
//! thread emits its first event after an [`install`], so short-lived
//! client threads pay the lock once. Rings are kept alive by the registry
//! `Arc` after their thread exits, so [`drain`] observes events from
//! threads that have already finished.
//!
//! [`drain`] is intended for quiescent points (phase boundaries, after a
//! cluster shutdown). A drain that races a writer can observe a slot mid
//! overwrite; the kind-tag validation in `Event::unpack` discards slots
//! that are torn into an invalid tag, and the live `oat top` view reads
//! counters over the metrics protocol instead of the rings, so the
//! quiescent-drain discipline is easy to keep.
//!
//! ## Fast path when disabled
//!
//! [`enabled`] is a single relaxed load of a process-global flag; the
//! `trace_event!` macro does not evaluate its arguments when it returns
//! `false`. With the sink disabled the instrumentation overhead is one
//! predictable branch per site (measured ≈ 0% end to end, see DESIGN.md
//! §12).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Default per-thread ring capacity (events). 2^20 slots × 32 B = 32 MiB
/// when fully touched; segments allocate lazily, so the actual footprint
/// tracks the number of events a thread really emits.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Slots per lazily-allocated segment (8 KiB of slot storage — kept
/// below the malloc mmap threshold so first-touch stays cheap; see the
/// module docs).
const SEG_SLOTS: usize = 1 << 8;

struct Slot([AtomicU64; 4]);

impl Slot {
    fn empty() -> Slot {
        Slot([
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ])
    }
}

/// One thread's event buffer. Written only by its owning thread.
pub struct Ring {
    /// Fixed segment directory; each segment materializes on first write.
    segments: Box<[OnceLock<Box<[Slot]>>]>,
    /// `log2(slots per segment)`; segment length is
    /// `min(capacity, SEG_SLOTS)`, always a power of two.
    seg_shift: u32,
    capacity: usize,
    head: AtomicU64,
    tid: u32,
}

impl Ring {
    fn new(capacity: usize, tid: u32) -> Ring {
        let cap = capacity.next_power_of_two().max(2);
        let seg_len = cap.min(SEG_SLOTS);
        Ring {
            segments: (0..cap / seg_len).map(|_| OnceLock::new()).collect(),
            seg_shift: seg_len.trailing_zeros(),
            capacity: cap,
            head: AtomicU64::new(0),
            tid,
        }
    }

    #[inline]
    fn slot(&self, index: u64) -> &Slot {
        let idx = (index as usize) & (self.capacity - 1);
        let seg_len = 1usize << self.seg_shift;
        let seg = self.segments[idx >> self.seg_shift]
            .get_or_init(|| (0..seg_len).map(|_| Slot::empty()).collect());
        &seg[idx & (seg_len - 1)]
    }

    #[inline]
    fn push(&self, ts_ns: u64, dur_ns: u32, kind: EventKind, a: u32, b: u32, c: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = self.slot(head);
        let w = Event {
            ts_ns,
            dur_ns,
            kind,
            tid: self.tid,
            a,
            b,
            c,
        }
        .pack();
        for (cell, word) in slot.0.iter().zip(w) {
            cell.store(word, Ordering::Relaxed);
        }
        self.head.store(head + 1, Ordering::Release);
    }

    /// Events ever written to this ring.
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events overwritten before being drained.
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.capacity as u64)
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.capacity as u64);
        (start..head)
            .filter_map(|i| {
                // Every index in `start..head` was written, so its
                // segment is materialized; `slot` only re-checks the
                // OnceLock it will find initialized.
                let s = self.slot(i);
                let w = [
                    s.0[0].load(Ordering::Relaxed),
                    s.0[1].load(Ordering::Relaxed),
                    s.0[2].load(Ordering::Relaxed),
                    s.0[3].load(Ordering::Relaxed),
                ];
                Event::unpack(w, self.tid)
            })
            .collect()
    }
}

struct Sink {
    epoch: Instant,
    capacity: usize,
    generation: u64,
    rings: Mutex<Vec<Arc<Ring>>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn sink_cell() -> &'static Mutex<Option<Arc<Sink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<Sink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static LOCAL_RING: std::cell::RefCell<Option<(u64, Arc<Ring>, Instant)>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs (or re-installs) the global sink with per-thread rings of
/// `capacity` events and enables tracing. Any previously recorded events
/// are discarded. Returns the sink generation (diagnostic only).
pub fn install(capacity: usize) -> u64 {
    let generation = GENERATION.fetch_add(1, Ordering::SeqCst) + 1;
    let sink = Arc::new(Sink {
        epoch: Instant::now(),
        capacity,
        generation,
        rings: Mutex::new(Vec::new()),
    });
    *sink_cell().lock().unwrap() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
    generation
}

/// Disables tracing. Recorded events stay drainable until the next
/// [`install`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the sink is currently accepting events (the macro fast path).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `epoch.elapsed()` in nanoseconds using u64 arithmetic throughout —
/// `Duration::as_nanos` goes through a 128-bit multiply, which is
/// measurable at per-event frequency.
#[inline]
fn elapsed_ns(epoch: &Instant) -> u64 {
    let d = epoch.elapsed();
    d.as_secs().saturating_mul(1_000_000_000) + u64::from(d.subsec_nanos())
}

/// Monotonic nanoseconds since the sink was installed; `0` when tracing
/// is disabled (used as the "no span" sentinel by [`crate::trace_span!`]).
/// The +1 keeps an event landing in the very first nanosecond distinct
/// from the disabled sentinel.
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    let mut ts = 0;
    with_ring(|_, epoch| ts = elapsed_ns(&epoch) + 1);
    ts
}

/// Runs `f` with the calling thread's ring, registering one (the only
/// path that touches the global mutex) on the first event after an
/// [`install`].
fn with_ring(f: impl FnOnce(&Ring, Instant)) {
    let current = GENERATION.load(Ordering::Relaxed);
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stale = !matches!(&*slot, Some((g, _, _)) if *g == current);
        if stale {
            let guard = sink_cell().lock().unwrap();
            let Some(sink) = guard.as_ref() else {
                *slot = None;
                return;
            };
            let mut rings = sink.rings.lock().unwrap();
            let ring = Arc::new(Ring::new(sink.capacity, rings.len() as u32));
            rings.push(Arc::clone(&ring));
            let registered = (sink.generation, ring, sink.epoch);
            drop(rings);
            drop(guard);
            *slot = Some(registered);
        }
        if let Some((_, ring, epoch)) = &*slot {
            f(ring, *epoch);
        }
    });
}

/// Emits one event with an explicit duration. Prefer the
/// [`crate::trace_event!`] / [`crate::trace_span!`] macros, which skip
/// argument evaluation when tracing is off.
#[inline]
pub fn emit(kind: EventKind, dur_ns: u32, a: u32, b: u32, c: u64) {
    if !enabled() {
        return;
    }
    with_ring(|ring, epoch| {
        let ts = elapsed_ns(&epoch) + 1;
        ring.push(ts, dur_ns, kind, a, b, c);
    });
}

/// Emits a span that started at `t0` (a [`now_ns`] value): the event's
/// timestamp is `t0` and its duration is the elapsed time since.
#[inline]
pub fn span(kind: EventKind, t0: u64, a: u32, b: u32, c: u64) {
    if !enabled() || t0 == 0 {
        return;
    }
    with_ring(|ring, epoch| {
        let now = elapsed_ns(&epoch) + 1;
        let dur = now.saturating_sub(t0).min(u64::from(u32::MAX)) as u32;
        ring.push(t0, dur, kind, a, b, c);
    });
}

/// A drained trace: all retained events merged across rings and sorted by
/// timestamp, plus overflow accounting.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events, ascending by `ts_ns` (ties broken by ring id).
    pub events: Vec<Event>,
    /// Events overwritten before the drain, summed over rings.
    pub dropped: u64,
    /// Number of per-thread rings that contributed.
    pub rings: u64,
}

impl Trace {
    /// Count of events per category name, in [`EventKind::CATEGORIES`]
    /// order.
    pub fn category_counts(&self) -> [(&'static str, u64); 7] {
        let mut out = EventKind::CATEGORIES.map(|c| (c, 0u64));
        for e in &self.events {
            let cat = e.kind.category();
            for slot in &mut out {
                if slot.0 == cat {
                    slot.1 += 1;
                }
            }
        }
        out
    }
}

/// Collects every ring's retained events into one timestamp-sorted
/// [`Trace`]. Call at a quiescent point (see module docs). The sink and
/// its events are left in place; re-[`install`] to reset.
pub fn drain() -> Trace {
    let guard = sink_cell().lock().unwrap();
    let Some(sink) = guard.as_ref() else {
        return Trace::default();
    };
    let rings: Vec<Arc<Ring>> = sink.rings.lock().unwrap().clone();
    drop(guard);
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in &rings {
        dropped += ring.dropped();
        events.extend(ring.snapshot());
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    Trace {
        events,
        dropped,
        rings: rings.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global; tests touching it serialize here.
    pub(crate) fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_sink_accepts_nothing() {
        let _g = global_lock();
        install(64);
        disable();
        emit(EventKind::Crash, 0, 1, 2, 3);
        assert_eq!(drain().events.len(), 0);
        assert_eq!(now_ns(), 0);
    }

    #[test]
    fn events_drain_in_timestamp_order_across_threads() {
        let _g = global_lock();
        install(1 << 10);
        emit(EventKind::ReqStart, 0, 7, 0, 1);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..100u64 {
                        emit(EventKind::FrameTx, 0, t, 0, i);
                    }
                });
            }
        });
        let tr = drain();
        disable();
        assert_eq!(tr.events.len(), 401);
        assert_eq!(tr.dropped, 0);
        assert_eq!(tr.rings, 5);
        assert!(tr.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Events emitted by exited threads survive the threads.
        assert_eq!(
            tr.events
                .iter()
                .filter(|e| e.kind == EventKind::FrameTx)
                .count(),
            400
        );
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let _g = global_lock();
        install(8); // rounded to 8 slots
        for i in 0..20u64 {
            emit(EventKind::SimDeliver, 0, 0, 0, i);
        }
        let tr = drain();
        disable();
        assert_eq!(tr.events.len(), 8, "ring retains exactly its capacity");
        assert_eq!(tr.dropped, 12, "older events counted as dropped");
        let cs: Vec<u64> = tr.events.iter().map(|e| e.c).collect();
        assert_eq!(cs, (12..20).collect::<Vec<_>>(), "newest survive, in order");
    }

    #[test]
    fn reinstall_resets_and_span_measures_duration() {
        let _g = global_lock();
        install(64);
        emit(EventKind::Crash, 0, 1, 0, 0);
        install(64); // re-install discards prior events, re-registers rings
        let t0 = now_ns();
        assert_ne!(t0, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        span(EventKind::Dispatch, t0, 1, 2, 3);
        let tr = drain();
        disable();
        assert_eq!(tr.events.len(), 1);
        let e = tr.events[0];
        assert_eq!(e.kind, EventKind::Dispatch);
        assert_eq!(e.ts_ns, t0);
        assert!(e.dur_ns >= 1_000_000, "span of a 2ms sleep ≥ 1ms");
    }

    #[test]
    fn macros_do_not_evaluate_args_when_disabled() {
        let _g = global_lock();
        install(64);
        disable();
        let mut evaluated = false;
        crate::trace_event!(EventKind::Crash, 1, 2, {
            evaluated = true;
            3
        });
        assert!(!evaluated);
        crate::trace_span!(EventKind::Dispatch, 0, 1, 2, 3);
        assert_eq!(drain().events.len(), 0);
    }
}
