//! End-to-end competitive-ratio measurement.
//!
//! Ties the simulator (`oat-sim`) to the offline optima: run a policy on
//! a workload, count its messages, and divide by `C_OPT` (Theorem 1) and
//! the NOPT epoch lower bound (Theorem 2).

use oat_core::agg::SumI64;
use oat_core::policy::PolicySpec;
use oat_core::request::Request;
use oat_core::tree::Tree;
use oat_sim::{run_sequential, Schedule};

use crate::nopt::nopt_total_lower_bound;
use crate::opt_dp::opt_total_cost;
use crate::replay::rww_total_cost;

/// One workload × one policy measurement.
#[derive(Clone, Debug)]
pub struct RatioReport {
    /// Policy name.
    pub policy: String,
    /// Simulated online message total `C_A(σ)`.
    pub online_cost: u64,
    /// Analytic RWW replay total (only for RWW; must equal
    /// `online_cost`).
    pub analytic_cost: Option<u64>,
    /// Optimal offline lease-based cost `C_OPT(σ)`.
    pub opt_cost: u64,
    /// Epoch lower bound on any nice algorithm.
    pub nopt_lower_bound: u64,
}

impl RatioReport {
    /// `C_A(σ) / C_OPT(σ)`; `None` when OPT is zero (no combines forced
    /// any messages).
    pub fn ratio_vs_opt(&self) -> Option<f64> {
        if self.opt_cost == 0 {
            None
        } else {
            Some(self.online_cost as f64 / self.opt_cost as f64)
        }
    }

    /// `C_A(σ)` over the NOPT epoch lower bound.
    pub fn ratio_vs_nopt(&self) -> Option<f64> {
        if self.nopt_lower_bound == 0 {
            None
        } else {
            Some(self.online_cost as f64 / self.nopt_lower_bound as f64)
        }
    }
}

/// Measures an arbitrary policy on `(tree, seq)` with the SUM operator.
pub fn measure_policy<S: PolicySpec>(spec: &S, tree: &Tree, seq: &[Request<i64>]) -> RatioReport {
    let sim = run_sequential(tree, SumI64, spec, Schedule::Fifo, seq, false);
    RatioReport {
        policy: spec.name(),
        online_cost: sim.total_msgs(),
        analytic_cost: None,
        opt_cost: opt_total_cost(tree, seq),
        nopt_lower_bound: nopt_total_lower_bound(tree, seq),
    }
}

/// Measures RWW, including the analytic cross-check.
///
/// ```
/// use oat_core::{request::Request, tree::{NodeId, Tree}};
/// use oat_offline::ratio::measure_rww;
///
/// let tree = Tree::pair();
/// let mut seq = Vec::new();
/// for i in 0..100 {
///     seq.push(Request::combine(NodeId(1)));
///     seq.push(Request::write(NodeId(0), i));
///     seq.push(Request::write(NodeId(0), i + 1));
/// }
/// let rep = measure_rww(&tree, &seq);
/// assert_eq!(rep.analytic_cost, Some(rep.online_cost));
/// let ratio = rep.ratio_vs_opt().unwrap();
/// assert!((ratio - 2.5).abs() < 0.05, "the adversarial pattern is tight");
/// ```
pub fn measure_rww(tree: &Tree, seq: &[Request<i64>]) -> RatioReport {
    let spec = oat_core::policy::rww::RwwSpec;
    let mut report = measure_policy(&spec, tree, seq);
    report.analytic_cost = Some(rww_total_cost(tree, seq));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::tree::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn rww_report_consistency() {
        let tree = Tree::kary(9, 2);
        let mut seq = Vec::new();
        for i in 0..80u32 {
            let node = n((i * 5 + 1) % 9);
            if i % 3 == 0 {
                seq.push(Request::combine(node));
            } else {
                seq.push(Request::write(node, i as i64));
            }
        }
        let rep = measure_rww(&tree, &seq);
        assert_eq!(rep.analytic_cost, Some(rep.online_cost));
        let ratio = rep.ratio_vs_opt().unwrap();
        assert!(
            ratio <= 2.5 + 1e-9,
            "Theorem 1 violated: ratio = {ratio} (online {}, opt {})",
            rep.online_cost,
            rep.opt_cost
        );
        let ratio5 = rep.ratio_vs_nopt().unwrap();
        // Theorem 2 bounds the ratio against NOPT's true cost; against
        // the *lower bound* we still add the per-pair additive slack, so
        // just sanity-check it is finite and positive here. The dedicated
        // experiment harness reports the full table.
        assert!(ratio5.is_finite() && ratio5 > 0.0);
    }

    #[test]
    fn adversarial_rww_ratio_approaches_5_over_2() {
        let tree = crate::adversary::adv_tree();
        let seq = crate::adversary::adv_sequence(1, 2, 500);
        let rep = measure_rww(&tree, &seq);
        let ratio = rep.ratio_vs_opt().unwrap();
        assert!(
            (ratio - 2.5).abs() < 0.01,
            "adversarial ratio should be ≈ 5/2, got {ratio}"
        );
    }
}
