//! The per-edge cost model of Figure 2 and the per-edge automata.
//!
//! Figure 2 tabulates, for an ordered pair of neighbours `(u,v)`, every
//! possible change of `u.granted[v]` and the messages charged to
//! `C(σ,u,v)` while executing one request of `σ(u,v)` (or a noop — the
//! slot where a `release` triggered by a write in `σ(v,u)` may be
//! charged):
//!
//! | `granted` before | request | `granted` after | cost |
//! |------------------|---------|-----------------|------|
//! | false            | R       | false           | 2    |
//! | false            | R       | true            | 2    |
//! | false            | W       | false           | 0    |
//! | false            | N       | false           | 0    |
//! | true             | R       | true            | 0    |
//! | true             | W       | false           | 2    |
//! | true             | W       | true            | 1    |
//! | true             | N       | false           | 1    |
//! | true             | N       | true            | 0    |
//!
//! Any lease-based algorithm's per-edge behaviour is a path through this
//! table (Lemma 3.8); an *offline* algorithm may pick transitions freely,
//! an online one must pick them deterministically from the past. The
//! deterministic automata below replay **RWW** (via its configuration
//! `F ∈ {0,1,2}`, Section 4.2) and general **(a,b)**-algorithms.

use oat_core::request::EdgeEvent;

/// Cost charged to `C(σ,u,v)` for executing `ev` when `u.granted[v]`
/// moves from `state` to `next`; `None` when Figure 2 forbids the
/// transition.
pub fn edge_cost(state: bool, ev: EdgeEvent, next: bool) -> Option<u64> {
    use EdgeEvent::*;
    match (state, ev, next) {
        (false, R, false) => Some(2),
        (false, R, true) => Some(2),
        (false, W, false) => Some(0),
        (false, N, false) => Some(0),
        (true, R, true) => Some(0),
        (true, W, false) => Some(2),
        (true, W, true) => Some(1),
        (true, N, false) => Some(1),
        (true, N, true) => Some(0),
        _ => None,
    }
}

/// All legal Figure-2 rows, in table order: `(state, event, next, cost)`.
pub const FIGURE2_ROWS: [(bool, EdgeEvent, bool, u64); 9] = [
    (false, EdgeEvent::R, false, 2),
    (false, EdgeEvent::R, true, 2),
    (false, EdgeEvent::W, false, 0),
    (false, EdgeEvent::N, false, 0),
    (true, EdgeEvent::R, true, 0),
    (true, EdgeEvent::W, false, 2),
    (true, EdgeEvent::W, true, 1),
    (true, EdgeEvent::N, false, 1),
    (true, EdgeEvent::N, true, 0),
];

/// The deterministic per-edge automaton of RWW.
///
/// The configuration `F_RWW(u,v) ∈ {0,1,2}` (Section 4.2) counts the
/// remaining write budget: 0 = no lease; 2 = lease fresh (last request a
/// combine); 1 = lease with one write absorbed. Lemma 4.4:
/// `F_RWW(u,v) > 0 ⟺ u.granted[v]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RwwAutomaton {
    /// The current configuration `F_RWW(u,v)`.
    pub f: u8,
}

impl Default for RwwAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl RwwAutomaton {
    /// Initial configuration (no lease).
    pub fn new() -> Self {
        RwwAutomaton { f: 0 }
    }

    /// Whether the lease is currently granted.
    pub fn granted(&self) -> bool {
        self.f > 0
    }

    /// Executes one event, returning its Figure-2 cost.
    pub fn step(&mut self, ev: EdgeEvent) -> u64 {
        let before = self.granted();
        let cost = match (self.f, ev) {
            (0, EdgeEvent::R) => {
                self.f = 2;
                2
            }
            (0, EdgeEvent::W) | (0, EdgeEvent::N) => 0,
            (_, EdgeEvent::R) => {
                self.f = 2;
                0
            }
            (2, EdgeEvent::W) => {
                self.f = 1;
                1
            }
            (1, EdgeEvent::W) => {
                self.f = 0;
                2
            }
            (_, EdgeEvent::N) => 0,
            (f, ev) => unreachable!("invalid RWW configuration {f} on {ev:?}"),
        };
        debug_assert_eq!(
            edge_cost(before, ev, self.granted()),
            Some(cost),
            "RWW transition must be a legal Figure-2 row"
        );
        cost
    }

    /// Replays a whole event sequence, returning the total cost.
    pub fn replay(events: &[EdgeEvent]) -> u64 {
        let mut a = RwwAutomaton::new();
        events.iter().map(|&e| a.step(e)).sum()
    }
}

/// The deterministic per-edge automaton of an `(a,b)`-algorithm
/// (Section 4.2): the lease is set after `a` consecutive combines in
/// `σ(u,v)` and broken after `b` consecutive writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbAutomaton {
    a: u32,
    b: u32,
    granted: bool,
    /// Consecutive combines seen while not granted.
    creads: u32,
    /// Remaining write budget while granted.
    wleft: u32,
}

impl AbAutomaton {
    /// New automaton for parameters `(a, b)`, both positive.
    pub fn new(a: u32, b: u32) -> Self {
        assert!(a >= 1 && b >= 1);
        AbAutomaton {
            a,
            b,
            granted: false,
            creads: 0,
            wleft: 0,
        }
    }

    /// Whether the lease is currently granted.
    pub fn granted(&self) -> bool {
        self.granted
    }

    /// Executes one event, returning its Figure-2 cost.
    pub fn step(&mut self, ev: EdgeEvent) -> u64 {
        let before = self.granted;
        let cost = if !self.granted {
            match ev {
                EdgeEvent::R => {
                    self.creads += 1;
                    if self.creads >= self.a {
                        self.granted = true;
                        self.creads = 0;
                        self.wleft = self.b;
                    }
                    2
                }
                EdgeEvent::W => {
                    self.creads = 0;
                    0
                }
                EdgeEvent::N => 0,
            }
        } else {
            match ev {
                EdgeEvent::R => {
                    self.wleft = self.b;
                    0
                }
                EdgeEvent::W => {
                    self.wleft -= 1;
                    if self.wleft == 0 {
                        self.granted = false;
                        2
                    } else {
                        1
                    }
                }
                EdgeEvent::N => 0,
            }
        };
        debug_assert_eq!(
            edge_cost(before, ev, self.granted),
            Some(cost),
            "(a,b) transition must be a legal Figure-2 row"
        );
        cost
    }

    /// Replays a whole event sequence, returning the total cost.
    pub fn replay(a: u32, b: u32, events: &[EdgeEvent]) -> u64 {
        let mut aut = AbAutomaton::new(a, b);
        events.iter().map(|&e| aut.step(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::EdgeEvent::*;

    #[test]
    fn figure2_rows_are_exactly_the_legal_transitions() {
        let mut legal = 0;
        for &state in &[false, true] {
            for &ev in &[R, W, N] {
                for &next in &[false, true] {
                    if let Some(cost) = edge_cost(state, ev, next) {
                        legal += 1;
                        assert!(
                            FIGURE2_ROWS.contains(&(state, ev, next, cost)),
                            "({state},{ev:?},{next},{cost}) missing from table"
                        );
                    }
                }
            }
        }
        assert_eq!(legal, FIGURE2_ROWS.len());
    }

    #[test]
    fn rww_rww_cycle_costs_five() {
        // R W W repeated: 2 + 1 + 2 per cycle.
        let cycle = [R, W, W];
        let events: Vec<_> = cycle.iter().copied().cycle().take(30).collect();
        assert_eq!(RwwAutomaton::replay(&events), 50);
    }

    #[test]
    fn rww_combines_after_lease_are_free() {
        assert_eq!(RwwAutomaton::replay(&[R, R, R, R]), 2);
    }

    #[test]
    fn rww_writes_without_lease_are_free() {
        assert_eq!(RwwAutomaton::replay(&[W, W, W]), 0);
        assert_eq!(RwwAutomaton::replay(&[R, W, W, W, W]), 5);
    }

    #[test]
    fn rww_combine_refreshes_write_budget() {
        // R W R W W: 2 + 1 + 0 + 1 + 2.
        assert_eq!(RwwAutomaton::replay(&[R, W, R, W, W]), 6);
    }

    #[test]
    fn rww_noop_free() {
        assert_eq!(RwwAutomaton::replay(&[N, R, N, W, N, W, N]), 5);
    }

    #[test]
    fn ab_12_equals_rww_on_random_sequences() {
        // (1,2)-automaton and the RWW automaton are the same machine.
        let mut seed = 0x12345u64;
        for _ in 0..200 {
            let mut events = Vec::new();
            for _ in 0..50 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                events.push(match (seed >> 33) % 3 {
                    0 => R,
                    1 => W,
                    _ => N,
                });
            }
            assert_eq!(
                AbAutomaton::replay(1, 2, &events),
                RwwAutomaton::replay(&events)
            );
        }
    }

    #[test]
    fn ab_grant_needs_consecutive_reads() {
        let mut a = AbAutomaton::new(2, 1);
        assert_eq!(a.step(R), 2);
        assert!(!a.granted());
        assert_eq!(a.step(W), 0); // breaks the run
        assert_eq!(a.step(R), 2);
        assert!(!a.granted());
        assert_eq!(a.step(R), 2);
        assert!(a.granted());
        // b = 1: the next write both updates and releases.
        assert_eq!(a.step(W), 2);
        assert!(!a.granted());
    }

    #[test]
    fn ab_cycle_cost_formula() {
        // On the ADV cycle (a combines then b writes), an (a,b)-algorithm
        // pays 2a + (b-1) + 2 = 2a + b + 1 per cycle in steady state.
        for (a, b) in [(1, 1), (1, 2), (2, 2), (3, 4)] {
            let mut events = Vec::new();
            for _ in 0..10 {
                events.extend(std::iter::repeat_n(R, a as usize));
                events.extend(std::iter::repeat_n(W, b as usize));
            }
            let cost = AbAutomaton::replay(a, b, &events);
            assert_eq!(cost, 10 * (2 * a as u64 + b as u64 + 1));
        }
    }
}
