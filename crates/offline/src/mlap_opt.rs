//! Exact offline optimum for small MLAP instances.
//!
//! The structural facts the DP rests on:
//!
//! 1. **Candidate times suffice.** Any offline schedule can be
//!    normalized without extra cost so that every flush happens at a
//!    *candidate* time: on a deadline instance, shift each flush
//!    forward to the next request deadline ≥ it (feasibility is
//!    preserved — every served request's window still contains the
//!    flush); on a linear-delay instance, shift each flush *back* to
//!    the latest arrival among the requests it serves (delay only
//!    shrinks, service cost is unchanged). So the candidate set is the
//!    distinct deadlines (MLAP-D) or distinct arrivals (MLAP-L).
//! 2. **Flush-time sets nest down the tree.** A node can only be
//!    flushed together with its parent, so with `T_x` = the set of
//!    times node `x` is flushed, `T_x ⊆ T_parent(x)` — and any nested
//!    family is realizable as a schedule.
//!
//! With `k` candidate times the DP state is a subset mask per node:
//! `dp[x][T]` = the cheapest cost of `x`'s subtree given `x` flushes
//! exactly at the times in `T` — `w(x)·|T|`, plus the request cost at
//! `x` under `T` (infeasible = ∞ for deadlines, earliest-flush delay
//! for MLAP-L), plus for each child the min over submasks `T_c ⊆ T`,
//! computed with a subset-sum (SOS) min sweep in `O(2^k·k)` per child.
//! Total `O(n·2^k·k)`; [`MAX_CANDIDATE_TIMES`] caps `k`, and
//! [`mlap_opt`] returns `None` above the cap — ratios are *measured*
//! on instances where the oracle is exact, never extrapolated.

use oat_mlap::{CostModel, MlapInstance};

const INF: u64 = u64::MAX / 4;

/// Largest candidate-time set the exact DP accepts (the table is
/// `2^k` entries per node).
pub const MAX_CANDIDATE_TIMES: usize = 16;

/// The candidate flush times of an instance: sorted distinct deadlines
/// (MLAP-D) or arrivals (MLAP-L). See the module docs for why these
/// suffice.
pub fn candidate_times(inst: &MlapInstance) -> Vec<u64> {
    let mut times: Vec<u64> = match inst.model {
        CostModel::Deadline => inst.requests.iter().filter_map(|r| r.deadline).collect(),
        CostModel::LinearDelay => inst.requests.iter().map(|r| r.arrival).collect(),
    };
    times.sort_unstable();
    times.dedup();
    times
}

/// Exact minimum total cost (service, plus delay on MLAP-L) over all
/// offline schedules. `None` when the instance needs more than
/// [`MAX_CANDIDATE_TIMES`] candidate flush times.
pub fn mlap_opt(inst: &MlapInstance) -> Option<u64> {
    let times = candidate_times(inst);
    let k = times.len();
    if k > MAX_CANDIDATE_TIMES {
        return None;
    }
    if inst.requests.is_empty() {
        return Some(0);
    }
    let full = 1usize << k;
    let n = inst.tree.len();

    // Per node: the requests pinned there, as (allowed-times mask,
    // arrival). `allowed` is the candidate times the request may be
    // served at; on MLAP-L the delay paid is the earliest allowed time
    // in the node's mask minus the arrival.
    let mut reqs_at: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for r in &inst.requests {
        let mut allowed = 0u64;
        for (i, &t) in times.iter().enumerate() {
            let ok = match inst.model {
                CostModel::Deadline => r.arrival <= t && t <= r.deadline.expect("validated"),
                CostModel::LinearDelay => t >= r.arrival,
            };
            if ok {
                allowed |= 1 << i;
            }
        }
        debug_assert_ne!(allowed, 0, "own deadline/arrival is always allowed");
        reqs_at[r.node.idx()].push((allowed, r.arrival));
    }

    // Children lists and a post-order over the rooted tree.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in inst.tree.nodes().skip(1) {
        children[inst.parent(u).expect("non-root").idx()].push(u.idx());
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    while let Some(u) = stack.pop() {
        post.push(u);
        stack.extend(&children[u]);
    }
    post.reverse(); // children now precede parents

    let mut dp: Vec<Option<Vec<u64>>> = vec![None; n];
    for &x in &post {
        let w = inst.weight[x];
        let mut row: Vec<u64> = vec![0; full];
        for (mask, cell) in row.iter_mut().enumerate() {
            let mut cost = w.saturating_mul(mask.count_ones() as u64);
            for &(allowed, arrival) in &reqs_at[x] {
                let usable = mask as u64 & allowed;
                if usable == 0 {
                    cost = INF;
                    break;
                }
                if inst.model == CostModel::LinearDelay {
                    cost += times[usable.trailing_zeros() as usize] - arrival;
                }
            }
            *cell = cost.min(INF);
        }
        for &c in &children[x] {
            // SOS min: g[mask] = min over submasks of the child's row.
            let mut g = dp[c].take().expect("post-order");
            for b in 0..k {
                for mask in 0..full {
                    if mask & (1 << b) != 0 {
                        g[mask] = g[mask].min(g[mask ^ (1 << b)]);
                    }
                }
            }
            for (cell, gc) in row.iter_mut().zip(&g) {
                *cell = cell.saturating_add(*gc).min(INF);
            }
        }
        dp[x] = Some(row);
    }
    let best = dp[0]
        .as_ref()
        .expect("root processed")
        .iter()
        .copied()
        .min()
        .expect("non-empty table");
    debug_assert!(best < INF, "full candidate set always feasible");
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::tree::{NodeId, Tree};
    use oat_mlap::MlapRequest;
    use proptest::prelude::*;

    fn req(node: u32, arrival: u64, deadline: Option<u64>) -> MlapRequest {
        MlapRequest {
            node: NodeId(node),
            arrival,
            deadline,
        }
    }

    /// Independent brute force over the *request-assignment* view: pick
    /// a served time per request (within its allowed window); the best
    /// schedule for an assignment flushes, at each used time, exactly
    /// the span of the requests assigned there. Minimizing over
    /// assignments equals minimizing over schedules.
    fn brute_force(inst: &MlapInstance) -> u64 {
        let times = candidate_times(inst);
        let m = inst.requests.len();
        let mut best = u64::MAX;
        let mut choice = vec![0usize; m];
        'outer: loop {
            let ok = inst.requests.iter().zip(&choice).all(|(r, &c)| {
                let t = times[c];
                match inst.model {
                    CostModel::Deadline => r.arrival <= t && t <= r.deadline.unwrap(),
                    CostModel::LinearDelay => t >= r.arrival,
                }
            });
            if ok {
                let mut total = 0u64;
                for (ti, &t) in times.iter().enumerate() {
                    let nodes: Vec<NodeId> = inst
                        .requests
                        .iter()
                        .zip(&choice)
                        .filter(|(_, &c)| c == ti)
                        .map(|(r, _)| r.node)
                        .collect();
                    if !nodes.is_empty() {
                        total += inst.span_cost(&nodes);
                        if inst.model == CostModel::LinearDelay {
                            total += inst
                                .requests
                                .iter()
                                .zip(&choice)
                                .filter(|(_, &c)| c == ti)
                                .map(|(r, _)| t - r.arrival)
                                .sum::<u64>();
                        }
                    }
                }
                best = best.min(total);
            }
            for slot in choice.iter_mut() {
                *slot += 1;
                if *slot < times.len() {
                    continue 'outer;
                }
                *slot = 0;
            }
            break;
        }
        best
    }

    #[test]
    fn single_request_costs_its_root_path() {
        let inst = MlapInstance::unit(Tree::path(4), CostModel::Deadline, vec![req(3, 0, Some(5))])
            .unwrap();
        assert_eq!(mlap_opt(&inst), Some(4));
    }

    #[test]
    fn spider_merges_into_one_flush() {
        // Star rooted at 0 with 4 leaves: all requests at t=0 with
        // deadlines 1..4 share the window point t=1 → one flush of the
        // whole tree, cost 5.
        let reqs = (1..=4).map(|i| req(i, 0, Some(u64::from(i)))).collect();
        let inst = MlapInstance::unit(Tree::star(5), CostModel::Deadline, reqs).unwrap();
        assert_eq!(mlap_opt(&inst), Some(5));
    }

    #[test]
    fn disjoint_windows_force_separate_flushes() {
        // Two requests at node 2 of path(3) with disjoint windows: two
        // flushes of the full path, cost 6.
        let inst = MlapInstance::unit(
            Tree::path(3),
            CostModel::Deadline,
            vec![req(2, 0, Some(1)), req(2, 5, Some(6))],
        )
        .unwrap();
        assert_eq!(mlap_opt(&inst), Some(6));
    }

    #[test]
    fn delay_model_balances_waiting_against_merging() {
        // path(2), requests at node 1 at t=0 and t=3. One flush at t=3
        // costs 2 (service) + 3 (delay) = 5; two flushes cost 4 + 0.
        let inst = MlapInstance::unit(
            Tree::pair(),
            CostModel::LinearDelay,
            vec![req(1, 0, None), req(1, 3, None)],
        )
        .unwrap();
        assert_eq!(mlap_opt(&inst), Some(4));
        // Closer arrivals flip the balance: one flush at t=1 costs
        // 2 + 1 = 3 < 4.
        let inst = MlapInstance::unit(
            Tree::pair(),
            CostModel::LinearDelay,
            vec![req(1, 0, None), req(1, 1, None)],
        )
        .unwrap();
        assert_eq!(mlap_opt(&inst), Some(3));
    }

    #[test]
    fn cap_is_enforced_not_guessed() {
        let reqs: Vec<MlapRequest> = (0..MAX_CANDIDATE_TIMES as u64 + 1)
            .map(|i| req(1, i, Some(100 + i)))
            .collect();
        let inst = MlapInstance::unit(Tree::pair(), CostModel::Deadline, reqs).unwrap();
        assert_eq!(mlap_opt(&inst), None);
        assert_eq!(candidate_times(&inst).len(), MAX_CANDIDATE_TIMES + 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dp_matches_brute_force_on_random_deadline_instances(
            n in 2usize..7,
            m in 1usize..5,
            tseed in any::<u64>(),
            rseed in any::<u64>(),
            weighted in any::<bool>(),
        ) {
            let tree = oat_workloads_random_tree(n, tseed);
            let mut s = rseed;
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 33 };
            let reqs: Vec<MlapRequest> = (0..m).map(|_| {
                let node = (next() % n as u64) as u32;
                let arrival = next() % 6;
                req(node, arrival, Some(arrival + next() % 4))
            }).collect();
            let weight: Vec<u64> = (0..n).map(|_| if weighted { next() % 7 } else { 1 }).collect();
            let inst = MlapInstance::new(tree, weight, CostModel::Deadline, reqs).unwrap();
            prop_assert_eq!(mlap_opt(&inst), Some(brute_force(&inst)));
        }

        #[test]
        fn dp_matches_brute_force_on_random_delay_instances(
            n in 2usize..7,
            m in 1usize..5,
            tseed in any::<u64>(),
            rseed in any::<u64>(),
        ) {
            let tree = oat_workloads_random_tree(n, tseed);
            let mut s = rseed;
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 33 };
            let reqs: Vec<MlapRequest> = (0..m).map(|_| {
                req((next() % n as u64) as u32, next() % 6, None)
            }).collect();
            let inst = MlapInstance::unit(tree, CostModel::LinearDelay, reqs).unwrap();
            prop_assert_eq!(mlap_opt(&inst), Some(brute_force(&inst)));
        }
    }

    /// A local uniform random tree (Prüfer-free: random parent
    /// attachment), to avoid a dev-dependency cycle on oat-workloads.
    fn oat_workloads_random_tree(n: usize, seed: u64) -> Tree {
        let mut s = seed | 1;
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        for v in 1..n as u32 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = ((s >> 33) % u64::from(v)) as u32;
            edges.push((p, v));
        }
        Tree::from_edges(n, &edges).expect("valid tree")
    }
}
