//! The adversarial request generator of Theorem 3.
//!
//! Theorem 3: for any `(a,b)`-algorithm `A` on a sufficiently long request
//! sequence, `C_A(σ) ≥ 5/2 · C_OPT(σ)`. The adversary ADV works on the
//! two-node tree `u — v` and, knowing `(a, b)`, repeats cycles of `a`
//! combine requests at `v` followed by `b` write requests at `u`.
//!
//! Per cycle (in steady state):
//!
//! * the `(a,b)`-algorithm pays `2a + (b − 1) + 2 = 2a + b + 1`
//!   (each combine until the lease sets costs 2; each write but the last
//!   costs 1; the `b`-th write costs 2 for update + release);
//! * OPT pays `min(2a, b, 3)` — stay leaseless (`2a`), hold the lease
//!   (`b`), or hold the lease only across the combines and drop it for 1
//!   on the noop before the writes (`2 + 1`).
//!
//! The ratio `(2a + b + 1) / min(2a, b, 3)` is minimised at `(a,b) =
//! (1,2)` — i.e. at RWW — where it equals `5/2`, matching the upper bound
//! of Theorem 1. [`adv_predicted_ratio`] returns the closed form;
//! the experiment harness cross-checks it against the measured
//! [`crate::cost_model::AbAutomaton`] replay and [`crate::opt_dp`] costs.

use oat_core::request::Request;
use oat_core::tree::{NodeId, Tree};

/// The two-node adversary tree (`0 — 1`).
pub fn adv_tree() -> Tree {
    Tree::pair()
}

/// The adversarial sequence for parameters `(a, b)`: `cycles` repetitions
/// of `a` combines at node 1 followed by `b` writes at node 0.
pub fn adv_sequence(a: u32, b: u32, cycles: usize) -> Vec<Request<i64>> {
    assert!(a >= 1 && b >= 1);
    let u = NodeId(0);
    let v = NodeId(1);
    let mut seq = Vec::with_capacity(cycles * (a + b) as usize);
    let mut x = 0i64;
    for _ in 0..cycles {
        for _ in 0..a {
            seq.push(Request::combine(v));
        }
        for _ in 0..b {
            x += 1;
            seq.push(Request::write(u, x));
        }
    }
    seq
}

/// Steady-state cost per cycle of the `(a,b)`-algorithm on its own
/// adversarial sequence.
pub fn ab_cycle_cost(a: u32, b: u32) -> u64 {
    2 * a as u64 + b as u64 + 1
}

/// Steady-state cost per cycle of OPT on the `(a,b)` adversarial
/// sequence.
pub fn opt_cycle_cost(a: u32, b: u32) -> u64 {
    (2 * a as u64).min(b as u64).min(3)
}

/// The asymptotic competitive ratio of the `(a,b)`-algorithm on ADV.
pub fn adv_predicted_ratio(a: u32, b: u32) -> f64 {
    ab_cycle_cost(a, b) as f64 / opt_cycle_cost(a, b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::AbAutomaton;
    use crate::opt_dp::opt_total_cost;
    use crate::replay::ab_total_cost;

    #[test]
    fn rww_parameters_minimise_the_adversarial_ratio() {
        let mut best = f64::INFINITY;
        let mut best_ab = (0, 0);
        for a in 1..=6 {
            for b in 1..=8 {
                let r = adv_predicted_ratio(a, b);
                if r < best {
                    best = r;
                    best_ab = (a, b);
                }
            }
        }
        assert_eq!(best_ab, (1, 2), "RWW is the optimal (a,b) point");
        assert!((best - 2.5).abs() < 1e-12);
    }

    #[test]
    fn measured_cycle_costs_match_closed_forms() {
        let tree = adv_tree();
        for (a, b) in [(1, 1), (1, 2), (2, 2), (2, 4), (3, 5)] {
            let cycles = 200;
            let seq = adv_sequence(a, b, cycles);
            let ab_cost = ab_total_cost(&tree, &seq, a, b);
            let opt_cost = opt_total_cost(&tree, &seq);
            // Only the (0,1) ordered pair carries events; steady-state
            // per-cycle costs dominate for long sequences.
            let ab_per_cycle = ab_cost as f64 / cycles as f64;
            let opt_per_cycle = opt_cost as f64 / cycles as f64;
            assert!(
                (ab_per_cycle - ab_cycle_cost(a, b) as f64).abs() < 0.05,
                "({a},{b}): measured {ab_per_cycle}, predicted {}",
                ab_cycle_cost(a, b)
            );
            assert!(
                (opt_per_cycle - opt_cycle_cost(a, b) as f64).abs() < 0.05,
                "({a},{b}): OPT measured {opt_per_cycle}, predicted {}",
                opt_cycle_cost(a, b)
            );
        }
    }

    #[test]
    fn every_ab_algorithm_is_at_least_5_over_2_on_its_adversary() {
        let tree = adv_tree();
        for a in 1..=4 {
            for b in 1..=6 {
                let seq = adv_sequence(a, b, 300);
                let ab_cost = ab_total_cost(&tree, &seq, a, b) as f64;
                let opt_cost = opt_total_cost(&tree, &seq) as f64;
                let ratio = ab_cost / opt_cost;
                assert!(
                    ratio >= 2.5 - 0.02,
                    "({a},{b}) achieved ratio {ratio} < 5/2"
                );
            }
        }
    }

    #[test]
    fn automaton_steady_state_matches_cycle_formula() {
        for (a, b) in [(1, 2), (2, 3), (4, 1)] {
            let mut aut = AbAutomaton::new(a, b);
            // Warm up one cycle, then measure the second.
            for _ in 0..a {
                aut.step(oat_core::request::EdgeEvent::R);
            }
            for _ in 0..b {
                aut.step(oat_core::request::EdgeEvent::W);
            }
            let mut cost = 0;
            for _ in 0..a {
                cost += aut.step(oat_core::request::EdgeEvent::R);
            }
            for _ in 0..b {
                cost += aut.step(oat_core::request::EdgeEvent::W);
            }
            assert_eq!(cost, ab_cycle_cost(a, b));
        }
    }
}
