//! Analytic cost replays.
//!
//! Lemma 4.5: `C_RWW(σ, u, v) = C_RWW(σ(u,v), u, v)` — RWW's per-pair cost
//! is fully determined by the projected event sequence and the
//! deterministic automaton of Figure 2/Figure 3. These functions compute
//! `C_RWW(σ)` (and the `(a,b)` generalisation) *without* the simulator.
//!
//! Agreement between [`rww_total_cost`] and the simulator's measured
//! message totals is one of the repository's strongest integration tests:
//! it ties the distributed mechanism (probes cascading through the tree,
//! update identifiers, release bookkeeping) to the paper's per-edge
//! accounting, edge by edge.

use oat_core::request::{sigma, Request};
use oat_core::tree::{NodeId, Tree};

use crate::cost_model::{AbAutomaton, RwwAutomaton};

/// Analytic `C_RWW(σ, u, v)` for one ordered pair.
pub fn rww_pair_cost<V>(tree: &Tree, seq: &[Request<V>], u: NodeId, v: NodeId) -> u64 {
    RwwAutomaton::replay(&sigma(tree, seq, u, v))
}

/// Analytic `C_RWW(σ)`: sum over all ordered pairs.
pub fn rww_total_cost<V>(tree: &Tree, seq: &[Request<V>]) -> u64 {
    tree.dir_edges()
        .map(|(u, v)| rww_pair_cost(tree, seq, u, v))
        .sum()
}

/// Analytic per-pair cost of the abstract `(a,b)`-algorithm.
pub fn ab_pair_cost<V>(
    tree: &Tree,
    seq: &[Request<V>],
    a: u32,
    b: u32,
    u: NodeId,
    v: NodeId,
) -> u64 {
    AbAutomaton::replay(a, b, &sigma(tree, seq, u, v))
}

/// Analytic total cost of the abstract `(a,b)`-algorithm.
pub fn ab_total_cost<V>(tree: &Tree, seq: &[Request<V>], a: u32, b: u32) -> u64 {
    tree.dir_edges()
        .map(|(u, v)| ab_pair_cost(tree, seq, a, b, u, v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;
    use oat_core::tree::Tree;
    use oat_sim::{run_sequential, Schedule};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn analytic_matches_simulator_on_pair() {
        let tree = Tree::pair();
        let seq = vec![
            Request::combine(n(1)),
            Request::write(n(0), 1),
            Request::write(n(0), 2),
            Request::combine(n(1)),
            Request::write(n(0), 3),
        ];
        let sim = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        assert_eq!(rww_total_cost(&tree, &seq), sim.total_msgs());
    }

    #[test]
    fn analytic_matches_simulator_on_deep_tree() {
        let tree = Tree::kary(15, 2);
        let mut seq = Vec::new();
        // A deterministic but irregular pattern over the whole tree.
        for i in 0..60u32 {
            let node = n((i * 7 + 3) % 15);
            if (i * 13) % 5 < 2 {
                seq.push(Request::combine(node));
            } else {
                seq.push(Request::write(node, i as i64));
            }
        }
        let sim = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        assert_eq!(rww_total_cost(&tree, &seq), sim.total_msgs());
    }

    #[test]
    fn per_pair_costs_match_simulator_stats() {
        let tree = Tree::path(5);
        let seq = vec![
            Request::combine(n(4)),
            Request::write(n(0), 5),
            Request::write(n(1), 6),
            Request::combine(n(0)),
            Request::write(n(4), 2),
            Request::write(n(4), 3),
            Request::combine(n(2)),
        ];
        let sim = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
            assert_eq!(
                rww_pair_cost(&tree, &seq, u, v),
                sim.engine.stats().pair_cost(tree_ref(&sim), u, v),
                "pair ({u},{v})"
            );
        }
    }

    fn tree_ref<S: oat_core::policy::PolicySpec, A: oat_core::agg::AggOp>(
        r: &oat_sim::SeqResult<S, A>,
    ) -> &Tree {
        r.engine.tree()
    }
}
