//! # oat-offline — offline optima and competitive analysis
//!
//! Everything Section 4 of the paper needs that is *not* the online
//! mechanism itself:
//!
//! * [`cost_model`] — the per-edge cost table of **Figure 2**: the legal
//!   `(state, request, next state, cost)` tuples for any lease-based
//!   algorithm, plus the deterministic per-edge automata of RWW and of
//!   general `(a,b)`-algorithms,
//! * [`opt_dp`] — the optimal offline lease-based algorithm **OPT** as an
//!   exact per-edge dynamic program over `σ'(u,v)` (justified by the
//!   per-pair decomposition of Lemma 3.9),
//! * [`replay`] — analytic replays: compute `C_RWW(σ,u,v)` (and the
//!   `(a,b)` generalisation) without running the simulator; equality with
//!   simulated message counts is a strong end-to-end test,
//! * [`nopt`] — the epoch lower bound on any *nice* (strictly consistent)
//!   algorithm used by **Theorem 2**,
//! * [`adversary`] — the request generator of **Theorem 3** (`a` combines
//!   at one endpoint, `b` writes at the other, repeated),
//! * [`ratio`] — end-to-end competitive-ratio measurements tying the
//!   simulator and the offline optima together,
//! * [`mlap_opt`] — the exact offline optimum for the second problem
//!   family, MLAP (`oat-mlap`): a nested-subset DP over candidate flush
//!   times, for both the deadline and linear-delay cost models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod cost_model;
pub mod mlap_opt;
pub mod nopt;
pub mod opt_dp;
pub mod ratio;
pub mod replay;

pub use cost_model::{edge_cost, AbAutomaton, RwwAutomaton};
pub use mlap_opt::{candidate_times, mlap_opt, MAX_CANDIDATE_TIMES};
pub use opt_dp::{opt_edge_cost, opt_total_cost};
pub use ratio::RatioReport;
