//! Epoch lower bound on any *nice* offline algorithm (Theorem 2).
//!
//! A *nice* algorithm provides strict consistency in sequential executions
//! (Section 2). The proof of Theorem 2 partitions each `σ(u,v)` into
//! *epochs*: an epoch ends at every write→combine transition. Strict
//! consistency forces at least one message between `u` and `v`
//! (attributable to the pair `(u,v)`) per completed epoch: the data about
//! the epoch's writes must cross the edge before the next combine can
//! return, and the crossing message windows of distinct epochs are
//! disjoint in a sequential execution.
//!
//! Lemma 4.3 bounds RWW at 5 messages per epoch, giving the factor 5.
//! We report ratios against this lower bound; because it is a *lower*
//! bound on NOPT's true cost, measured ratios are conservative (an upper
//! bound on RWW / NOPT).

use oat_core::request::{sigma, EdgeEvent, Request};
use oat_core::tree::{NodeId, Tree};

/// Number of completed epochs (write→combine transitions) in an event
/// sequence.
pub fn epoch_count(events: &[EdgeEvent]) -> u64 {
    let mut count = 0;
    let mut prev_was_write = false;
    for &e in events {
        match e {
            EdgeEvent::W => prev_was_write = true,
            EdgeEvent::R => {
                if prev_was_write {
                    count += 1;
                }
                prev_was_write = false;
            }
            EdgeEvent::N => {}
        }
    }
    count
}

/// Epoch lower bound for one ordered pair: `#epochs(σ(u,v))`.
pub fn nopt_pair_lower_bound<V>(tree: &Tree, seq: &[Request<V>], u: NodeId, v: NodeId) -> u64 {
    epoch_count(&sigma(tree, seq, u, v))
}

/// Epoch lower bound on `C_NOPT(σ)`: sum over all ordered pairs.
pub fn nopt_total_lower_bound<V>(tree: &Tree, seq: &[Request<V>]) -> u64 {
    tree.dir_edges()
        .map(|(u, v)| nopt_pair_lower_bound(tree, seq, u, v))
        .sum()
}

/// Per-pair RWW cost cap from Lemma 4.3: at most 5 messages per epoch plus
/// a bounded tail for the final (incomplete) epoch. Exposed so tests can
/// assert the Theorem-2 inequality structurally per pair.
pub fn rww_epoch_bound(epochs: u64) -> u64 {
    5 * epochs + 5
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::EdgeEvent::*;

    #[test]
    fn epoch_counting() {
        assert_eq!(epoch_count(&[]), 0);
        assert_eq!(epoch_count(&[R, R, R]), 0);
        assert_eq!(epoch_count(&[W, W, W]), 0);
        assert_eq!(epoch_count(&[W, R]), 1);
        assert_eq!(epoch_count(&[R, W, W, R, W, R, R, W]), 2);
        assert_eq!(epoch_count(&[W, N, R]), 1, "noops do not break epochs");
        assert_eq!(epoch_count(&[W, R, W, R, W, R]), 3);
    }

    #[test]
    fn rww_cost_within_five_per_epoch() {
        use crate::cost_model::RwwAutomaton;
        // Adversarial R W W cycles: RWW pays 5 per epoch exactly.
        let mut events = Vec::new();
        for _ in 0..20 {
            events.extend([R, W, W]);
        }
        let cost = RwwAutomaton::replay(&events);
        let epochs = epoch_count(&events);
        assert_eq!(cost, 100);
        assert_eq!(epochs, 19, "the final epoch has no closing combine");
        assert!(cost <= rww_epoch_bound(epochs));
    }

    #[test]
    fn theorem2_structure_on_random_event_sequences() {
        use crate::cost_model::RwwAutomaton;
        let mut seed = 77u64;
        for _ in 0..300 {
            let mut events = Vec::new();
            for _ in 0..200 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
                events.push(if (seed >> 40).is_multiple_of(2) { R } else { W });
            }
            let cost = RwwAutomaton::replay(&events);
            let epochs = epoch_count(&events);
            assert!(
                cost <= rww_epoch_bound(epochs),
                "cost {cost} exceeds 5*{epochs}+5"
            );
        }
    }
}
