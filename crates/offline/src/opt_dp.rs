//! The optimal offline lease-based algorithm OPT, as an exact per-edge
//! dynamic program.
//!
//! Lemma 3.9 decomposes the cost of any lease-based algorithm into the
//! per-ordered-pair costs `C(σ,u,v)`, and Figure 2 shows that the
//! per-pair cost depends only on how `u.granted[v]` evolves over
//! `σ'(u,v)`. An offline algorithm may steer that single bit freely
//! through the legal Figure-2 transitions, independently per ordered pair
//! — so the global offline optimum is the sum over ordered pairs of a
//! two-state shortest path.
//!
//! The noop slots of `σ'(u,v)` model the paper's charging scheme for
//! releases piggy-backed on writes of `σ(v,u)` (at most one release per
//! noop, Lemma 4.6).

use oat_core::request::{sigma, sigma_prime_of, EdgeEvent, Request};
use oat_core::tree::{NodeId, Tree};

use crate::cost_model::edge_cost;

/// Minimal Figure-2 cost of serving an `σ'(u,v)` event sequence, starting
/// from `granted = false` (the paper's initial quiescent state).
pub fn opt_edge_cost(events: &[EdgeEvent]) -> u64 {
    const INF: u64 = u64::MAX / 4;
    // dp[s] = cheapest cost so far ending with granted == (s == 1)
    let mut dp = [0u64, INF];
    for &ev in events {
        let mut next = [INF, INF];
        for (s, &cur) in dp.iter().enumerate() {
            if cur >= INF {
                continue;
            }
            for (t, slot) in next.iter_mut().enumerate() {
                if let Some(c) = edge_cost(s == 1, ev, t == 1) {
                    *slot = (*slot).min(cur + c);
                }
            }
        }
        dp = next;
    }
    dp[0].min(dp[1])
}

/// The chosen optimal state trajectory (granted values after each event),
/// reconstructed for diagnostics and the Figure-4 experiments.
pub fn opt_edge_trajectory(events: &[EdgeEvent]) -> (u64, Vec<bool>) {
    const INF: u64 = u64::MAX / 4;
    let n = events.len();
    let mut dp = vec![[INF; 2]; n + 1];
    let mut parent = vec![[0usize; 2]; n + 1];
    dp[0][0] = 0;
    for (i, &ev) in events.iter().enumerate() {
        for s in 0..2 {
            let cur = dp[i][s];
            if cur >= INF {
                continue;
            }
            for t in 0..2 {
                if let Some(c) = edge_cost(s == 1, ev, t == 1) {
                    if cur + c < dp[i + 1][t] {
                        dp[i + 1][t] = cur + c;
                        parent[i + 1][t] = s;
                    }
                }
            }
        }
    }
    let (mut s, cost) = if dp[n][0] <= dp[n][1] {
        (0, dp[n][0])
    } else {
        (1, dp[n][1])
    };
    let mut states = vec![false; n];
    for i in (0..n).rev() {
        states[i] = s == 1;
        s = parent[i + 1][s];
    }
    (cost, states)
}

/// The *realizable* per-edge optimum: like [`opt_edge_cost`] but without
/// the `(true, N, false)` noop-break row.
///
/// Figure 2 lets OPT drop a lease for one message during a request of
/// `σ(v,u)` — a release piggy-backed on unrelated traffic. The Figure-1
/// mechanism only emits releases from `forwardrelease`, which runs when a
/// node receives an `update` or a `release`; at a **leaf** (or on the
/// two-node tree) no such trigger exists during `σ(v,u)` requests, so the
/// noop break is not mechanically realizable there. This variant
/// restricts OPT to the transitions every topology can realise; the gap
/// between the two is reported by the ablation experiment. All of the
/// paper's bounds use the (more generous) [`opt_edge_cost`], so measured
/// ratios against it are conservative.
pub fn opt_edge_cost_realizable(events: &[EdgeEvent]) -> u64 {
    const INF: u64 = u64::MAX / 4;
    let mut dp = [0u64, INF];
    for &ev in events {
        let mut next = [INF, INF];
        for (s, &cur) in dp.iter().enumerate() {
            if cur >= INF {
                continue;
            }
            for (t, slot) in next.iter_mut().enumerate() {
                if ev == EdgeEvent::N && s == 1 && t == 0 {
                    continue; // the noop break, disallowed here
                }
                if let Some(c) = edge_cost(s == 1, ev, t == 1) {
                    *slot = (*slot).min(cur + c);
                }
            }
        }
        dp = next;
    }
    dp[0].min(dp[1])
}

/// Sum of [`opt_edge_cost_realizable`] over all ordered pairs.
pub fn opt_total_cost_realizable<V>(tree: &Tree, seq: &[Request<V>]) -> u64 {
    tree.dir_edges()
        .map(|(u, v)| opt_edge_cost_realizable(&sigma_prime_of(&sigma(tree, seq, u, v))))
        .sum()
}

/// `C_OPT(σ)`: the sum of per-ordered-pair optima over all directed
/// edges of the tree — the offline lease-based optimum for the whole
/// request sequence.
///
/// ```
/// use oat_core::{request::Request, tree::{NodeId, Tree}};
/// use oat_offline::opt_dp::opt_total_cost;
///
/// let tree = Tree::pair();
/// // R W W repeated: OPT never takes the lease and pays 2 per combine.
/// let mut seq = Vec::new();
/// for i in 0..10 {
///     seq.push(Request::combine(NodeId(1)));
///     seq.push(Request::write(NodeId(0), i));
///     seq.push(Request::write(NodeId(0), i + 1));
/// }
/// assert_eq!(opt_total_cost(&tree, &seq), 20);
/// ```
pub fn opt_total_cost<V>(tree: &Tree, seq: &[Request<V>]) -> u64 {
    tree.dir_edges()
        .map(|(u, v)| opt_pair_cost(tree, seq, u, v))
        .sum()
}

/// `C_OPT(σ, u, v)` for one ordered pair.
pub fn opt_pair_cost<V>(tree: &Tree, seq: &[Request<V>], u: NodeId, v: NodeId) -> u64 {
    let events = sigma_prime_of(&sigma(tree, seq, u, v));
    opt_edge_cost(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::EdgeEvent::*;

    /// Brute force over all 2^n state paths, for cross-checking the DP.
    fn brute_force(events: &[EdgeEvent]) -> u64 {
        fn rec(events: &[EdgeEvent], state: bool) -> u64 {
            match events.split_first() {
                None => 0,
                Some((&ev, rest)) => {
                    let mut best = u64::MAX;
                    for next in [false, true] {
                        if let Some(c) = edge_cost(state, ev, next) {
                            best = best.min(c + rec(rest, next));
                        }
                    }
                    best
                }
            }
        }
        rec(events, false)
    }

    #[test]
    fn dp_matches_brute_force_on_random_short_sequences() {
        let mut seed = 0xdeadbeefu64;
        for _ in 0..500 {
            let mut events = Vec::new();
            for _ in 0..12 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                events.push(match (seed >> 33) % 3 {
                    0 => R,
                    1 => W,
                    _ => N,
                });
            }
            assert_eq!(opt_edge_cost(&events), brute_force(&events), "{events:?}");
        }
    }

    #[test]
    fn opt_on_rww_cycle_is_two_per_cycle() {
        // R W W cycles: OPT never takes the lease and pays 2 per combine.
        let mut events = vec![N];
        for _ in 0..10 {
            events.extend([R, N, W, N, W, N]);
        }
        assert_eq!(opt_edge_cost(&events), 20);
    }

    #[test]
    fn opt_on_read_heavy_takes_lease() {
        // R R R R ... : pay 2 once, then free.
        let mut events = vec![N];
        for _ in 0..10 {
            events.extend([R, N]);
        }
        assert_eq!(opt_edge_cost(&events), 2);
    }

    #[test]
    fn opt_on_write_heavy_stays_leaseless() {
        let mut events = vec![N];
        for _ in 0..10 {
            events.extend([W, N]);
        }
        events.extend([R, N]);
        assert_eq!(opt_edge_cost(&events), 2, "writes free without lease");
    }

    #[test]
    fn opt_alternating_rw() {
        // (R W)^k: with lease: 2 + (1 per W, 0 per R) = 2 + k - ... vs
        // leaseless: 2 per R. For k cycles leaseless costs 2k; leased
        // costs 2 + k. Lease wins for k > 2.
        let mut events = vec![N];
        for _ in 0..10 {
            events.extend([R, N, W, N]);
        }
        assert_eq!(opt_edge_cost(&events), 2 + 10);
    }

    #[test]
    fn trajectory_reconstruction_is_consistent() {
        let events = vec![N, R, N, W, N, W, N, R, N];
        let (cost, states) = opt_edge_trajectory(&events);
        assert_eq!(cost, opt_edge_cost(&events));
        assert_eq!(states.len(), events.len());
        // Recompute the cost along the reconstructed path.
        let mut s = false;
        let mut total = 0;
        for (i, &ev) in events.iter().enumerate() {
            total += edge_cost(s, ev, states[i]).expect("legal transition");
            s = states[i];
        }
        assert_eq!(total, cost);
    }

    #[test]
    fn realizable_opt_never_below_opt_and_differs_on_noop_breaks() {
        // Realizable OPT is a restriction, so always ≥ OPT; they differ
        // exactly when the noop break pays off, e.g. the (2,4)
        // adversary: 2 R's then 4 W's per cycle. OPT per cycle:
        // set (2) + ride the R's (0) + break on noop (1) = 3; realizable
        // must either stay leaseless (4) or hold through writes (4).
        let mut events = vec![N];
        for _ in 0..10 {
            for _ in 0..2 {
                events.extend([R, N]);
            }
            for _ in 0..4 {
                events.extend([W, N]);
            }
        }
        let opt = opt_edge_cost(&events);
        let real = opt_edge_cost_realizable(&events);
        assert!(real >= opt);
        assert_eq!(opt, 30, "3 per cycle");
        assert_eq!(real, 40, "4 per cycle without noop breaks");

        // On the RWW adversary they coincide (the noop break never pays).
        let mut events = vec![N];
        for _ in 0..10 {
            events.extend([R, N, W, N, W, N]);
        }
        assert_eq!(opt_edge_cost(&events), opt_edge_cost_realizable(&events));
    }

    #[test]
    fn realizable_matches_brute_force_without_noop_breaks() {
        fn brute(events: &[EdgeEvent], state: bool) -> u64 {
            match events.split_first() {
                None => 0,
                Some((&ev, rest)) => {
                    let mut best = u64::MAX;
                    for next in [false, true] {
                        if ev == EdgeEvent::N && state && !next {
                            continue;
                        }
                        if let Some(c) = edge_cost(state, ev, next) {
                            best = best.min(c + brute(rest, next));
                        }
                    }
                    best
                }
            }
        }
        let mut seed = 99u64;
        for _ in 0..200 {
            let mut events = Vec::new();
            for _ in 0..12 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(17);
                events.push(match (seed >> 33) % 3 {
                    0 => R,
                    1 => W,
                    _ => N,
                });
            }
            assert_eq!(
                opt_edge_cost_realizable(&events),
                brute(&events, false),
                "{events:?}"
            );
        }
    }

    #[test]
    fn opt_total_on_pair_tree() {
        use oat_core::tree::Tree;
        let tree = Tree::pair();
        let u = NodeId(0);
        let v = NodeId(1);
        let seq = vec![
            Request::combine(v),
            Request::write(u, 1i64),
            Request::write(u, 2),
            Request::combine(v),
        ];
        // σ(0,1) = R? Let's see: combines at 1 are in subtree(1,0); writes
        // at 0 in subtree(0,1): events R W W R. OPT: leaseless, 2 per R = 4.
        assert_eq!(opt_pair_cost(&tree, &seq, u, v), 4);
        // σ(1,0): writes at 0 are not in subtree(1,0); combines at 1 are
        // not in subtree(0,1): empty. Cost 0.
        assert_eq!(opt_pair_cost(&tree, &seq, v, u), 0);
        assert_eq!(opt_total_cost(&tree, &seq), 4);
    }
}
