//! Online flush policies behind the [`FlushPolicy`] trait.
//!
//! A policy is a decision automaton: the engine calls
//! [`FlushPolicy::decide`] after every arrival batch and at every
//! wake-up the policy previously requested, and the policy answers with
//! a [`Decision`]. Policies never mutate the world directly — flushing,
//! cost accounting, and request bookkeeping are the engine's job — so
//! the same policy value can be replayed deterministically under any
//! schedule.

use oat_core::tree::NodeId;

use crate::instance::MlapInstance;

/// A request still waiting for service, as shown to policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pending {
    /// Node the request is pending at.
    pub node: NodeId,
    /// Arrival time.
    pub arrival: u64,
    /// Deadline, when the instance has them.
    pub deadline: Option<u64>,
}

/// What a policy wants to do at a decision point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Flush the minimal root subtree spanning these nodes. The engine
    /// closes the set upward (root and all ancestors included) and
    /// serves *every* pending request at a flushed node — free riders
    /// included.
    Flush(Vec<NodeId>),
    /// Sleep until the given time, unless new requests arrive first (an
    /// arrival always re-invokes `decide`).
    WakeAt(u64),
    /// Nothing to do until the next arrival.
    Idle,
}

/// An online MLAP algorithm.
pub trait FlushPolicy {
    /// Stable policy name, used in reports and JSON.
    fn name(&self) -> &'static str;

    /// Chooses an action at time `now` given the live request set.
    /// Called after every arrival batch and every requested wake-up;
    /// called again immediately after each flush it issues, so a policy
    /// may flush repeatedly before yielding with `WakeAt`/`Idle`.
    fn decide(&mut self, now: u64, pending: &[Pending], inst: &MlapInstance) -> Decision;
}

/// Flush the span of all pending requests the moment they arrive.
/// Zero delay and zero misses, maximal service cost — the upper
/// baseline, analogous to pull-all/push-all for the lease problem.
pub struct EagerFlush;

impl FlushPolicy for EagerFlush {
    fn name(&self) -> &'static str {
        "eager"
    }

    fn decide(&mut self, _now: u64, pending: &[Pending], _inst: &MlapInstance) -> Decision {
        if pending.is_empty() {
            Decision::Idle
        } else {
            Decision::Flush(pending.iter().map(|p| p.node).collect())
        }
    }
}

/// The lazy deadline-triggered policy at the core of the Buchbinder et
/// al. `O(depth)` scheme (arXiv:1701.01936): sleep until the earliest
/// pending deadline, then flush the span of every request that is due,
/// serving all other pending requests on the flushed subtree for free.
///
/// On **unit-weight** deadline instances this is `(depth+1)`-competitive
/// outright: each trigger pays at most `depth+1` per expiring
/// `(node, time)` event, and consecutive expiry events at one node force
/// disjoint service windows on OPT (DESIGN.md §13). With
/// [`OdepthDeadline::with_prefetch`] the flush additionally pulls in
/// future-deadline requests while their marginal path weight fits
/// within the mandatory flush's own weight — the budgeted prefetch that
/// the weighted-tree analysis of the paper relies on.
pub struct OdepthDeadline {
    prefetch: bool,
}

impl OdepthDeadline {
    /// The plain lazy policy (the `(depth+1)`-certified one on unit
    /// weights).
    pub fn new() -> Self {
        OdepthDeadline { prefetch: false }
    }

    /// Lazy triggers plus weight-budgeted prefetch of future requests.
    pub fn with_prefetch() -> Self {
        OdepthDeadline { prefetch: true }
    }
}

impl Default for OdepthDeadline {
    fn default() -> Self {
        OdepthDeadline::new()
    }
}

impl FlushPolicy for OdepthDeadline {
    fn name(&self) -> &'static str {
        if self.prefetch {
            "odepth-prefetch"
        } else {
            "odepth"
        }
    }

    fn decide(&mut self, now: u64, pending: &[Pending], inst: &MlapInstance) -> Decision {
        let Some(dmin) = pending.iter().filter_map(|p| p.deadline).min() else {
            // No deadlines to trigger on (a delay instance): stay lazy;
            // the engine's terminal sweep serves whatever remains.
            return Decision::Idle;
        };
        if dmin > now {
            return Decision::WakeAt(dmin);
        }
        let mut targets: Vec<NodeId> = pending
            .iter()
            .filter(|p| p.deadline.is_some_and(|d| d <= now))
            .map(|p| p.node)
            .collect();
        if self.prefetch {
            // Budget = the mandatory flush's own weight; spend it on
            // not-yet-covered requests in deadline order, each paying
            // its marginal path extension.
            let mut mask = inst.close_upward(&targets);
            let mut budget = inst.mask_weight(&mask);
            let mut future: Vec<&Pending> =
                pending.iter().filter(|p| !mask[p.node.idx()]).collect();
            future.sort_by_key(|p| (p.deadline, p.arrival, p.node.idx()));
            for p in future {
                if mask[p.node.idx()] {
                    continue;
                }
                let mut ext = Vec::new();
                let mut u = p.node;
                while !mask[u.idx()] {
                    ext.push(u);
                    u = inst.parent(u).unwrap_or(u);
                }
                let marginal: u64 = ext.iter().map(|v| inst.weight[v.idx()]).sum();
                if marginal <= budget {
                    budget -= marginal;
                    for v in ext {
                        mask[v.idx()] = true;
                    }
                    targets.push(p.node);
                }
            }
        }
        Decision::Flush(targets)
    }
}

/// The single-phase delay-balance rule from the MLAP-L line of work
/// (arXiv:1507.02378): wait until the accumulated delay of the pending
/// set pays for the weight of its span, then flush the whole span. On
/// deadline instances the trigger is capped by the earliest pending
/// deadline, so the policy stays feasible there too.
pub struct GreedyDelay;

impl FlushPolicy for GreedyDelay {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide(&mut self, now: u64, pending: &[Pending], inst: &MlapInstance) -> Decision {
        if pending.is_empty() {
            return Decision::Idle;
        }
        let dmin = pending.iter().filter_map(|p| p.deadline).min();
        let all: Vec<NodeId> = pending.iter().map(|p| p.node).collect();
        let span = inst.span_cost(&all);
        let accumulated: u64 = pending.iter().map(|p| now.saturating_sub(p.arrival)).sum();
        if accumulated >= span || dmin.is_some_and(|d| d <= now) {
            return Decision::Flush(all);
        }
        // Delay grows by |pending| per tick; wake when it first covers
        // the span weight (or at the earliest deadline, if sooner).
        let slope = pending.len() as u64;
        let wake = now + (span - accumulated).div_ceil(slope).max(1);
        Decision::WakeAt(dmin.map_or(wake, |d| wake.min(d)))
    }
}

/// Parses a policy spec string: `eager` | `odepth` | `odepth-prefetch`
/// | `greedy`.
pub fn parse_flush_policy(spec: &str) -> Result<Box<dyn FlushPolicy>, String> {
    match spec {
        "eager" => Ok(Box::new(EagerFlush)),
        "odepth" => Ok(Box::new(OdepthDeadline::new())),
        "odepth-prefetch" => Ok(Box::new(OdepthDeadline::with_prefetch())),
        "greedy" => Ok(Box::new(GreedyDelay)),
        _ => Err(format!(
            "bad mlap policy `{spec}` (want eager | odepth | odepth-prefetch | greedy)"
        )),
    }
}

/// Every built-in policy, in display order.
pub fn all_policies() -> Vec<Box<dyn FlushPolicy>> {
    vec![
        Box::new(OdepthDeadline::new()),
        Box::new(OdepthDeadline::with_prefetch()),
        Box::new(GreedyDelay),
        Box::new(EagerFlush),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CostModel;
    use oat_core::tree::Tree;

    fn pend(node: u32, arrival: u64, deadline: Option<u64>) -> Pending {
        Pending {
            node: NodeId(node),
            arrival,
            deadline,
        }
    }

    fn inst() -> MlapInstance {
        MlapInstance::unit(Tree::kary(7, 2), CostModel::Deadline, vec![]).unwrap()
    }

    #[test]
    fn odepth_sleeps_until_first_deadline_then_flushes_the_due_set() {
        let inst = inst();
        let mut p = OdepthDeadline::new();
        assert_eq!(p.decide(0, &[], &inst), Decision::Idle);
        let pending = [pend(3, 0, Some(5)), pend(5, 0, Some(9))];
        assert_eq!(p.decide(0, &pending, &inst), Decision::WakeAt(5));
        assert_eq!(
            p.decide(5, &pending, &inst),
            Decision::Flush(vec![NodeId(3)])
        );
    }

    #[test]
    fn prefetch_spends_the_flush_weight_on_future_requests() {
        // Due request at node 3 (span {0,1,3}, weight 3 = budget);
        // future request at node 4 costs a marginal 1 → prefetched;
        // node 5 then costs marginal 2 ({2,5}) → also fits; nothing
        // remains for more.
        let inst = inst();
        let mut p = OdepthDeadline::with_prefetch();
        let pending = [
            pend(3, 0, Some(5)),
            pend(4, 0, Some(9)),
            pend(5, 0, Some(12)),
        ];
        match p.decide(5, &pending, &inst) {
            Decision::Flush(t) => {
                assert_eq!(t, vec![NodeId(3), NodeId(4), NodeId(5)]);
            }
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn greedy_waits_for_delay_to_cover_the_span() {
        let inst = inst();
        let mut p = GreedyDelay;
        // One pending request at node 3: span weight 3, slope 1 → the
        // balance point is arrival + 3.
        let pending = [pend(3, 10, None)];
        assert_eq!(p.decide(10, &pending, &inst), Decision::WakeAt(13));
        assert_eq!(
            p.decide(13, &pending, &inst),
            Decision::Flush(vec![NodeId(3)])
        );
    }

    #[test]
    fn greedy_caps_its_wake_at_the_earliest_deadline() {
        let inst = inst();
        let mut p = GreedyDelay;
        let pending = [pend(3, 10, Some(11))];
        assert_eq!(p.decide(10, &pending, &inst), Decision::WakeAt(11));
        assert_eq!(
            p.decide(11, &pending, &inst),
            Decision::Flush(vec![NodeId(3)])
        );
    }

    #[test]
    fn spec_parsing_roundtrips_names() {
        for name in ["eager", "odepth", "odepth-prefetch", "greedy"] {
            assert_eq!(parse_flush_policy(name).unwrap().name(), name);
        }
        assert!(parse_flush_policy("nope").is_err());
        assert_eq!(all_policies().len(), 4);
    }
}
