//! Deterministic MLAP runs on the shared `oat-sim` event loop.
//!
//! [`run_mlap`] drives one [`FlushPolicy`] over one [`MlapInstance`]:
//! arrivals and policy wake-ups are queued on an
//! [`oat_sim::eventloop::EventQueue`], all events at one tick are
//! drained before the policy decides (so outcomes are independent of
//! the schedule's tie-breaking — a property the tests verify under
//! seeded random schedules), and every flush is accounted at the
//! instance's cost model. When tracing is installed, arrivals emit
//! `sim_initiate` (`c`=2) and each flushed edge emits `sim_deliver`
//! (`c`=4) oat-obs events, so MLAP runs show up in `oat`'s `sim`
//! category alongside lease runs.

use std::collections::{BTreeMap, BTreeSet};

use oat_core::tree::NodeId;
use oat_sim::eventloop::EventQueue;
use oat_sim::Schedule;

use crate::instance::{CostModel, MlapInstance};
use crate::policy::{Decision, FlushPolicy, Pending};

/// One service (flush) performed during a run.
#[derive(Clone, Copy, Debug)]
pub struct FlushRecord {
    /// Tick the flush happened at.
    pub at: u64,
    /// Nodes in the flushed subtree.
    pub nodes: u32,
    /// Service cost (weight of the flushed subtree).
    pub cost: u64,
    /// Requests served by this flush.
    pub served: u32,
}

/// The measured outcome of one policy on one instance.
#[derive(Clone, Debug)]
pub struct MlapRun {
    /// Policy name.
    pub policy: String,
    /// Total service cost across flushes.
    pub service_cost: u64,
    /// Total linear delay cost (always 0 on deadline instances).
    pub delay_cost: u64,
    /// Requests served strictly after their deadline.
    pub deadline_misses: u64,
    /// Requests served (equals the instance's request count: the engine
    /// force-serves leftovers at the horizon).
    pub served: u64,
    /// Flush messages: one per non-root node of each flushed subtree
    /// (each flushed node forwards one aggregate to its parent).
    pub messages: u64,
    /// Every flush, in time order.
    pub flushes: Vec<FlushRecord>,
}

impl MlapRun {
    /// Service plus delay cost — the quantity compared against OPT.
    pub fn total_cost(&self) -> u64 {
        self.service_cost + self.delay_cost
    }
}

enum Ev {
    /// All requests arriving at this tick enter the pending set.
    Arrive,
    /// A wake-up previously requested by the policy.
    Wake,
}

struct RunState {
    pending: Vec<Pending>,
    service_cost: u64,
    delay_cost: u64,
    deadline_misses: u64,
    served: u64,
    messages: u64,
    flushes: Vec<FlushRecord>,
}

impl RunState {
    /// Performs one flush at tick `t`: closes `targets` upward, pays the
    /// subtree weight, serves every pending request on it. Returns the
    /// number of requests served.
    fn flush(&mut self, t: u64, targets: &[NodeId], inst: &MlapInstance) -> u32 {
        let mask = inst.close_upward(targets);
        let cost = inst.mask_weight(&mask);
        let nodes = mask.iter().filter(|m| **m).count() as u32;
        self.service_cost += cost;
        self.messages += u64::from(nodes) - 1;
        for (i, in_flush) in mask.iter().enumerate() {
            if *in_flush && i != 0 {
                let parent = inst.parent(NodeId(i as u32)).expect("non-root has parent");
                oat_obs::trace_event!(oat_obs::EventKind::SimDeliver, i as u32, parent.0, 4u64);
            }
        }
        let mut served = 0u32;
        self.pending.retain(|p| {
            if !mask[p.node.idx()] {
                return true;
            }
            served += 1;
            match inst.model {
                CostModel::LinearDelay => self.delay_cost += t - p.arrival,
                CostModel::Deadline => {
                    if p.deadline.is_some_and(|d| t > d) {
                        self.deadline_misses += 1;
                    }
                }
            }
            false
        });
        self.served += u64::from(served);
        self.flushes.push(FlushRecord {
            at: t,
            nodes,
            cost,
            served,
        });
        served
    }
}

/// Runs `policy` over `inst` under `schedule` and returns the full cost
/// accounting. Deterministic in `(inst, policy, schedule)`; for any
/// correct policy the result is the same under every schedule, because
/// all same-tick events are drained before each decision point.
pub fn run_mlap(inst: &MlapInstance, policy: &mut dyn FlushPolicy, schedule: Schedule) -> MlapRun {
    let mut arrivals: BTreeMap<u64, Vec<Pending>> = BTreeMap::new();
    for r in &inst.requests {
        arrivals.entry(r.arrival).or_default().push(Pending {
            node: r.node,
            arrival: r.arrival,
            deadline: r.deadline,
        });
    }
    let mut queue: EventQueue<Ev> = EventQueue::new(schedule);
    for &t in arrivals.keys() {
        queue.push(t, Ev::Arrive);
    }
    let mut scheduled_wakes: BTreeSet<u64> = BTreeSet::new();
    let mut state = RunState {
        pending: Vec::new(),
        service_cost: 0,
        delay_cost: 0,
        deadline_misses: 0,
        served: 0,
        messages: 0,
        flushes: Vec::new(),
    };
    while let Some(now) = queue.next_time() {
        // Drain every event at this tick before deciding, so the
        // policy sees one consistent batch regardless of tie order.
        while queue.next_time() == Some(now) {
            match queue.pop().expect("peeked").1 {
                Ev::Arrive => {
                    for p in arrivals.remove(&now).into_iter().flatten() {
                        oat_obs::trace_event!(oat_obs::EventKind::SimInitiate, p.node.0, 0, 2u64);
                        state.pending.push(p);
                    }
                }
                Ev::Wake => {
                    scheduled_wakes.remove(&now);
                }
            }
        }
        loop {
            match policy.decide(now, &state.pending, inst) {
                Decision::Idle => break,
                Decision::WakeAt(at) => {
                    // Clamp into the future so a confused policy cannot
                    // livelock the loop; dedupe repeated wake times.
                    let at = at.max(now + 1);
                    if scheduled_wakes.insert(at) {
                        queue.push(at, Ev::Wake);
                    }
                    break;
                }
                Decision::Flush(targets) => {
                    // A flush that serves nothing still costs, but ends
                    // the decision loop: nothing changed for the policy.
                    if state.flush(now, &targets, inst) == 0 {
                        break;
                    }
                }
            }
        }
    }
    // Terminal sweep: a policy may leave requests pending forever (e.g.
    // a deadline policy on a delay instance). Force-serve them with one
    // flush at the horizon so every run is total and comparable to OPT.
    if !state.pending.is_empty() {
        let horizon = state
            .pending
            .iter()
            .map(|p| p.deadline.unwrap_or(p.arrival))
            .max()
            .expect("non-empty");
        let targets: Vec<NodeId> = state.pending.iter().map(|p| p.node).collect();
        state.flush(horizon, &targets, inst);
    }
    MlapRun {
        policy: policy.name().to_string(),
        service_cost: state.service_cost,
        delay_cost: state.delay_cost,
        deadline_misses: state.deadline_misses,
        served: state.served,
        messages: state.messages,
        flushes: state.flushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EagerFlush, GreedyDelay, OdepthDeadline};
    use crate::MlapRequest;
    use oat_core::tree::Tree;

    fn req(node: u32, arrival: u64, deadline: Option<u64>) -> MlapRequest {
        MlapRequest {
            node: NodeId(node),
            arrival,
            deadline,
        }
    }

    #[test]
    fn odepth_merges_requests_sharing_a_deadline_tick() {
        // path(4): 0-1-2-3. Requests at 2 and 3, both due at t=5: one
        // flush of {0,1,2,3} (cost 4), no misses.
        let inst = MlapInstance::unit(
            Tree::path(4),
            CostModel::Deadline,
            vec![req(2, 0, Some(5)), req(3, 1, Some(5))],
        )
        .unwrap();
        let run = run_mlap(&inst, &mut OdepthDeadline::new(), Schedule::Fifo);
        assert_eq!(run.flushes.len(), 1);
        assert_eq!(run.flushes[0].at, 5);
        assert_eq!(run.service_cost, 4);
        assert_eq!(run.messages, 3);
        assert_eq!((run.deadline_misses, run.served), (0, 2));
    }

    #[test]
    fn odepth_free_rides_later_requests_on_the_flushed_subtree() {
        // Second request at node 3 is due at 9, but the t=5 flush for
        // node 3's first request already serves it.
        let inst = MlapInstance::unit(
            Tree::path(4),
            CostModel::Deadline,
            vec![req(3, 0, Some(5)), req(3, 2, Some(9))],
        )
        .unwrap();
        let run = run_mlap(&inst, &mut OdepthDeadline::new(), Schedule::Fifo);
        assert_eq!(run.flushes.len(), 1);
        assert_eq!(run.service_cost, 4);
        assert_eq!(run.served, 2);
    }

    #[test]
    fn eager_pays_per_arrival_batch() {
        let inst = MlapInstance::unit(
            Tree::path(3),
            CostModel::LinearDelay,
            vec![req(2, 0, None), req(2, 7, None)],
        )
        .unwrap();
        let run = run_mlap(&inst, &mut EagerFlush, Schedule::Fifo);
        assert_eq!(run.flushes.len(), 2);
        assert_eq!(run.service_cost, 6);
        assert_eq!(run.delay_cost, 0, "eager serves at arrival");
    }

    #[test]
    fn greedy_balances_delay_against_span_weight() {
        // One request at node 2 of path(3): span weight 3, so greedy
        // serves at arrival+3 with delay 3, total 3+3=6. (OPT-L pays
        // 3 by flushing at arrival — greedy's 2x is the balance rule.)
        let inst = MlapInstance::unit(
            Tree::path(3),
            CostModel::LinearDelay,
            vec![req(2, 10, None)],
        )
        .unwrap();
        let run = run_mlap(&inst, &mut GreedyDelay, Schedule::Fifo);
        assert_eq!(run.flushes.len(), 1);
        assert_eq!(run.flushes[0].at, 13);
        assert_eq!((run.service_cost, run.delay_cost), (3, 3));
    }

    #[test]
    fn terminal_sweep_serves_what_lazy_policies_leave() {
        // odepth on a delay instance never triggers; the engine serves
        // the leftovers in one horizon flush.
        let inst = MlapInstance::unit(
            Tree::path(3),
            CostModel::LinearDelay,
            vec![req(1, 2, None), req(2, 4, None)],
        )
        .unwrap();
        let run = run_mlap(&inst, &mut OdepthDeadline::new(), Schedule::Fifo);
        assert_eq!(run.flushes.len(), 1);
        assert_eq!(run.flushes[0].at, 4);
        assert_eq!(run.served, 2);
        assert_eq!(run.delay_cost, 2, "(4-2) + (4-4)");
    }

    #[test]
    fn results_are_schedule_independent() {
        let inst = MlapInstance::unit(
            Tree::kary(7, 2),
            CostModel::Deadline,
            vec![
                req(3, 0, Some(2)),
                req(5, 0, Some(2)),
                req(6, 1, Some(4)),
                req(4, 2, Some(2)),
            ],
        )
        .unwrap();
        let fifo = run_mlap(&inst, &mut OdepthDeadline::new(), Schedule::Fifo);
        for seed in 0..5 {
            let r = run_mlap(&inst, &mut OdepthDeadline::new(), Schedule::Random(seed));
            assert_eq!(r.service_cost, fifo.service_cost, "seed {seed}");
            assert_eq!(r.deadline_misses, fifo.deadline_misses);
            assert_eq!(r.flushes.len(), fifo.flushes.len());
        }
    }
}
