//! # oat-mlap — Multi-Level Aggregation over trees
//!
//! A second online problem family on the same rooted-tree substrate as
//! the lease mechanism. In **MLAP** (Bienkowski et al., arXiv:1507.02378)
//! requests arrive at tree nodes over time and must be propagated to the
//! root by *flushes*: a flush at time `t` transmits any subtree `S`
//! containing the root, pays **service cost** `w(S)` (the sum of the
//! node weights in `S`), and serves every request pending at a node of
//! `S`. Two cost models:
//!
//! * **MLAP-D** (deadline): every request carries a hard deadline; the
//!   total cost is pure service cost and a schedule is feasible when no
//!   request is served after its deadline. Buchbinder, Feldman, Naor and
//!   Talmon (arXiv:1701.01936) give an `O(depth)`-competitive online
//!   algorithm; our [`OdepthDeadline`] policy is the lazy deadline-
//!   triggered core of that scheme, which on **unit-weight** trees is
//!   `(depth+1)`-competitive with a short per-instance certificate (see
//!   `DESIGN.md` §13 for the proof sketch), plus an optional budgeted
//!   prefetch for weighted trees.
//! * **MLAP-L** (linear delay): no deadlines; the total cost is service
//!   cost plus, per request, the time between arrival and service. The
//!   [`GreedyDelay`] policy is the single-phase balance rule: flush the
//!   span of all pending requests once their accumulated delay pays for
//!   it.
//!
//! Policies implement [`FlushPolicy`] — a decision automaton queried at
//! every arrival batch and self-scheduled wake-up — and run under
//! [`run_mlap`] on the deterministic `oat-sim` event loop
//! ([`oat_sim::eventloop::EventQueue`]), so outcomes are reproducible
//! and schedule-independent. The exact offline optimum for small
//! instances lives in `oat-offline::mlap_opt`; instance generators live
//! in `oat-workloads::mlap`; `oat mlap` is the CLI entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod instance;
pub mod policy;

pub use engine::{run_mlap, FlushRecord, MlapRun};
pub use instance::{CostModel, MlapInstance, MlapRequest};
pub use policy::{
    all_policies, parse_flush_policy, Decision, EagerFlush, FlushPolicy, GreedyDelay,
    OdepthDeadline, Pending,
};
