//! MLAP problem instances: a weighted tree rooted at node 0 plus timed
//! requests.

use oat_core::tree::{NodeId, Tree};

/// Which cost the algorithm pays on top of service cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// MLAP-D: every request carries a hard deadline. Total cost is pure
    /// service cost; serving a request strictly after its deadline is a
    /// *miss* (an infeasibility, counted rather than priced).
    Deadline,
    /// MLAP-L: no deadlines. Total cost is service cost plus, per
    /// request, `t_served − t_arrival`.
    LinearDelay,
}

impl CostModel {
    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CostModel::Deadline => "deadline",
            CostModel::LinearDelay => "delay",
        }
    }
}

/// One aggregation request: arrives at `node` at `arrival` and is served
/// by the first flush whose subtree contains `node` at a time ≥
/// `arrival`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MlapRequest {
    /// Node the request arrives at.
    pub node: NodeId,
    /// Arrival time (abstract ticks).
    pub arrival: u64,
    /// Hard deadline (`Some` on [`CostModel::Deadline`] instances,
    /// ignored on [`CostModel::LinearDelay`]).
    pub deadline: Option<u64>,
}

/// A complete MLAP instance. The tree is rooted at [`NodeId`] 0 — the
/// same canonical rooting as the lease mechanism.
pub struct MlapInstance {
    /// Topology (rooted at node 0).
    pub tree: Tree,
    /// Per-node service weight, indexed by [`NodeId::idx`].
    pub weight: Vec<u64>,
    /// Cost model of this instance.
    pub model: CostModel,
    /// The request sequence (any order; the engine sorts by arrival).
    pub requests: Vec<MlapRequest>,
    /// Parent pointers toward the root (`parent[0] == 0`).
    parent: Vec<NodeId>,
    /// Root-path edge counts per node (`node_depth[0] == 0`).
    node_depth: Vec<u32>,
}

impl MlapInstance {
    /// Builds and validates an instance. Errors on a weight/topology
    /// size mismatch, a request at a nonexistent node, a deadline
    /// before its arrival, or a missing deadline on a
    /// [`CostModel::Deadline`] instance.
    pub fn new(
        tree: Tree,
        weight: Vec<u64>,
        model: CostModel,
        requests: Vec<MlapRequest>,
    ) -> Result<Self, String> {
        if weight.len() != tree.len() {
            return Err(format!(
                "weight vector has {} entries for a {}-node tree",
                weight.len(),
                tree.len()
            ));
        }
        for (i, r) in requests.iter().enumerate() {
            if r.node.idx() >= tree.len() {
                return Err(format!("request {i} at nonexistent node {}", r.node));
            }
            match (model, r.deadline) {
                (CostModel::Deadline, None) => {
                    return Err(format!(
                        "request {i} lacks a deadline on a deadline instance"
                    ))
                }
                (CostModel::Deadline, Some(d)) if d < r.arrival => {
                    return Err(format!(
                        "request {i} has deadline {d} before arrival {}",
                        r.arrival
                    ))
                }
                _ => {}
            }
        }
        let root = NodeId(0);
        let n = tree.len();
        let mut parent = vec![root; n];
        let mut node_depth = vec![0u32; n];
        // BFS from the root fills parents and depths in one pass.
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = vec![false; n];
        seen[root.idx()] = true;
        while let Some(u) = queue.pop_front() {
            for &v in tree.nbrs(u) {
                if !seen[v.idx()] {
                    seen[v.idx()] = true;
                    parent[v.idx()] = u;
                    node_depth[v.idx()] = node_depth[u.idx()] + 1;
                    queue.push_back(v);
                }
            }
        }
        Ok(MlapInstance {
            tree,
            weight,
            model,
            requests,
            parent,
            node_depth,
        })
    }

    /// Unit-weight convenience constructor.
    pub fn unit(tree: Tree, model: CostModel, requests: Vec<MlapRequest>) -> Result<Self, String> {
        let w = vec![1; tree.len()];
        MlapInstance::new(tree, w, model, requests)
    }

    /// The parent of `u` toward the root; `None` for the root itself.
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        (u != NodeId(0)).then(|| self.parent[u.idx()])
    }

    /// Root-path edge count of `u`.
    pub fn node_depth(&self, u: NodeId) -> u32 {
        self.node_depth[u.idx()]
    }

    /// Tree depth in edges (maximum over nodes).
    pub fn depth(&self) -> u32 {
        self.node_depth.iter().copied().max().unwrap_or(0)
    }

    /// Closes `targets` upward into a root subtree: returns a node mask
    /// containing the root, every target, and every ancestor of a
    /// target — the minimal flushable subtree covering `targets`.
    pub fn close_upward(&self, targets: &[NodeId]) -> Vec<bool> {
        let mut mask = vec![false; self.tree.len()];
        mask[0] = true;
        for &t in targets {
            let mut u = t;
            while !mask[u.idx()] {
                mask[u.idx()] = true;
                u = self.parent[u.idx()];
            }
        }
        mask
    }

    /// Total weight of the nodes set in `mask`.
    pub fn mask_weight(&self, mask: &[bool]) -> u64 {
        mask.iter()
            .zip(&self.weight)
            .filter(|(m, _)| **m)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Service cost of the minimal root subtree covering `targets`.
    pub fn span_cost(&self, targets: &[NodeId]) -> u64 {
        self.mask_weight(&self.close_upward(targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(node: u32, arrival: u64, deadline: Option<u64>) -> MlapRequest {
        MlapRequest {
            node: NodeId(node),
            arrival,
            deadline,
        }
    }

    #[test]
    fn construction_validates() {
        let t = Tree::path(3);
        assert!(
            MlapInstance::unit(t.clone(), CostModel::Deadline, vec![req(2, 0, Some(4))]).is_ok()
        );
        // Missing deadline on a deadline instance.
        assert!(MlapInstance::unit(t.clone(), CostModel::Deadline, vec![req(2, 0, None)]).is_err());
        // Deadline before arrival.
        assert!(
            MlapInstance::unit(t.clone(), CostModel::Deadline, vec![req(2, 5, Some(4))]).is_err()
        );
        // Bad node.
        assert!(
            MlapInstance::unit(t.clone(), CostModel::LinearDelay, vec![req(9, 0, None)]).is_err()
        );
        // Weight size mismatch.
        assert!(MlapInstance::new(t, vec![1, 1], CostModel::LinearDelay, vec![]).is_err());
    }

    #[test]
    fn parents_depths_and_spans_on_a_kary_tree() {
        let inst = MlapInstance::unit(Tree::kary(7, 2), CostModel::LinearDelay, vec![]).unwrap();
        // kary(7,2): 0 → {1,2}, 1 → {3,4}, 2 → {5,6}.
        assert_eq!(inst.parent(NodeId(0)), None);
        assert_eq!(inst.parent(NodeId(5)), Some(NodeId(2)));
        assert_eq!(inst.node_depth(NodeId(6)), 2);
        assert_eq!(inst.depth(), 2);
        // Span of {3}: nodes {0,1,3}.
        assert_eq!(inst.span_cost(&[NodeId(3)]), 3);
        // Span of {3,4}: nodes {0,1,3,4}; of {3,5}: {0,1,2,3,5}.
        assert_eq!(inst.span_cost(&[NodeId(3), NodeId(4)]), 4);
        assert_eq!(inst.span_cost(&[NodeId(3), NodeId(5)]), 5);
        // Empty targets still cost the root.
        assert_eq!(inst.span_cost(&[]), 1);
    }

    #[test]
    fn weighted_span_cost() {
        let inst = MlapInstance::new(
            Tree::path(4),
            vec![0, 5, 2, 7],
            CostModel::LinearDelay,
            vec![],
        )
        .unwrap();
        assert_eq!(inst.span_cost(&[NodeId(3)]), 14);
        assert_eq!(inst.span_cost(&[NodeId(1)]), 5);
    }
}
