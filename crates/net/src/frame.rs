//! Length-prefixed framing over TCP.
//!
//! Every frame is `[u32 length (LE)][u8 tag][payload]`, where `length`
//! counts the tag byte plus the payload. Payload encodings reuse the
//! [`oat_core::wire`] helpers, so the aggregate-value encoding on an edge
//! is byte-identical to [`Message::encode_wire`](oat_core::Message).
//!
//! Tag space:
//!
//! | tag | frame              | payload                              |
//! |-----|--------------------|--------------------------------------|
//! | 0   | hello (edge peer)  | `u32` node id, `u64` rx watermark    |
//! | 1   | hello (client)     | empty                                |
//! | 2   | net message        | *(legacy; edges now use tag 9)*      |
//! | 3   | combine request    | `u64` request id                     |
//! | 4   | write request      | `u64` request id, `V`                |
//! | 5   | combine response   | `u64` request id, `V`                |
//! | 6   | write ack          | `u64` request id                     |
//! | 7   | metrics request    | `u64` request id                     |
//! | 8   | metrics response   | `u64` request id, [`NodeMetrics`]    |
//! | 9   | sequenced edge     | `u64` seq, `u8` inner tag, body      |
//! | 10  | cumulative ack     | `u64` highest in-order seq received  |
//! | 11  | batch request      | `u32` count, then count items        |
//! | 12  | batch response     | `u32` count, then count items        |
//! | 13  | combine request (tree) | `u64` request id, `u32` tree id  |
//! | 14  | write request (tree)   | `u64` request id, `u32` tree id, `V` |
//! | 15  | subscribe          | `u64` sub id, `u32` tree id          |
//! | 16  | partial (pushed)   | `u64` sub id, `u32` tree id, `u64` refine seq, `V` |
//!
//! A batch item is `[u8 tag][u32 len (LE)][len payload bytes]`, where
//! the tag/payload pair is byte-identical to the standalone frame it
//! stands for (tags 3/4/13/14 inside a batch request; 5/6 inside a batch
//! response). Batching changes only the outer framing — one syscall
//! carries N requests and one carries N responses — never the item
//! encodings, so req-id matching, timeout retry, and idempotent
//! re-sends keep working unchanged. Batch responses stream: the node
//! emits completed members at every flush boundary rather than holding
//! the roster behind its slowest member, so one `TAG_REQ_BATCH` may be
//! answered by several `TAG_RESP_BATCH` frames whose items concatenate
//! to the full roster.
//!
//! ## The forest extension (tags 13–16, inner tag 3)
//!
//! Tags 3/4 and inner tag 0 implicitly address tree 0 — the instance
//! every node hosts from birth, with the exact legacy byte encodings
//! (sim parity is pinned against those bytes). The tree-scoped variants
//! carry an explicit `u32` tree id so one cluster multiplexes a whole
//! *forest* of aggregation trees over the same sockets and reactor
//! pool: nodes create automaton instances lazily on the first frame
//! that names a new tree. `TAG_SUB` registers a continuous-query
//! subscription on a tree; the node then *pushes* a `TAG_PARTIAL`
//! frame (unsolicited, no request id) whenever that tree's local
//! aggregate view refines, carrying a per-tree monotone refine seq.
//!
//! ## The sequenced edge link (tags 0, 9, 10)
//!
//! Every payload-bearing frame between neighbours rides inside a tag-9
//! frame stamped with a per-directed-edge sequence number (1, 2, 3, …).
//! The receiver delivers exactly the next expected seq and discards
//! everything else (duplicates *and* out-of-window futures — recovery is
//! go-back-N); it acknowledges cumulatively with tag 10 at its batch
//! boundaries. The sender buffers unacknowledged frames and retransmits
//! them on an RTO tick or after a reconnect. The edge hello carries the
//! receiver's watermark (how many in-order frames it has seen) so a
//! redialed connection resumes the stream exactly where it left off:
//! per-edge FIFO exactly-once delivery survives killed connections.
//!
//! Inner tags inside a tag-9 frame:
//!
//! | inner | meaning        | body                         |
//! |-------|----------------|------------------------------|
//! | 0     | net message    | `Message<V>` wire encoding (tree 0) |
//! | 1     | peer reset     | empty (sender's automaton restarted) |
//! | 2     | lease revoke   | empty (cascaded lease teardown)      |
//! | 3     | net message (tree) | `u32` tree id, `Message<V>` wire encoding |
//!
//! [`NodeMetrics`]: crate::metrics::NodeMetrics

use std::io::{self, Read, Write};

/// Edge-peer handshake: payload is the dialer's node id.
pub const TAG_HELLO_EDGE: u8 = 0;
/// Client handshake: empty payload.
pub const TAG_HELLO_CLIENT: u8 = 1;
/// A mechanism message between neighbouring nodes.
pub const TAG_NET: u8 = 2;
/// Client combine request.
pub const TAG_REQ_COMBINE: u8 = 3;
/// Client write request.
pub const TAG_REQ_WRITE: u8 = 4;
/// Combine response carrying the aggregate value.
pub const TAG_RESP_COMBINE: u8 = 5;
/// Write acknowledgement (the write's transitions have run).
pub const TAG_RESP_WRITE: u8 = 6;
/// Client metrics request.
pub const TAG_REQ_METRICS: u8 = 7;
/// Metrics response carrying a [`crate::metrics::NodeMetrics`].
pub const TAG_RESP_METRICS: u8 = 8;
/// Sequenced edge frame: `u64` seq, `u8` inner tag, inner body.
pub const TAG_SEQ: u8 = 9;
/// Cumulative ack: `u64` highest in-order seq received on this edge.
pub const TAG_ACK: u8 = 10;
/// Batched client requests: `u32` count, then count batch items.
pub const TAG_REQ_BATCH: u8 = 11;
/// Batched responses: `u32` count, then count batch items.
pub const TAG_RESP_BATCH: u8 = 12;
/// Tree-scoped client combine request: `u64` request id, `u32` tree id.
pub const TAG_REQ_COMBINE_T: u8 = 13;
/// Tree-scoped client write request: `u64` request id, `u32` tree id, `V`.
pub const TAG_REQ_WRITE_T: u8 = 14;
/// Continuous-query subscription: `u64` sub id, `u32` tree id.
pub const TAG_SUB: u8 = 15;
/// Pushed partial refinement: `u64` sub id, `u32` tree id, `u64` refine
/// seq, `V`. Unsolicited — the node sends one per refinement, not per
/// request.
pub const TAG_PARTIAL: u8 = 16;

/// Inner tag: a mechanism message (`Message<V>` wire encoding, tree 0).
pub const INNER_NET: u8 = 0;
/// Inner tag: the sending node's automaton crashed and restarted.
pub const INNER_RESET: u8 = 1;
/// Inner tag: cascaded involuntary lease teardown (crash recovery).
pub const INNER_REVOKE: u8 = 2;
/// Inner tag: a mechanism message for a named tree: `u32` tree id, then
/// the `Message<V>` wire encoding (forest multiplexing).
pub const INNER_NET_T: u8 = 3;

/// Upper bound on a frame body; anything larger is a protocol violation.
const MAX_FRAME: u32 = 64 << 20;

/// Writes one `[len][tag][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    if len as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    // Two write_all calls per frame; node outbound paths wrap the stream
    // in a BufWriter and flush at batch boundaries, so consecutive frames
    // for one connection coalesce into a single syscall (TCP_NODELAY is
    // set on every stream, so flushed bytes leave promptly).
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&(len as u32).to_le_bytes());
    head[4] = tag;
    w.write_all(&head)?;
    w.write_all(payload)
}

/// Reads one frame, returning `(tag, payload)`.
///
/// A clean EOF *before* any header byte maps to `ErrorKind::UnexpectedEof`
/// with the message `"closed"`, letting callers distinguish an orderly
/// peer shutdown from a mid-frame truncation.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < head.len() {
        match r.read(&mut head[filled..]) {
            Ok(0) => {
                let msg = if filled == 0 {
                    "closed"
                } else {
                    "truncated frame header"
                };
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, msg));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(head);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let tag = body[0];
    body.remove(0);
    Ok((tag, body))
}

/// Incremental frame decoder for non-blocking reads.
///
/// [`read_frame`] assumes it may block until a whole frame arrives —
/// fine on a dedicated reader thread, wrong on a reactor (a socket is
/// read only when the kernel says it is readable, and what is readable
/// may end mid-header) and wrong under client read timeouts (a timeout
/// that fires mid-frame must not discard the bytes already consumed).
/// The decoder owns that problem: feed it whatever bytes arrive with
/// [`FrameDecoder::extend`], take complete frames out with
/// [`FrameDecoder::try_frame`], and partial headers/bodies simply wait
/// in the buffer for the next read — the stream can never desync.
///
/// Validation matches `read_frame` exactly: a zero or oversized length
/// field is `InvalidData` before any allocation happens.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` before `start` are already-consumed frames; kept
    /// until the next compaction to avoid a memmove per frame.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefix space is reused as
        // long as it dominates the live remainder.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 32 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes (a partial frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when no partial frame is pending — the boundary at which a
    /// clean peer close is orderly rather than a truncation.
    pub fn is_empty(&self) -> bool {
        self.buffered() == 0
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt (bad length field) and must be dropped.
    pub fn try_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte slice"));
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let tag = avail[4];
        let payload = avail[5..total].to_vec();
        self.start += total;
        Ok(Some((tag, payload)))
    }
}

/// Encodes batch items into a batch-frame payload: `u32` count, then
/// per item `[u8 tag][u32 len][payload]`. Each item's tag/payload is
/// byte-identical to the standalone frame it replaces.
pub fn encode_batch(items: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let body: usize = items.iter().map(|(_, p)| 5 + p.len()).sum();
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for (tag, payload) in items {
        out.push(*tag);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes a batch-frame payload back into `(tag, payload)` items.
///
/// Rejects payloads whose declared count or item lengths disagree with
/// the bytes actually present (including trailing garbage): a batch
/// frame must be exactly self-describing, same spirit as the outer
/// length check in [`read_frame`].
pub fn decode_batch(payload: &[u8]) -> io::Result<Vec<(u8, Vec<u8>)>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if payload.len() < 4 {
        return Err(bad("batch shorter than its count field"));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice")) as usize;
    let mut items = Vec::new();
    let mut at = 4;
    for _ in 0..count {
        if payload.len() - at < 5 {
            return Err(bad("truncated batch item header"));
        }
        let tag = payload[at];
        let len =
            u32::from_le_bytes(payload[at + 1..at + 5].try_into().expect("4-byte slice")) as usize;
        at += 5;
        if payload.len() - at < len {
            return Err(bad("truncated batch item payload"));
        }
        items.push((tag, payload[at..at + len].to_vec()));
        at += len;
    }
    if at != payload.len() {
        return Err(bad("trailing bytes after final batch item"));
    }
    Ok(items)
}

/// True when `err` means the peer closed the connection cleanly.
pub fn is_clean_close(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionAborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_NET, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, TAG_HELLO_CLIENT, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), (TAG_NET, vec![1, 2, 3]));
        assert_eq!(read_frame(&mut r).unwrap(), (TAG_HELLO_CLIENT, vec![]));
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(is_clean_close(&err));
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut r = &[0u8, 0, 0, 0][..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_header_is_distinguished_from_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_NET, &[9]).unwrap();
        let mut r = &buf[..2];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(err.to_string(), "truncated frame header");
    }

    #[test]
    fn decoder_reassembles_frames_fed_byte_by_byte() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_NET, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, TAG_ACK, b"xyz").unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.extend(std::slice::from_ref(b));
            while let Some(frame) = dec.try_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(
            got,
            vec![(TAG_NET, vec![1, 2, 3]), (TAG_ACK, b"xyz".to_vec())]
        );
        assert!(dec.is_empty());
    }

    #[test]
    fn decoder_keeps_partial_frames_across_feeds() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_SEQ, &[9; 40]).unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..3]); // mid-header
        assert!(dec.try_frame().unwrap().is_none());
        assert_eq!(dec.buffered(), 3);
        dec.extend(&wire[3..20]); // mid-body
        assert!(dec.try_frame().unwrap().is_none());
        dec.extend(&wire[20..]);
        let (tag, payload) = dec.try_frame().unwrap().expect("complete");
        assert_eq!((tag, payload.len()), (TAG_SEQ, 40));
        assert!(dec.is_empty());
    }

    #[test]
    fn decoder_rejects_bad_lengths_like_read_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0, 0, 0]);
        assert_eq!(
            dec.try_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            dec.try_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn batch_roundtrips_including_empty_payloads() {
        let items = vec![
            (TAG_REQ_COMBINE, 7u64.to_le_bytes().to_vec()),
            (TAG_REQ_WRITE, vec![]),
            (TAG_REQ_COMBINE, vec![0xAB; 300]),
        ];
        let wire = encode_batch(&items);
        assert_eq!(decode_batch(&wire).unwrap(), items);
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn batch_rejects_malformed_payloads() {
        // Count promises more items than the bytes hold.
        let mut wire = encode_batch(&[(TAG_REQ_COMBINE, vec![1, 2, 3])]);
        wire[0] = 2;
        assert!(decode_batch(&wire).is_err());
        // Item length runs past the end.
        let mut wire = encode_batch(&[(TAG_REQ_COMBINE, vec![1, 2, 3])]);
        wire[5] = 200;
        assert!(decode_batch(&wire).is_err());
        // Trailing garbage after the last item.
        let mut wire = encode_batch(&[(TAG_REQ_COMBINE, vec![1, 2, 3])]);
        wire.push(0);
        assert!(decode_batch(&wire).is_err());
        // Shorter than the count field itself.
        assert!(decode_batch(&[1, 0]).is_err());
    }

    #[test]
    fn decoder_compaction_preserves_the_stream() {
        // Many frames through one decoder, fed in ragged chunks that
        // straddle frame boundaries, forcing periodic compaction.
        let mut wire = Vec::new();
        for i in 0..200u32 {
            write_frame(&mut wire, (i % 7) as u8, &vec![i as u8; (i % 97) as usize]).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut count = 0;
        for chunk in wire.chunks(13) {
            dec.extend(chunk);
            while let Some((tag, payload)) = dec.try_frame().unwrap() {
                assert_eq!(tag, (count % 7) as u8);
                assert_eq!(payload, vec![count as u8; (count % 97) as usize]);
                count += 1;
            }
        }
        assert_eq!(count, 200);
        assert!(dec.is_empty());
    }
}
