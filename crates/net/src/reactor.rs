//! The poll-based reactor runtime: event-loop threads driving
//! non-blocking sockets.
//!
//! ## Thread model
//!
//! A cluster runs a small fixed pool of reactor threads (default
//! `min(cores, 4)`), each owning the shard of nodes with
//! `node_id % pool == shard`. *All* of a node's I/O — its listener, its
//! edge connections, its client connections, its redial timers — is
//! served by its owning reactor thread, so every per-node structure
//! (automaton, sequenced links, waiters, stats) is plain single-owner
//! state with no locks, no inbox channel, and no reader threads. The
//! previous runtime spawned ~3 blocking threads per node; this one
//! spawns exactly `pool` threads regardless of tree size (the figure
//! `ClusterReport::threads_spawned` records).
//!
//! ## The readiness loop
//!
//! Each iteration: fire due timers (redial attempts, the retransmission
//! tick), flush every connection's [`WriteQueue`] with `write_vectored`
//! (a `WouldBlock` leaves the remainder queued and arms `POLLOUT`),
//! rebuild the interest set, and block in `poll(2)` until a socket is
//! ready, a timer is due, or the cluster's waker nudges the loop (the
//! only cross-thread signal — used for shutdown). Ready sockets are
//! read in bounded chunks into per-connection [`FrameDecoder`]s
//! (`poll` is level-triggered, so leftovers re-report next iteration)
//! and every complete frame is dispatched inline on the owning node.
//!
//! Cross-node delivery needs no special case: a node writes to the TCP
//! edge exactly as before, and the peer's socket becomes readable on
//! its own reactor — whether that is the same thread (next iteration)
//! or another one. Quiescence, sequencing, retransmission, and fault
//! injection are all per-node state transitions and survive the move
//! from threads to events wholesale (see [`crate::node`]).

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use oat_core::agg::AggOp;
use oat_core::fault::{FaultPlan, InjectedFaults};
use oat_core::policy::PolicySpec;
use oat_core::tree::{NodeId, Tree};
use oat_core::wire::WireValue;
use oat_poll::{PollFd, Poller, POLLIN};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;

use crate::frame::{write_frame, FrameDecoder};
use crate::node::{Ctx, NodeReport, NodeRt, RTO};
use crate::transport::{Listener, NodeAddr, Stream};

/// Cluster-wide in-flight work counter with event-driven quiescence.
///
/// Client requests and unacked edge frames each hold one unit of debt;
/// [`InFlight::wait_zero`] parks on a condvar that [`InFlight::sub`]
/// notifies exactly when the count hits zero — replacing the
/// sleep-polling loop that used to dominate the sequential path.
pub(crate) struct InFlight {
    n: AtomicI64,
    mu: Mutex<()>,
    cv: Condvar,
}

impl InFlight {
    pub(crate) fn new() -> InFlight {
        InFlight {
            n: AtomicI64::new(0),
            mu: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn add(&self, d: i64) {
        self.n.fetch_add(d, Ordering::SeqCst);
    }

    pub(crate) fn sub(&self, d: i64) {
        if self.n.fetch_sub(d, Ordering::SeqCst) - d == 0 {
            // Take the lock before notifying so a waiter that observed a
            // non-zero count cannot park between our decrement and this
            // notification (it re-checks the count under the lock).
            let _g = self.mu.lock().unwrap();
            self.cv.notify_all();
        }
    }

    pub(crate) fn load(&self) -> i64 {
        self.n.load(Ordering::SeqCst)
    }

    /// Blocks until the count reaches zero. With a deadline, returns
    /// `false` if it expires first. The 50 ms cap on each park is a
    /// safety net against a lost wakeup, not the detection mechanism.
    pub(crate) fn wait_zero(&self, deadline: Option<Instant>) -> bool {
        loop {
            if self.load() == 0 {
                return true;
            }
            let guard = self.mu.lock().unwrap();
            if self.load() == 0 {
                return true;
            }
            let mut wait = Duration::from_millis(50);
            if let Some(d) = deadline {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return false;
                }
                wait = wait.min(left);
            }
            let _ = self.cv.wait_timeout(guard, wait).unwrap();
        }
    }
}

/// Target size for coalescing small frames into one owned chunk, and
/// therefore one `iovec` of the vectored write.
const COALESCE: usize = 8 * 1024;

/// Max `iovec`s per `write_vectored` call.
const MAX_IOVECS: usize = 32;

/// Bytes read per `read` call on a ready socket.
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// Reads issued per readiness event before yielding back to the loop
/// (level-triggered `poll` re-reports anything left in the kernel).
const READS_PER_EVENT: usize = 4;

/// Outbound byte queue of one connection: whole frames, coalesced into
/// chunks, drained with `write_vectored` and `WouldBlock` requeueing.
#[derive(Default)]
pub(crate) struct WriteQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of `chunks[0]` already written (a partial vectored write).
    offset: usize,
}

impl WriteQueue {
    pub(crate) fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Encodes one frame onto the queue. Small frames append to the
    /// tail chunk (one future iovec); a frame arriving at a full tail
    /// starts a new chunk. Infallible: the queue is memory, and every
    /// frame the runtime produces is well under `MAX_FRAME`.
    pub(crate) fn frame(&mut self, tag: u8, payload: &[u8]) {
        match self.chunks.back_mut() {
            Some(tail) if tail.len() < COALESCE => {
                write_frame(tail, tag, payload).expect("runtime frames are bounded");
            }
            _ => {
                let mut chunk = Vec::with_capacity((5 + payload.len()).max(64));
                write_frame(&mut chunk, tag, payload).expect("runtime frames are bounded");
                self.chunks.push_back(chunk);
            }
        }
    }

    /// Writes as much as the socket accepts. `Ok(true)` means drained,
    /// `Ok(false)` means `WouldBlock` with bytes still queued (the
    /// caller arms `POLLOUT`), `Err` means the connection is dead.
    pub(crate) fn flush(&mut self, stream: &mut Stream) -> io::Result<bool> {
        loop {
            if self.chunks.is_empty() {
                return Ok(true);
            }
            let mut iovecs: Vec<IoSlice<'_>> =
                Vec::with_capacity(MAX_IOVECS.min(self.chunks.len()));
            for (i, chunk) in self.chunks.iter().take(MAX_IOVECS).enumerate() {
                let slice = if i == 0 {
                    &chunk[self.offset..]
                } else {
                    &chunk[..]
                };
                iovecs.push(IoSlice::new(slice));
            }
            match stream.write_vectored(&iovecs) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(mut n) => {
                    while n > 0 {
                        let front_left = self.chunks[0].len() - self.offset;
                        if n >= front_left {
                            n -= front_left;
                            self.chunks.pop_front();
                            self.offset = 0;
                        } else {
                            self.offset += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// One non-blocking connection: the stream plus its incremental frame
/// decoder (read side) and write queue (write side).
pub(crate) struct Conn {
    pub(crate) stream: Stream,
    pub(crate) dec: FrameDecoder,
    pub(crate) out: WriteQueue,
}

impl Conn {
    /// Adopts a freshly accepted/connected stream into reactor mode.
    pub(crate) fn new(stream: Stream) -> io::Result<Conn> {
        stream.prepare()?;
        Ok(Conn {
            stream,
            dec: FrameDecoder::new(),
            out: WriteQueue::default(),
        })
    }

    /// Reads a bounded amount of whatever is available into the
    /// decoder. Returns `true` when the connection is dead (EOF or a
    /// hard error) — already-decoded bytes remain valid and must be
    /// drained by the caller before tearing the connection down.
    pub(crate) fn read_ready(&mut self, scratch: &mut [u8]) -> bool {
        let mut reads = 0;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return true,
                Ok(n) => {
                    self.dec.extend(&scratch[..n]);
                    reads += 1;
                    if n < scratch.len() || reads >= READS_PER_EVENT {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    /// Flushes the write queue; see [`WriteQueue::flush`].
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        self.out.flush(&mut self.stream)
    }
}

/// Cross-thread nudge for a reactor parked in `poll`: one byte down a
/// socketpair whose read half sits in the reactor's interest set.
pub(crate) struct Waker {
    tx: UnixStream,
}

impl Waker {
    pub(crate) fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; errors are
        // irrelevant.
        let _ = (&self.tx).write(&[1]);
    }
}

/// Creates a waker and the read half the reactor polls.
pub(crate) fn waker_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Everything one reactor thread needs: its shard of nodes plus the
/// cluster-shared handles.
pub(crate) struct ReactorCfg<S, A: AggOp> {
    /// This reactor's index in the pool (the `shard` word of its
    /// `poll_wake`/`dispatch` trace spans).
    pub shard: u32,
    pub shard_nodes: Vec<NodeSeed>,
    pub tree: Tree,
    pub addrs: Vec<NodeAddr>,
    pub op: A,
    pub spec: S,
    pub ghost: bool,
    pub in_flight: Arc<InFlight>,
    pub total_sent: Arc<AtomicU64>,
    pub shutting_down: Arc<AtomicBool>,
    pub plan: Arc<FaultPlan>,
    pub ledger: Arc<InjectedFaults>,
    pub ready_tx: Sender<()>,
    pub waker_rx: UnixStream,
    pub rtx_high: usize,
    pub rtx_low: usize,
}

/// One node assigned to a reactor: its pre-bound (non-blocking)
/// listener and its durability backend (opened by the cluster on the
/// main thread, where open errors can still fail the spawn).
pub(crate) struct NodeSeed {
    pub id: NodeId,
    pub listener: Listener,
    pub backend: Box<dyn crate::durability::Durability>,
}

/// What one ready poll entry refers to.
#[derive(Clone, Copy)]
pub(crate) enum Tok {
    /// The reactor's waker read-half.
    Waker,
    /// Node `i`'s listener.
    Listener(usize),
    /// Node `i`'s pending (pre-hello) connection `pid`.
    Pending(usize, u64),
    /// Node `i`'s live edge connection to neighbour index `wi`.
    Edge(usize, usize),
    /// Node `i`'s dial-in-progress connection on neighbour index `wi`.
    Dial(usize, usize),
    /// Node `i`'s client connection `cid`.
    Client(usize, u64),
}

/// The reactor thread body: serves its shard until cluster shutdown,
/// then returns every owned node's final report.
pub(crate) fn reactor_main<S, A>(cfg: ReactorCfg<S, A>) -> Vec<(NodeId, NodeReport<A::Value>)>
where
    S: PolicySpec,
    S::Node: 'static,
    A: AggOp,
    A::Value: WireValue,
{
    let ReactorCfg {
        shard,
        shard_nodes,
        tree,
        addrs,
        op,
        spec,
        ghost,
        in_flight,
        total_sent,
        shutting_down,
        plan,
        ledger,
        ready_tx,
        waker_rx,
        rtx_high,
        rtx_low,
    } = cfg;
    let ctx = Ctx {
        tree: &tree,
        addrs: &addrs,
        op: &op,
        spec: &spec,
        ghost,
        in_flight: &in_flight,
        total_sent: &total_sent,
        ledger: &ledger,
        rtx_high,
        rtx_low,
    };
    let mut nodes: Vec<NodeRt<S, A>> = shard_nodes
        .into_iter()
        .map(|seed| NodeRt::new(seed, &ctx, &plan, ready_tx.clone()))
        .collect();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut fds: Vec<PollFd> = Vec::new();
    let mut toks: Vec<Tok> = Vec::new();
    // With the `epoll` feature this holds a persistent epoll instance
    // (interest diffed per iteration); without it, a stateless shim
    // over poll(2).
    let mut poller = Poller::new().expect("create poller");
    let mut last_tick = Instant::now();
    loop {
        // Timers first: retransmission tick at RTO cadence, redials due.
        let now = Instant::now();
        if now.duration_since(last_tick) >= RTO {
            for node in nodes.iter_mut() {
                node.rto_tick();
            }
            last_tick = now;
        }
        for node in nodes.iter_mut() {
            node.run_dial_timers(&ctx, now);
        }
        // Flush every queue before sleeping: dispatches below only ever
        // *queue* bytes, this is the single point where they hit sockets.
        for node in nodes.iter_mut() {
            node.flush(&ctx);
        }

        // Sleep bound: the next RTO tick if anyone has unacked frames,
        // the earliest redial timer, else block until a socket or the
        // waker fires.
        let now = Instant::now();
        let mut timeout: Option<Duration> = None;
        let mut consider = |d: Duration| {
            timeout = Some(match timeout {
                Some(t) if t <= d => t,
                _ => d,
            });
        };
        for node in &nodes {
            if node.wants_rto_tick() {
                consider((last_tick + RTO).saturating_duration_since(now));
            }
            if let Some(at) = node.next_redial() {
                consider(at.saturating_duration_since(now));
            }
        }

        fds.clear();
        toks.clear();
        fds.push(PollFd::new(waker_rx.as_raw_fd(), POLLIN));
        toks.push(Tok::Waker);
        for (i, node) in nodes.iter().enumerate() {
            node.register(i, &mut fds, &mut toks);
        }
        // Poll errors (EBADF from a racing close) surface as an
        // immediate retry; the per-connection handlers below discover
        // and retire any genuinely dead socket.
        let t_poll = oat_obs::now_ns();
        let _ = poller.wait(&mut fds, timeout);
        if t_poll != 0 {
            let ready = fds.iter().filter(|fd| fd.revents != 0).count() as u32;
            oat_obs::trace_span!(oat_obs::EventKind::PollWake, t_poll, shard, ready, 0);
        }

        if shutting_down.load(Ordering::SeqCst) {
            return nodes
                .into_iter()
                .map(|mut node| {
                    node.flush(&ctx);
                    (node.id(), node.finish())
                })
                .collect();
        }

        let t_dispatch = oat_obs::now_ns();
        let mut handled: u32 = 0;
        for (fd, tok) in fds.iter().zip(&toks) {
            if fd.revents == 0 {
                continue;
            }
            handled += 1;
            match *tok {
                Tok::Waker => {
                    // Drain the nudge bytes; the flag check above is the
                    // actual signal.
                    let mut byte = [0u8; 64];
                    while matches!((&waker_rx).read(&mut byte), Ok(n) if n > 0) {}
                }
                Tok::Listener(i) => nodes[i].on_accept_ready(),
                Tok::Pending(i, pid) => {
                    if fd.readable() {
                        nodes[i].on_pending_ready(pid, &ctx, &mut scratch);
                    }
                }
                Tok::Dial(i, wi) => {
                    if fd.readable() {
                        nodes[i].on_dial_ready(wi, &ctx, &mut scratch);
                    }
                }
                Tok::Edge(i, wi) => {
                    if fd.readable() {
                        nodes[i].on_edge_ready(wi, &ctx, &mut scratch);
                    }
                }
                Tok::Client(i, cid) => {
                    if fd.readable() {
                        nodes[i].on_client_ready(cid, &ctx, &mut scratch);
                    }
                } // A pure POLLOUT wakeup needs no handler: the flush pass
                  // at the top of the next iteration makes the progress.
            }
        }
        // A kill9 scheduled mid-dispatch demolishes the node's state, so
        // it runs here, after the token loop is done touching it.
        for node in nodes.iter_mut() {
            if node.take_kill9() {
                node.kill9_restart(&ctx);
            }
        }
        if handled > 0 {
            oat_obs::trace_span!(oat_obs::EventKind::Dispatch, t_dispatch, shard, handled, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn write_queue_coalesces_and_survives_partial_drains() {
        let (a, mut b) = loopback_pair();
        let mut conn = Conn::new(Stream::Tcp(a)).unwrap();
        let mut expected = Vec::new();
        for i in 0..100u8 {
            let payload = vec![i; 1 + (i as usize % 300)];
            conn.out.frame(i, &payload);
            write_frame(&mut expected, i, &payload).unwrap();
        }
        // Small frames coalesce: far fewer chunks than frames.
        assert!(conn.out.chunks.len() < 20, "got {}", conn.out.chunks.len());
        while !conn.flush().unwrap() {}
        b.set_nonblocking(true).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match b.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if got.len() >= expected.len() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got, expected, "byte-exact across vectored flushes");
    }

    #[test]
    fn write_queue_requeues_on_wouldblock_and_finishes_later() {
        let (a, mut b) = loopback_pair();
        let mut conn = Conn::new(Stream::Tcp(a)).unwrap();
        // Enough data to overwhelm the kernel buffers of an unread peer.
        let big = vec![0xAB; 256 * 1024];
        for _ in 0..32 {
            conn.out.frame(9, &big);
        }
        let drained = conn.flush().unwrap();
        assert!(!drained, "unread peer must WouldBlock eventually");
        assert!(!conn.out.is_empty());
        // Drain the peer concurrently, then finish the flush.
        let reader = std::thread::spawn(move || {
            let mut buf = vec![0u8; 64 * 1024];
            let mut total = 0usize;
            loop {
                match b.read(&mut buf) {
                    Ok(0) => break total,
                    Ok(n) => total += n,
                    Err(e) => panic!("{e}"),
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !conn.flush().unwrap() {
            assert!(Instant::now() < deadline, "flush never completed");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(conn);
        let total = reader.join().unwrap();
        assert_eq!(total, 32 * (5 + big.len()));
    }

    #[test]
    fn waker_unblocks_a_poll() {
        let (waker, rx) = waker_pair().unwrap();
        let h = std::thread::spawn(move || {
            let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
            let mut poller = Poller::new().unwrap();
            poller
                .wait(&mut fds, Some(Duration::from_secs(10)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));
        waker.wake();
        assert_eq!(h.join().unwrap(), 1);
    }
}
