//! # oat-net — the lease mechanism as a real cluster
//!
//! The simulator (`oat-sim`) delivers messages by popping a queue; the
//! threaded runtime (`oat-concurrent`) uses in-process channels. This
//! crate goes the last step: every tree node is served behind its own
//! listener, every tree edge is a persistent connection carrying
//! length-prefixed frames ([`frame`]), and clients talk to any node
//! over the same protocol to issue `combine` / `write` requests or
//! pull metrics snapshots. The byte pipe underneath is pluggable
//! ([`transport`], selected by [`NetConfig::transport`]): loopback TCP
//! (the default), Unix-domain sockets, or in-process SPSC byte rings
//! with a socketpair doorbell — the protocol and every fault/recovery
//! seam are identical across the three.
//!
//! The runtime is a readiness-based reactor (poll(2) by default, epoll(7)
//! behind the `epoll` feature): a fixed pool of event-loop threads
//! (default `min(cores, 4)`, tunable via [`NetConfig`]) drives
//! every connection non-blocking, with nodes sharded across the pool by
//! `node_id % pool`. All of a node's connections live on its owning
//! reactor thread, so node state needs no locks; reads decode frames
//! incrementally from per-connection buffers, and writes batch frames
//! into vectored `writev` calls. Thread count is O(pool), not O(nodes).
//!
//! The node automaton is the *same* [`oat_core::MechNode`] the simulator
//! drives — transports differ, the mechanism does not. Because sequential
//! executions of lease-based algorithms are schedule-independent in both
//! returned values and message counts (the confluence property the
//! simulator's property tests establish), a seeded workload replayed with
//! [`Cluster::replay_sequential`] reproduces the simulator's per-edge,
//! per-kind [`oat_sim::MsgStats`] *exactly* — the parity tests in
//! `tests/net_parity.rs` assert this across topologies, workloads, and
//! policies.
//!
//! ```no_run
//! use oat_core::{agg::SumI64, policy::rww::RwwSpec, tree::{NodeId, Tree}};
//! use oat_net::Cluster;
//!
//! let tree = Tree::kary(7, 2);
//! let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
//! let mut client = cluster.client(NodeId(3)).unwrap();
//! client.write(5).unwrap();
//! cluster.quiesce();
//! assert_eq!(cluster.client(NodeId(6)).unwrap().combine().unwrap(), 5);
//! let report = cluster.shutdown();
//! println!("total messages: {}", report.stats.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod durability;
pub mod frame;
pub mod metrics;
mod node;
mod reactor;
mod transport;

pub use cluster::{
    Cluster, ClusterClient, ClusterReport, DurabilityMode, NetConfig, NetSeqChunk, PipelinedChunk,
    Response, WalConfig,
};
pub use durability::{Durability, MemoryDurability, WalCounters, WalDurability, WalState};
pub use metrics::NodeMetrics;
pub use node::FaultCounters;
pub use transport::{NodeAddr, TransportKind};

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::baseline::NeverLeaseSpec;
    use oat_core::policy::rww::RwwSpec;
    use oat_core::request::Request;
    use oat_core::tree::{NodeId, Tree};

    #[test]
    fn pair_combine_write_combine_matches_figure() {
        // The doc example of run_sequential, over real sockets: cold
        // combine costs probe+response, leased write one update, warm
        // combine is free.
        let tree = Tree::pair();
        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
        let mut client = cluster.client(NodeId(1)).unwrap();

        let before = cluster.total_messages();
        assert_eq!(client.combine().unwrap(), 0);
        cluster.quiesce();
        assert_eq!(cluster.total_messages() - before, 2);

        let mut writer = cluster.client(NodeId(0)).unwrap();
        writer.write(7).unwrap();
        cluster.quiesce();
        assert_eq!(cluster.total_messages(), 3);

        assert_eq!(client.combine().unwrap(), 7);
        cluster.quiesce();
        assert_eq!(cluster.total_messages(), 3, "warm read must be free");

        let report = cluster.shutdown();
        assert_eq!(report.stats.total(), 3);
        assert_eq!(report.delivered, 3);
    }

    #[test]
    fn replay_matches_simulator_counts_on_a_star() {
        let tree = Tree::star(6);
        let seq: Vec<Request<i64>> = (0..24)
            .map(|i| {
                let node = NodeId(i % 6);
                if i % 3 == 0 {
                    Request::combine(node)
                } else {
                    Request::write(node, i as i64 * 3 - 20)
                }
            })
            .collect();
        let sim = oat_sim::run_sequential(
            &tree,
            SumI64,
            &RwwSpec,
            oat_sim::Schedule::Fifo,
            &seq,
            false,
        );
        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
        let net = cluster.replay_sequential(&seq).unwrap();
        assert_eq!(net.combines, sim.combines);
        assert_eq!(net.per_request_msgs, sim.per_request_msgs);
        let report = cluster.shutdown();
        assert_eq!(report.stats.total(), sim.engine.stats().total());
    }

    #[test]
    fn metrics_snapshot_reflects_leases_and_counts() {
        let tree = Tree::path(3);
        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
        let mut client = cluster.client(NodeId(2)).unwrap();
        assert_eq!(client.combine().unwrap(), 0);
        cluster.quiesce();

        // RWW: the combine at node 2 takes leases along the whole path.
        let m0 = cluster.node_metrics(NodeId(0)).unwrap();
        assert_eq!(m0.leases_granted, 1);
        assert_eq!(m0.sent_by_kind[1], 1, "node 0 sent one response");
        let m2 = cluster.node_metrics(NodeId(2)).unwrap();
        assert_eq!(m2.leases_taken, 1);
        assert_eq!(m2.combines_served, 1);
        assert_eq!(m2.queue_depth, 0, "quiescent inbox");

        let json = cluster.metrics_json().unwrap();
        assert!(json.contains("\"node\": 0"));
        assert!(json.contains("\"node\": 2"));
        let stats_json = cluster.stats_json().unwrap();
        assert!(stats_json.contains("\"total\": 4"));
    }

    #[test]
    fn never_lease_cluster_stays_pull_only() {
        let tree = Tree::path(4);
        let cluster = Cluster::spawn(&tree, SumI64, &NeverLeaseSpec, false).unwrap();
        let mut c = cluster.client(NodeId(0)).unwrap();
        c.write(3).unwrap();
        cluster.quiesce();
        assert_eq!(
            cluster.total_messages(),
            0,
            "writes are free without leases"
        );
        assert_eq!(c.combine().unwrap(), 3);
        cluster.quiesce();
        // Pull-all: probe+response on every edge.
        assert_eq!(cluster.total_messages(), 6);
        let report = cluster.shutdown();
        assert_eq!(report.stats.kind_totals(), [3, 3, 0, 0]);
    }

    #[test]
    fn malformed_connections_do_not_kill_a_node() {
        use std::io::Write;
        let tree = Tree::path(3);
        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, false).unwrap();
        cluster.client(NodeId(1)).unwrap().write(9).unwrap();
        cluster.quiesce();

        // A stranger with an unknown hello tag, one with a truncated
        // frame, and a client that sends a garbage request: each must be
        // dropped without killing the acceptor or the node.
        let NodeAddr::Tcp(addr) = cluster.addrs()[1].clone() else {
            panic!("default transport is TCP");
        };
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&[3, 0, 0, 0, 99, 0xde, 0xad]).unwrap();
        drop(s);
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&[255, 255]).unwrap();
        drop(s);
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        frame::write_frame(&mut s, frame::TAG_HELLO_CLIENT, &[]).unwrap();
        frame::write_frame(&mut s, frame::TAG_REQ_WRITE, &[1, 2, 3]).unwrap();
        drop(s);

        // New connections to the same node still work end to end.
        let mut c = cluster.client(NodeId(1)).unwrap();
        assert_eq!(c.combine().unwrap(), 9);
        cluster.quiesce();
        cluster.shutdown();
    }

    #[test]
    fn ghost_logs_survive_shutdown() {
        let tree = Tree::pair();
        let cluster = Cluster::spawn(&tree, SumI64, &RwwSpec, true).unwrap();
        let mut c = cluster.client(NodeId(0)).unwrap();
        c.write(1).unwrap();
        assert_eq!(c.combine().unwrap(), 1);
        cluster.quiesce();
        let report = cluster.shutdown();
        let logs = report.logs.expect("ghost enabled");
        assert_eq!(logs.len(), 2);
        assert!(logs[0].len() >= 2, "write + combine recorded at node 0");
    }
}
