//! Pluggable connection transports: TCP, Unix-domain sockets, and
//! in-process SPSC byte rings.
//!
//! Every transport presents the same byte-stream surface to the reactor
//! (non-blocking `read` / `write_vectored` / `shutdown` plus a pollable
//! fd) and to the blocking client (`ClientStream`), so framing,
//! sequencing, retransmit, and fault injection are transport-agnostic.
//!
//! The ring transport is a pair of lock-free single-producer /
//! single-consumer byte rings (one per direction) with a socketpair
//! "doorbell": each successful write nudges one byte into the writer's
//! half so the peer's poll loop (or blocking read) wakes up. Rings are
//! level-triggered from the reactor's point of view because doorbell
//! bytes are only drained once the ring itself is empty.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Which connection transport a cluster uses for edges and clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Loopback TCP sockets (the portable default).
    #[default]
    Tcp,
    /// Unix-domain stream sockets under a per-cluster temp directory.
    Uds,
    /// In-process SPSC byte rings with a socketpair doorbell.
    Ring,
}

impl TransportKind {
    /// Stable lower-case name, used in bench JSON and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
            TransportKind::Ring => "ring",
        }
    }

    /// Parse a CLI spelling (`tcp`, `uds`, `ring`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "tcp" => Some(TransportKind::Tcp),
            "uds" | "unix" => Some(TransportKind::Uds),
            "ring" | "spsc" => Some(TransportKind::Ring),
            _ => None,
        }
    }
}

/// A node's listen address under some transport.
#[derive(Clone, Debug)]
pub enum NodeAddr {
    /// TCP socket address.
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Uds(PathBuf),
    /// Ring-registry listener id.
    Ring(u64),
}

impl From<SocketAddr> for NodeAddr {
    fn from(a: SocketAddr) -> NodeAddr {
        NodeAddr::Tcp(a)
    }
}

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeAddr::Tcp(a) => write!(f, "{a}"),
            NodeAddr::Uds(p) => write!(f, "{}", p.display()),
            NodeAddr::Ring(id) => write!(f, "ring:{id}"),
        }
    }
}

// ---------------------------------------------------------------------------
// SPSC byte ring
// ---------------------------------------------------------------------------

/// Bytes per ring direction. Power of two.
const RING_CAP: usize = 1 << 18;

/// Doorbell drain scratch size. Nudges are 1 byte each; draining in
/// chunks keeps the syscall count low when many writes coalesced.
const NUDGE_CHUNK: usize = 64;

/// Lock-free single-producer single-consumer byte ring.
///
/// `head` (consumer) and `tail` (producer) are monotone byte counters;
/// the index into `buf` is `pos & mask`. Head/tail use SeqCst at the
/// push/pop boundaries — the stall handshake in [`RingStream`] relies
/// on the SeqCst total order (a Dekker-style flag), not just
/// acquire/release. Individual byte cells are Relaxed; the SeqCst
/// tail store / head load pair carries the happens-before edge.
struct SpscRing {
    buf: Box<[AtomicU8]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    closed: AtomicBool,
}

impl SpscRing {
    fn new(cap: usize) -> SpscRing {
        assert!(cap.is_power_of_two());
        let buf: Vec<AtomicU8> = (0..cap).map(|_| AtomicU8::new(0)).collect();
        SpscRing {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Producer side: append as much of `src` as fits. Returns bytes
    /// written (0 = ring full).
    fn push(&self, src: &[u8]) -> usize {
        if src.is_empty() {
            return 0;
        }
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        let space = self.cap() - tail.wrapping_sub(head);
        let n = src.len().min(space);
        if n == 0 {
            return 0;
        }
        for (i, &b) in src[..n].iter().enumerate() {
            self.buf[tail.wrapping_add(i) & self.mask].store(b, Ordering::Relaxed);
        }
        self.tail.store(tail.wrapping_add(n), Ordering::SeqCst);
        n
    }

    /// Consumer side: take as much as available into `dst`. Returns
    /// bytes read (0 = ring empty).
    fn pop(&self, dst: &mut [u8]) -> usize {
        if dst.is_empty() {
            return 0;
        }
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        let avail = tail.wrapping_sub(head);
        let n = dst.len().min(avail);
        if n == 0 {
            return 0;
        }
        for (i, slot) in dst[..n].iter_mut().enumerate() {
            *slot = self.buf[head.wrapping_add(i) & self.mask].load(Ordering::Relaxed);
        }
        self.head.store(head.wrapping_add(n), Ordering::SeqCst);
        n
    }
}

/// Shared state of one ring connection: a ring per direction plus a
/// per-writer "stalled on full ring" flag for the space-freed wakeup.
struct RingShared {
    a2b: SpscRing,
    b2a: SpscRing,
    a_stalled: AtomicBool,
    b_stalled: AtomicBool,
}

impl RingShared {
    fn new() -> RingShared {
        RingShared {
            a2b: SpscRing::new(RING_CAP),
            b2a: SpscRing::new(RING_CAP),
            a_stalled: AtomicBool::new(false),
            b_stalled: AtomicBool::new(false),
        }
    }
}

/// One endpoint of a ring connection. Endpoint `a` writes `a2b` and
/// reads `b2a`; endpoint `b` the reverse. `sock` is this endpoint's
/// half of a socketpair: writing it wakes the peer, reading it
/// receives the peer's nudges (and EOF after the peer shuts down).
pub(crate) struct RingStream {
    shared: Arc<RingShared>,
    is_a: bool,
    sock: UnixStream,
}

impl RingStream {
    /// Build a connected pair; `.0` is endpoint `a`.
    fn pair() -> io::Result<(RingStream, RingStream)> {
        let shared = Arc::new(RingShared::new());
        let (sa, sb) = UnixStream::pair()?;
        Ok((
            RingStream {
                shared: shared.clone(),
                is_a: true,
                sock: sa,
            },
            RingStream {
                shared,
                is_a: false,
                sock: sb,
            },
        ))
    }

    fn tx(&self) -> &SpscRing {
        if self.is_a {
            &self.shared.a2b
        } else {
            &self.shared.b2a
        }
    }

    fn rx(&self) -> &SpscRing {
        if self.is_a {
            &self.shared.b2a
        } else {
            &self.shared.a2b
        }
    }

    fn my_stalled(&self) -> &AtomicBool {
        if self.is_a {
            &self.shared.a_stalled
        } else {
            &self.shared.b_stalled
        }
    }

    fn peer_stalled(&self) -> &AtomicBool {
        if self.is_a {
            &self.shared.b_stalled
        } else {
            &self.shared.a_stalled
        }
    }

    /// Ring the peer's doorbell. A full socketpair buffer already
    /// guarantees the peer is readable, so WouldBlock is ignored.
    fn nudge(&self) {
        let _ = (&self.sock).write(&[1u8]);
    }

    /// Consumer saw data: if the peer writer had stalled on a full
    /// ring, wake it now that space is freed.
    fn wake_stalled_peer(&self) {
        if self.peer_stalled().swap(false, Ordering::SeqCst) {
            self.nudge();
        }
    }

    /// Unified read for both the non-blocking reactor and the blocking
    /// client — only the socket's blocking mode differs.
    ///
    /// Pops the ring first; doorbell bytes are drained only once the
    /// ring is empty, which keeps the fd level-triggered while data
    /// remains. `Ok(0)` means the peer closed; `WouldBlock`/`TimedOut`
    /// surface exactly like a socket (nothing ready / read timeout).
    pub(crate) fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut scratch = [0u8; NUDGE_CHUNK];
        loop {
            let n = self.rx().pop(out);
            if n > 0 {
                self.wake_stalled_peer();
                return Ok(n);
            }
            if self.rx().closed.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match (&self.sock).read(&mut scratch) {
                Ok(0) => {
                    // Peer shut down; anything published before the
                    // close is still deliverable.
                    let n = self.rx().pop(out);
                    if n > 0 {
                        self.wake_stalled_peer();
                        return Ok(n);
                    }
                    return Ok(0);
                }
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Re-check once: the nudge for freshly published
                    // data may have raced past us.
                    let n = self.rx().pop(out);
                    if n > 0 {
                        self.wake_stalled_peer();
                        return Ok(n);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Non-blocking vectored write. Never returns `Ok(0)` for
    /// non-empty input: a full ring is `WouldBlock` (after arming the
    /// stall flag so the consumer's next pop nudges us awake).
    pub(crate) fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        if self.tx().closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "ring closed"));
        }
        if bufs.iter().all(|b| b.is_empty()) {
            return Ok(0);
        }
        let mut total = 0;
        for b in bufs {
            let n = self.tx().push(b);
            total += n;
            if n < b.len() {
                break;
            }
        }
        if total > 0 {
            self.nudge();
            return Ok(total);
        }
        // Ring full. Dekker handshake: publish the stall flag, then
        // retry once. SeqCst total order guarantees either this retry
        // sees the consumer's freed space, or the consumer's flag swap
        // sees the stall and nudges our doorbell.
        self.my_stalled().store(true, Ordering::SeqCst);
        let first = bufs
            .iter()
            .find(|b| !b.is_empty())
            .expect("non-empty checked");
        let n = self.tx().push(first);
        if n > 0 {
            self.my_stalled().store(false, Ordering::SeqCst);
            self.nudge();
            return Ok(n);
        }
        Err(io::ErrorKind::WouldBlock.into())
    }

    /// Blocking write for the client side: parks on the doorbell
    /// socket when the ring is full. Consuming response nudges here is
    /// safe — `read` always pops the ring before touching the socket,
    /// so a consumed nudge's data is still found.
    pub(crate) fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        let mut scratch = [0u8; NUDGE_CHUNK];
        while !buf.is_empty() {
            match self.write_vectored(&[IoSlice::new(buf)]) {
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    match (&self.sock).read(&mut scratch) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::BrokenPipe,
                                "peer closed while ring full",
                            ))
                        }
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut
                                || e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Close both directions and the doorbell. Idempotent; the peer
    /// observes EOF on its socket and `closed` on its rx ring.
    pub(crate) fn shutdown(&self) {
        self.shared.a2b.closed.store(true, Ordering::SeqCst);
        self.shared.b2a.closed.store(true, Ordering::SeqCst);
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

impl Drop for RingStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl AsRawFd for RingStream {
    fn as_raw_fd(&self) -> RawFd {
        self.sock.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// Ring listener registry
// ---------------------------------------------------------------------------

struct RingListenerShared {
    inbox: Mutex<VecDeque<RingStream>>,
    /// Write half of the accept-notification socketpair (non-blocking).
    notify: UnixStream,
}

/// In-process "listener": accepts ring connections dialed by id via
/// the global registry. `rx` is the pollable read half of the
/// notification socketpair.
pub(crate) struct RingListener {
    id: u64,
    shared: Arc<RingListenerShared>,
    rx: UnixStream,
}

static RING_REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<RingListenerShared>>>> = OnceLock::new();
static NEXT_RING_ID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<HashMap<u64, Arc<RingListenerShared>>> {
    RING_REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Create a ring listener and register it under a fresh id.
pub(crate) fn ring_listen() -> io::Result<RingListener> {
    let (rx, notify) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    notify.set_nonblocking(true)?;
    let id = NEXT_RING_ID.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::new(RingListenerShared {
        inbox: Mutex::new(VecDeque::new()),
        notify,
    });
    registry().lock().unwrap().insert(id, shared.clone());
    Ok(RingListener { id, shared, rx })
}

/// Dial a ring listener by registry id. Absent id maps to
/// ConnectionRefused so redial logic treats it like a downed node.
fn ring_connect(id: u64) -> io::Result<RingStream> {
    let shared = registry()
        .lock()
        .unwrap()
        .get(&id)
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, "no ring listener"))?;
    let (client, server) = RingStream::pair()?;
    server.sock.set_nonblocking(true)?;
    shared.inbox.lock().unwrap().push_back(server);
    // Nudge the acceptor; a full notify buffer already implies readability.
    let _ = (&shared.notify).write(&[1u8]);
    Ok(client)
}

impl RingListener {
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking accept. The byte↔item correspondence on the
    /// notification pipe is loose; callers loop until WouldBlock.
    fn accept(&self) -> io::Result<RingStream> {
        if let Some(s) = self.shared.inbox.lock().unwrap().pop_front() {
            return Ok(s);
        }
        let mut scratch = [0u8; NUDGE_CHUNK];
        loop {
            match (&self.rx).read(&mut scratch) {
                Ok(0) => return Err(io::ErrorKind::WouldBlock.into()),
                Ok(_) => {
                    if let Some(s) = self.shared.inbox.lock().unwrap().pop_front() {
                        return Ok(s);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for RingListener {
    fn drop(&mut self) {
        registry().lock().unwrap().remove(&self.id);
    }
}

impl AsRawFd for RingListener {
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// UDS temp-dir guard
// ---------------------------------------------------------------------------

static NEXT_UDS_DIR: AtomicU64 = AtomicU64::new(0);

/// Owns the per-cluster socket directory; removed on drop.
pub(crate) struct UdsDir {
    path: PathBuf,
}

impl UdsDir {
    pub(crate) fn new() -> io::Result<UdsDir> {
        let n = NEXT_UDS_DIR.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("oat-uds-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&path)?;
        Ok(UdsDir { path })
    }

    pub(crate) fn sock_path(&self, idx: usize) -> PathBuf {
        self.path.join(format!("node-{idx}.sock"))
    }
}

impl Drop for UdsDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Reactor-side stream / listener
// ---------------------------------------------------------------------------

/// A non-blocking reactor-side connection over any transport.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
    Ring(RingStream),
}

impl Stream {
    /// Dial `addr` and prepare the result for the reactor.
    pub(crate) fn connect(addr: &NodeAddr) -> io::Result<Stream> {
        let s = match addr {
            NodeAddr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            NodeAddr::Uds(p) => Stream::Uds(UnixStream::connect(p)?),
            NodeAddr::Ring(id) => Stream::Ring(ring_connect(*id)?),
        };
        s.prepare()?;
        Ok(s)
    }

    /// Set per-transport socket options for reactor use
    /// (non-blocking; TCP_NODELAY where it applies).
    pub(crate) fn prepare(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)
            }
            Stream::Uds(s) => s.set_nonblocking(true),
            Stream::Ring(s) => s.sock.set_nonblocking(true),
        }
    }

    pub(crate) fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
            Stream::Ring(s) => s.read(buf),
        }
    }

    pub(crate) fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write_vectored(bufs),
            Stream::Uds(s) => s.write_vectored(bufs),
            Stream::Ring(s) => s.write_vectored(bufs),
        }
    }

    pub(crate) fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(how),
            Stream::Uds(s) => s.shutdown(how),
            Stream::Ring(s) => {
                s.shutdown();
                Ok(())
            }
        }
    }

    /// Whether POLLOUT is meaningful for this transport. Ring
    /// doorbells are almost always writable, so polling them for
    /// write-readiness would busy-spin; blocked ring writes recover
    /// via the peer's space-freed nudge (POLLIN) instead.
    pub(crate) fn wants_pollout(&self) -> bool {
        !matches!(self, Stream::Ring(_))
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Uds(s) => s.as_raw_fd(),
            Stream::Ring(s) => s.as_raw_fd(),
        }
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        // The epoll poller diffs a persistent interest set; it must
        // learn about closed descriptors before their numbers are
        // reused (no-op under the poll(2) backend).
        oat_poll::note_closed(self.as_raw_fd());
    }
}

/// A node's listener over any transport.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
    Ring(RingListener),
}

impl Listener {
    /// Non-blocking accept, returning a reactor-prepared [`Stream`].
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        let s = match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            Listener::Uds(l) => Stream::Uds(l.accept()?.0),
            Listener::Ring(l) => Stream::Ring(l.accept()?),
        };
        s.prepare()?;
        Ok(s)
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Uds(l) => l.as_raw_fd(),
            Listener::Ring(l) => l.as_raw_fd(),
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking client stream
// ---------------------------------------------------------------------------

/// Blocking client-side connection over any transport.
pub(crate) enum ClientStream {
    Tcp(TcpStream),
    Uds(UnixStream),
    Ring(RingStream),
}

impl ClientStream {
    pub(crate) fn connect(addr: &NodeAddr) -> io::Result<ClientStream> {
        match addr {
            NodeAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(ClientStream::Tcp(s))
            }
            NodeAddr::Uds(p) => Ok(ClientStream::Uds(UnixStream::connect(p)?)),
            NodeAddr::Ring(id) => {
                let s = ring_connect(*id)?;
                s.sock.set_nonblocking(false)?;
                Ok(ClientStream::Ring(s))
            }
        }
    }

    /// Read timeout; for rings it applies to the doorbell socket and
    /// surfaces as WouldBlock/TimedOut exactly like a socket.
    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.set_read_timeout(d),
            ClientStream::Uds(s) => s.set_read_timeout(d),
            ClientStream::Ring(s) => s.sock.set_read_timeout(d),
        }
    }

    pub(crate) fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Uds(s) => s.read(buf),
            ClientStream::Ring(s) => s.read(buf),
        }
    }

    pub(crate) fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.write_all(buf),
            ClientStream::Uds(s) => s.write_all(buf),
            ClientStream::Ring(s) => s.write_all(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn spsc_ring_roundtrip_wraps() {
        let r = SpscRing::new(16);
        let mut out = [0u8; 16];
        for round in 0..10u8 {
            let msg = [round; 11];
            assert_eq!(r.push(&msg), 11);
            assert_eq!(r.pop(&mut out), 11);
            assert_eq!(&out[..11], &msg);
        }
        assert_eq!(r.pop(&mut out), 0);
    }

    #[test]
    fn spsc_ring_partial_push_when_nearly_full() {
        let r = SpscRing::new(8);
        assert_eq!(r.push(&[1; 6]), 6);
        assert_eq!(r.push(&[2; 6]), 2);
        assert_eq!(r.push(&[3; 1]), 0);
        let mut out = [0u8; 8];
        assert_eq!(r.pop(&mut out), 8);
        assert_eq!(&out[..6], &[1; 6]);
        assert_eq!(&out[6..8], &[2; 2]);
    }

    #[test]
    fn ring_stream_blocking_roundtrip() {
        let (mut a, mut b) = RingStream::pair().unwrap();
        a.write_all(b"hello ring").unwrap();
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello ring");
        b.write_all(b"pong").unwrap();
        let n = a.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn ring_stream_full_ring_blocking_writer_unblocks() {
        let (mut a, mut b) = RingStream::pair().unwrap();
        let total = RING_CAP * 3 + 12345;
        let w = thread::spawn(move || {
            let chunk = vec![7u8; 4096];
            let mut left = total;
            while left > 0 {
                let n = left.min(chunk.len());
                a.write_all(&chunk[..n]).unwrap();
                left -= n;
            }
            a // keep alive until the reader is done
        });
        let mut got = 0usize;
        let mut buf = vec![0u8; 8192];
        while got < total {
            let n = b.read(&mut buf).unwrap();
            assert!(n > 0);
            assert!(buf[..n].iter().all(|&x| x == 7));
            got += n;
        }
        drop(w.join().unwrap());
        assert_eq!(got, total);
    }

    #[test]
    fn ring_stream_eof_after_shutdown() {
        let (mut a, b) = RingStream::pair().unwrap();
        b.write_all_probe(b"tail");
        b.shutdown();
        // Published-before-close bytes still deliverable, then EOF.
        let mut buf = [0u8; 16];
        let n = a.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"tail");
        assert_eq!(a.read(&mut buf).unwrap(), 0);
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    impl RingStream {
        /// Test helper: push bytes without needing `&mut`.
        fn write_all_probe(&self, buf: &[u8]) {
            assert_eq!(self.tx().push(buf), buf.len());
            self.nudge();
        }
    }

    #[test]
    fn ring_write_after_shutdown_is_broken_pipe() {
        let (mut a, b) = RingStream::pair().unwrap();
        b.shutdown();
        let err = a.write_vectored(&[IoSlice::new(b"x")]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn ring_listener_connect_and_refused() {
        let l = ring_listen().unwrap();
        let id = l.id();
        let mut client = ring_connect(id).unwrap();
        let mut server = l.accept().unwrap();
        client.sock.set_nonblocking(false).unwrap();
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 8];
        // Server side is non-blocking; data is already in the ring.
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");
        drop(l);
        let err = ring_connect(id).err().expect("deregistered listener");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn uds_dir_cleanup_on_drop() {
        let d = UdsDir::new().unwrap();
        let p = d.path.clone();
        std::fs::write(d.sock_path(0), b"x").unwrap();
        assert!(p.exists());
        drop(d);
        assert!(!p.exists());
    }

    #[test]
    fn transport_kind_names_roundtrip() {
        for k in [TransportKind::Tcp, TransportKind::Uds, TransportKind::Ring] {
            assert_eq!(TransportKind::parse(k.name()), Some(k));
        }
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }
}
