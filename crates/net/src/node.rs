//! One tree node as a TCP-served thread.
//!
//! ## Thread and ownership model
//!
//! Per node there is exactly **one owner** of mutable state — the *main
//! loop* thread, which holds the [`MechNode`] automaton, the buffered
//! write halves of every edge and client connection, the per-node
//! [`MsgStats`], and the parked combine waiters. Everything else is
//! plumbing that converts bytes into [`Envelope`]s on the node's
//! unbounded inbox channel:
//!
//! * an **acceptor** thread `accept()`s on the node's listener and
//!   classifies each connection by its hello frame (edge peer vs client),
//! * one **edge reader** thread per tree edge decodes `TAG_NET` frames,
//! * one **client reader** thread per client connection decodes requests.
//!
//! Readers never wait on the main loop (the inbox is unbounded), so a
//! node that is busy sending can always be drained by its peers — TCP
//! backpressure cannot deadlock the cluster.
//!
//! ## Batched I/O
//!
//! The main loop drains its inbox in *batches*: it blocks for the first
//! envelope, greedily consumes everything already queued (up to
//! [`MAX_BATCH`]), and only then flushes the per-connection
//! [`BufWriter`]s. All frames destined for the same edge or client
//! during one batch therefore leave in a single buffered write instead
//! of one syscall per mechanism message. Batching cannot reorder an
//! edge: every frame for a given connection goes through that
//! connection's one writer, in main-loop order, so per-edge FIFO — the
//! paper's channel model, and what message-count parity rests on — is
//! preserved byte for byte. Buffers are always empty when the loop
//! blocks, so batching never delays a frame behind an idle inbox.
//!
//! Client responses are buffered in the same way and flushed *after*
//! the edge writers at each batch boundary, preserving the invariant
//! that a client observing a response implies the request's mechanism
//! messages are already on the wire (and counted in flight).
//!
//! ## Quiescence accounting
//!
//! A cluster-wide `AtomicI64` counts undelivered work, exactly like
//! `oat-concurrent`: incremented *before* a message's bytes are buffered
//! for a socket (or a client request is enqueued), decremented only after
//! the receiving main loop has finished the corresponding handler —
//! having first incremented for everything that handler sent in turn.
//! All node threads live in one process, so the counter reads zero only
//! at true global quiescence. Buffered-but-unflushed frames keep the
//! counter positive, and the batch boundary flush happens before the
//! main loop can block again, so `quiesce()` cannot observe zero while
//! bytes are parked in a userspace buffer.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;

use oat_core::agg::AggOp;
use oat_core::ghost::GhostReq;
use oat_core::mechanism::{CombineOutcome, MechNode, Outbox};
use oat_core::message::Message;
use oat_core::request::ReqOp;
use oat_core::tree::{NodeId, Tree};
use oat_core::wire::{put_u64, WireReader, WireValue};
use oat_sim::stats::MsgStats;

use crate::frame::{
    is_clean_close, read_frame, write_frame, TAG_HELLO_CLIENT, TAG_HELLO_EDGE, TAG_NET,
    TAG_REQ_COMBINE, TAG_REQ_METRICS, TAG_REQ_WRITE, TAG_RESP_COMBINE, TAG_RESP_METRICS,
    TAG_RESP_WRITE,
};
use crate::metrics::NodeMetrics;

/// Identifies one client connection to one node; allocated by the
/// node's acceptor, carried by every envelope that reader produces.
pub(crate) type ClientId = u64;

/// Envelopes processed per inbox batch before the writers are flushed.
/// Bounds how long a frame can sit in a userspace buffer under sustained
/// load (a starving drain loop would otherwise defer flushes forever).
const MAX_BATCH: usize = 512;

/// Buffer capacity for each edge/client connection writer.
const WRITE_BUF: usize = 32 * 1024;

/// One unit of work on a node's inbox.
pub(crate) enum Envelope<V> {
    /// A mechanism message from the neighbour `from` — counted in the
    /// in-flight gauge by the *sender* before the bytes left its buffer.
    Net { from: NodeId, msg: Message<V> },
    /// A client request — counted in the in-flight gauge by the reader
    /// that decoded it.
    Client {
        conn: ClientId,
        req_id: u64,
        op: ReqOp<V>,
    },
    /// A metrics request — not counted (it sends no mechanism messages).
    Metrics { conn: ClientId, req_id: u64 },
    /// Registration of the write half of an accepted edge connection.
    PeerWriter { peer: NodeId, stream: TcpStream },
    /// Registration of the write half of a client connection. Sent by the
    /// client's reader before any request, so responses always have a
    /// writer to land in.
    ClientWriter { conn: ClientId, stream: TcpStream },
    /// The client's reader exited (connection closed); sent after its
    /// last request, so the main loop can retire the writer.
    ClientGone { conn: ClientId },
    /// Terminate and report final state.
    Shutdown,
}

/// Inbox occupancy gauge: current depth and high-water mark.
///
/// Monitoring only: nothing synchronizes through these counters, no
/// other memory access depends on their values, and a momentarily
/// torn read (depth observed before a racing peak update) is
/// indistinguishable from sampling a moment earlier. All operations
/// are therefore `Relaxed` — each counter is still individually
/// coherent (atomic RMWs never lose increments), which is the only
/// property the metrics report needs.
#[derive(Default)]
pub(crate) struct QueueGauge {
    depth: AtomicUsize,
    peak: AtomicUsize,
}

impl QueueGauge {
    pub(crate) fn on_enqueue(&self) {
        // Relaxed: see type-level comment — gauge values order nothing.
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dequeue(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn read(&self) -> (u64, u64) {
        (
            self.depth.load(Ordering::Relaxed) as u64,
            self.peak.load(Ordering::Relaxed) as u64,
        )
    }
}

/// Everything a node thread shares with the cluster and its siblings.
pub(crate) struct NodeCtx<V> {
    pub tree: Tree,
    pub id: NodeId,
    pub ghost: bool,
    /// This node's pre-bound listener.
    pub listener: TcpListener,
    /// Listener addresses of every node, indexed by node id.
    pub addrs: Vec<std::net::SocketAddr>,
    /// This node's inbox sender (cloned into reader threads).
    pub tx: Sender<Envelope<V>>,
    /// This node's inbox.
    pub rx: Receiver<Envelope<V>>,
    /// Cluster-wide undelivered-work counter.
    pub in_flight: Arc<AtomicI64>,
    /// Cluster-wide count of mechanism messages sent (for per-request
    /// message windows without a metrics round-trip).
    pub total_sent: Arc<AtomicU64>,
    /// Set by the cluster before it unblocks the acceptors to exit.
    pub shutting_down: Arc<AtomicBool>,
    /// This node's inbox gauge.
    pub gauge: Arc<QueueGauge>,
    /// Signalled once every edge connection of this node is up.
    pub ready_tx: Sender<()>,
}

/// A node thread's final state, collected by `Cluster::shutdown`.
pub(crate) struct NodeReport<V> {
    /// Messages this node sent, per directed edge and kind.
    pub stats: MsgStats,
    /// `(node, value)` per combine answered here, local completion order.
    pub completions: Vec<(NodeId, V)>,
    /// Ghost write/combine log, when ghost tracking was enabled.
    pub log: Option<Vec<GhostReq<V>>>,
    /// Network messages this node received and processed.
    pub delivered: u64,
}

fn enqueue<V>(tx: &Sender<Envelope<V>>, gauge: &QueueGauge, env: Envelope<V>) {
    gauge.on_enqueue();
    if tx.send(env).is_err() {
        // Main loop already exited (shutdown race); drop silently.
        gauge.on_dequeue();
    }
}

/// Accepts connections for one node and classifies them by hello frame.
fn acceptor<V: WireValue + Send + 'static>(
    listener: TcpListener,
    node: NodeId,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    in_flight: Arc<AtomicI64>,
    shutting_down: Arc<AtomicBool>,
) {
    // The acceptor is the only thread minting client connections for this
    // node, so a plain counter suffices for unique ids.
    let mut next_client: ClientId = 0;
    for conn in listener.incoming() {
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        match read_frame(&mut stream) {
            Ok((TAG_HELLO_EDGE, payload)) => {
                let mut r = WireReader::new(&payload);
                let peer = match r.u32("hello node id") {
                    Ok(id) => NodeId(id),
                    // Protocol violation from an unauthenticated
                    // connection: drop it, keep accepting.
                    Err(_) => continue,
                };
                let writer = stream.try_clone().expect("clone accepted edge stream");
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::PeerWriter {
                        peer,
                        stream: writer,
                    },
                );
                let tx = tx.clone();
                let gauge = Arc::clone(&gauge);
                std::thread::spawn(move || edge_reader(stream, node, peer, tx, gauge));
            }
            Ok((TAG_HELLO_CLIENT, _)) => {
                let conn = next_client;
                next_client += 1;
                let tx = tx.clone();
                let gauge = Arc::clone(&gauge);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || client_reader(stream, conn, tx, gauge, in_flight));
            }
            // An unknown hello tag is a stranger speaking the wrong
            // protocol: drop the connection, keep accepting.
            Ok(_) => continue,
            // A connection that closes without a hello is the cluster's
            // shutdown nudge (or a port scanner); re-check the flag.
            Err(_) => continue,
        }
    }
}

/// Decodes `TAG_NET` frames from one edge peer into the inbox.
fn edge_reader<V: WireValue>(
    mut stream: TcpStream,
    node: NodeId,
    peer: NodeId,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok((TAG_NET, payload)) => {
                let msg = Message::<V>::decode_wire(&payload)
                    .unwrap_or_else(|e| panic!("node {node}: bad message from {peer}: {e}"));
                // The in-flight increment happened sender-side when the
                // frame was buffered.
                enqueue(&tx, &gauge, Envelope::Net { from: peer, msg });
            }
            Ok((tag, _)) => panic!("node {node}: unexpected tag {tag} on edge from {peer}"),
            Err(e) if is_clean_close(&e) => break,
            Err(e) => panic!("node {node}: edge from {peer} failed: {e}"),
        }
    }
}

/// Decodes client request frames from one client connection.
fn client_reader<V: WireValue>(
    mut stream: TcpStream,
    conn: ClientId,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    in_flight: Arc<AtomicI64>,
) {
    match stream.try_clone() {
        // Register the write half first; the inbox is FIFO, so the main
        // loop owns the writer before any request from this connection.
        Ok(s) => enqueue(&tx, &gauge, Envelope::ClientWriter { conn, stream: s }),
        Err(_) => return,
    }
    // Clients are untrusted: any protocol violation (malformed payload,
    // unknown tag, dirty close) drops the connection instead of
    // panicking — requests already accepted still complete.
    loop {
        match read_frame(&mut stream) {
            Ok((TAG_REQ_COMBINE, payload)) => {
                let mut r = WireReader::new(&payload);
                let req_id = match r.u64("combine req id") {
                    Ok(id) => id,
                    Err(_) => break,
                };
                in_flight.fetch_add(1, Ordering::SeqCst);
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::Client {
                        conn,
                        req_id,
                        op: ReqOp::Combine,
                    },
                );
            }
            Ok((TAG_REQ_WRITE, payload)) => {
                let mut r = WireReader::new(&payload);
                let (req_id, arg) = match r.u64("write req id").and_then(|id| {
                    let arg = V::decode(&mut r)?;
                    r.finish("write request trailing bytes")?;
                    Ok((id, arg))
                }) {
                    Ok(pair) => pair,
                    Err(_) => break,
                };
                in_flight.fetch_add(1, Ordering::SeqCst);
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::Client {
                        conn,
                        req_id,
                        op: ReqOp::Write(arg),
                    },
                );
            }
            Ok((TAG_REQ_METRICS, payload)) => {
                let mut r = WireReader::new(&payload);
                let req_id = match r.u64("metrics req id") {
                    Ok(id) => id,
                    Err(_) => break,
                };
                enqueue(&tx, &gauge, Envelope::Metrics { conn, req_id });
            }
            Ok(_) | Err(_) => break,
        }
    }
    // FIFO after every request above: the main loop retires the writer
    // only once all of this connection's requests have been served.
    enqueue(&tx, &gauge, Envelope::ClientGone { conn });
}

/// Buffers everything in `out` into the neighbours' connection writers,
/// recording stats and incrementing the in-flight counter *before* each
/// frame is written. No flush happens here — the main loop flushes all
/// writers at each batch boundary, coalescing every frame of the batch
/// that shares an edge into one wire write.
#[allow(clippy::too_many_arguments)] // the main loop's full send context
fn send_outbox<V: WireValue, A: AggOp<Value = V>>(
    node: &MechNode<impl oat_core::policy::NodePolicy, A>,
    tree: &Tree,
    id: NodeId,
    out: &mut Outbox<V>,
    writers: &mut [Option<BufWriter<TcpStream>>],
    stats: &mut MsgStats,
    in_flight: &AtomicI64,
    total_sent: &AtomicU64,
) {
    let mut payload = Vec::with_capacity(32);
    for (to, msg) in out.drain(..) {
        stats.record(tree.dir_edge_index(id, to), msg.kind());
        in_flight.fetch_add(1, Ordering::SeqCst);
        // Relaxed is sufficient here: `total_sent` carries no ordering
        // duty of its own. Every read that must observe it
        // (`Cluster::total_messages` in per-request windows) happens
        // after `quiesce()` saw `in_flight == 0`, and the SeqCst
        // decrement of `in_flight` that concludes each handler is
        // sequenced after this increment in the same thread — the
        // acquire/release edge through `in_flight` publishes the relaxed
        // add to the quiescing thread.
        total_sent.fetch_add(1, Ordering::Relaxed);
        payload.clear();
        msg.encode_wire(&mut payload);
        let wi = node.nbr_index(to);
        let writer = writers[wi]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id}: no connection to neighbour {to}"));
        write_frame(writer, TAG_NET, &payload)
            .unwrap_or_else(|e| panic!("node {id}: send to {to} failed: {e}"));
    }
}

/// Buffers one response frame for a client connection. A missing or
/// failing writer means the client vanished; its responses are dropped —
/// clients are untrusted peers, their disappearance must not kill a node.
fn respond(
    clients: &mut HashMap<ClientId, BufWriter<TcpStream>>,
    conn: ClientId,
    tag: u8,
    payload: &[u8],
) {
    if let Some(w) = clients.get_mut(&conn) {
        if write_frame(w, tag, payload).is_err() {
            clients.remove(&conn);
        }
    }
}

/// Flushes every buffered writer at a batch boundary: edges first (so a
/// flushed client response always trails the mechanism messages of the
/// request that produced it), then clients. An edge flush failure is
/// fatal — the tree is broken; a client flush failure just drops that
/// client connection.
fn flush_all(
    id: NodeId,
    writers: &mut [Option<BufWriter<TcpStream>>],
    clients: &mut HashMap<ClientId, BufWriter<TcpStream>>,
) {
    for w in writers.iter_mut().flatten() {
        w.flush()
            .unwrap_or_else(|e| panic!("node {id}: edge flush failed: {e}"));
    }
    clients.retain(|_, w| w.flush().is_ok());
}

/// The node main loop: dials higher-id neighbours, then serves envelopes
/// until shutdown. Returns the node's final state.
pub(crate) fn node_main<P, A>(ctx: NodeCtx<A::Value>, op: A, policy: P) -> NodeReport<A::Value>
where
    P: oat_core::policy::NodePolicy,
    A: AggOp,
    A::Value: WireValue,
{
    let NodeCtx {
        tree,
        id,
        ghost,
        listener,
        addrs,
        tx,
        rx,
        in_flight,
        total_sent,
        shutting_down,
        gauge,
        ready_tx,
    } = ctx;

    let mut node: MechNode<P, A> = MechNode::new(&tree, id, op, policy, ghost);
    let degree = tree.degree(id);
    let mut writers: Vec<Option<BufWriter<TcpStream>>> = (0..degree).map(|_| None).collect();
    let mut clients: HashMap<ClientId, BufWriter<TcpStream>> = HashMap::new();
    let mut stats = MsgStats::new(&tree);
    let mut out: Outbox<A::Value> = Vec::new();
    let mut completions: Vec<(NodeId, A::Value)> = Vec::new();
    let mut waiters: Vec<(ClientId, u64)> = Vec::new();
    let mut delivered: u64 = 0;
    let mut connected = 0usize;

    // The acceptor handles connections from lower-id neighbours and from
    // clients for the lifetime of the node.
    {
        let tx = tx.clone();
        let gauge = Arc::clone(&gauge);
        let in_flight = Arc::clone(&in_flight);
        let shutting_down = Arc::clone(&shutting_down);
        std::thread::spawn(move || {
            acceptor::<A::Value>(listener, id, tx, gauge, in_flight, shutting_down)
        });
    }

    // Dial every higher-id neighbour: exactly one TCP connection per tree
    // edge, used bidirectionally.
    for &v in node.nbrs() {
        if v.0 <= id.0 {
            continue;
        }
        let mut stream = TcpStream::connect(addrs[v.idx()])
            .unwrap_or_else(|e| panic!("node {id}: dial {v} failed: {e}"));
        let _ = stream.set_nodelay(true);
        let mut hello = Vec::with_capacity(4);
        oat_core::wire::put_u32(&mut hello, id.0);
        write_frame(&mut stream, TAG_HELLO_EDGE, &hello)
            .unwrap_or_else(|e| panic!("node {id}: hello to {v} failed: {e}"));
        let writer = stream.try_clone().expect("clone dialed stream");
        writers[node.nbr_index(v)] = Some(BufWriter::with_capacity(WRITE_BUF, writer));
        connected += 1;
        let tx = tx.clone();
        let gauge = Arc::clone(&gauge);
        std::thread::spawn(move || edge_reader(stream, id, v, tx, gauge));
    }
    if connected == degree {
        let _ = ready_tx.send(());
    }

    let mut shutdown = false;
    while !shutdown {
        // Block for the first envelope of a batch, then drain greedily.
        // Every path that adds frames to a writer runs inside this batch
        // loop, and `flush_all` runs before the next blocking recv, so
        // buffers are empty whenever the loop sleeps.
        let mut next = Some(rx.recv().expect("cluster holds a sender"));
        let mut batched = 0usize;
        while let Some(env) = next {
            gauge.on_dequeue();
            batched += 1;
            match env {
                Envelope::Shutdown => {
                    shutdown = true;
                    break;
                }
                Envelope::PeerWriter { peer, stream } => {
                    let wi = node.nbr_index(peer);
                    assert!(
                        writers[wi].is_none(),
                        "node {id}: duplicate edge from {peer}"
                    );
                    writers[wi] = Some(BufWriter::with_capacity(WRITE_BUF, stream));
                    connected += 1;
                    if connected == degree {
                        let _ = ready_tx.send(());
                    }
                }
                Envelope::ClientWriter { conn, stream } => {
                    clients.insert(conn, BufWriter::with_capacity(WRITE_BUF, stream));
                }
                Envelope::ClientGone { conn } => {
                    // FIFO guarantees every request from `conn` was served;
                    // parked combine waiters keep their slot and are
                    // answered best-effort (the respond() no-ops).
                    clients.remove(&conn);
                }
                Envelope::Net { from, msg } => {
                    delivered += 1;
                    let completed = node.handle_message(from, msg, &mut out);
                    send_outbox(
                        &node,
                        &tree,
                        id,
                        &mut out,
                        &mut writers,
                        &mut stats,
                        &in_flight,
                        &total_sent,
                    );
                    if let Some(v) = completed {
                        // Every coalesced waiter gets the same value.
                        for (conn, req_id) in waiters.drain(..) {
                            let mut payload = Vec::with_capacity(16);
                            put_u64(&mut payload, req_id);
                            v.encode(&mut payload);
                            respond(&mut clients, conn, TAG_RESP_COMBINE, &payload);
                            completions.push((id, v.clone()));
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Envelope::Client { conn, req_id, op } => {
                    match op {
                        ReqOp::Write(arg) => {
                            node.handle_write(arg, &mut out);
                            send_outbox(
                                &node,
                                &tree,
                                id,
                                &mut out,
                                &mut writers,
                                &mut stats,
                                &in_flight,
                                &total_sent,
                            );
                            let mut payload = Vec::with_capacity(8);
                            put_u64(&mut payload, req_id);
                            respond(&mut clients, conn, TAG_RESP_WRITE, &payload);
                        }
                        ReqOp::Combine => {
                            let outcome = node.handle_combine(&mut out);
                            send_outbox(
                                &node,
                                &tree,
                                id,
                                &mut out,
                                &mut writers,
                                &mut stats,
                                &in_flight,
                                &total_sent,
                            );
                            match outcome {
                                CombineOutcome::Done(v) => {
                                    let mut payload = Vec::with_capacity(16);
                                    put_u64(&mut payload, req_id);
                                    v.encode(&mut payload);
                                    respond(&mut clients, conn, TAG_RESP_COMBINE, &payload);
                                    completions.push((id, v));
                                }
                                CombineOutcome::Pending | CombineOutcome::Coalesced => {
                                    waiters.push((conn, req_id));
                                }
                            }
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Envelope::Metrics { conn, req_id } => {
                    let metrics = snapshot_metrics(
                        &node,
                        &tree,
                        id,
                        &stats,
                        &gauge,
                        delivered,
                        waiters.len() as u64,
                        completions.len() as u64,
                    );
                    let mut payload = Vec::with_capacity(64);
                    put_u64(&mut payload, req_id);
                    metrics.encode(&mut payload);
                    respond(&mut clients, conn, TAG_RESP_METRICS, &payload);
                }
            }
            next = if batched < MAX_BATCH {
                match rx.try_recv() {
                    Ok(env) => Some(env),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
                }
            } else {
                None
            };
        }
        flush_all(id, &mut writers, &mut clients);
    }

    assert!(
        waiters.is_empty(),
        "node {id} shut down with {} unanswered combines",
        waiters.len()
    );
    NodeReport {
        stats,
        completions,
        log: node.ghost().map(|g| g.log.clone()),
        delivered,
    }
}

#[allow(clippy::too_many_arguments)]
fn snapshot_metrics<P: oat_core::policy::NodePolicy, A: AggOp>(
    node: &MechNode<P, A>,
    tree: &Tree,
    id: NodeId,
    stats: &MsgStats,
    gauge: &QueueGauge,
    delivered: u64,
    pending_combines: u64,
    combines_served: u64,
) -> NodeMetrics {
    let mut leases_taken = 0;
    let mut leases_granted = 0;
    let mut edges = Vec::with_capacity(node.nbrs().len());
    for (vi, &v) in node.nbrs().iter().enumerate() {
        if node.taken(vi) {
            leases_taken += 1;
        }
        if node.granted(vi) {
            leases_granted += 1;
        }
        edges.push((v.0, stats.per_edge_counts()[tree.dir_edge_index(id, v)]));
    }
    let (queue_depth, queue_peak) = gauge.read();
    NodeMetrics {
        node: id.0,
        sent_by_kind: stats.kind_totals(),
        delivered,
        edges,
        leases_taken,
        leases_granted,
        queue_depth,
        queue_peak,
        pending_combines,
        combines_served,
    }
}
