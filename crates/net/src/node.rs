//! One tree node as a TCP-served, crash-restartable thread.
//!
//! ## Thread and ownership model
//!
//! Per node there is exactly **one owner** of mutable state — the *main
//! loop* thread, which holds the [`MechNode`] automaton, the per-edge
//! [`EdgeLink`]s (buffered writer + sequencing + retransmit buffer), the
//! client connection writers, the per-node [`MsgStats`], and the parked
//! combine waiters. Everything else is plumbing that converts bytes into
//! [`Envelope`]s on the node's unbounded inbox channel:
//!
//! * an **acceptor** thread `accept()`s on the node's listener and
//!   classifies each connection by its hello frame (edge peer vs client),
//! * one **edge reader** thread per live edge connection runs the
//!   receive side of the sequenced link (dedup + in-order delivery),
//! * one **edge dialer** thread per down edge (on the lower-id endpoint)
//!   redials with capped exponential backoff + jitter,
//! * one **client reader** thread per client connection decodes requests.
//!
//! Readers never wait on the main loop (the inbox is unbounded), so a
//! node that is busy sending can always be drained by its peers — TCP
//! backpressure cannot deadlock the cluster.
//!
//! ## The sequenced edge link
//!
//! The paper assumes reliable FIFO channels; a single TCP connection
//! provides that only while it lives. Every payload frame between
//! neighbours therefore carries a per-directed-edge sequence number
//! (`TAG_SEQ`), the receiver delivers exactly the next expected number
//! and discards everything else, and acknowledges cumulatively
//! (`TAG_ACK`) at its batch boundaries. The sender keeps unacknowledged
//! frames in a retransmit buffer and re-sends them (go-back-N) on an RTO
//! tick or after a reconnect, resuming from the watermark the peer's
//! hello reported. Together: per-edge FIFO **exactly-once** delivery
//! that survives killed connections and injected drop/duplicate faults.
//!
//! Injected faults never touch the quiescence or message-count books:
//! stats and the in-flight gauge are recorded once, when a frame is
//! first buffered; retransmits and duplicates are not re-counted, and a
//! discarded duplicate decrements nothing. A fault-free run and a
//! faulty-but-recovered run have identical logical message counts.
//!
//! ## Crash-restart supervision
//!
//! [`node_supervisor`] wraps the main loop. The automaton (mechanism +
//! policy + waiters) is *volatile*: an injected crash (or a caught
//! panic) destroys it. The transport — inbox receiver, edge links with
//! their sequence state and retransmit buffers, client writers — and the
//! node's last written `val` live in the [`Escrow`] and survive. On
//! restart the supervisor rebuilds a fresh automaton, restores `val`,
//! and the new run's first act is a sequenced `RESET` on every edge;
//! neighbours answer with the mechanism's peer-reset transition
//! (breaking the crashed node's leases via the release path) and a
//! revoke cascade tears down every cached aggregate that included the
//! crashed subtree. Clients re-drive lost requests via timeout + retry.
//!
//! ## Batched I/O and quiescence accounting
//!
//! The main loop drains its inbox in batches (bounded by [`MAX_BATCH`]),
//! then flushes every buffered writer — edges before clients, so a
//! client observing a response implies the request's mechanism messages
//! are already on the wire. A cluster-wide `AtomicI64` counts
//! undelivered work: incremented before a frame's bytes are buffered,
//! decremented only after the receiving main loop finished the
//! corresponding handler. Frames parked in a down edge's retransmit
//! buffer keep the counter positive until they are finally delivered,
//! so `quiesce()` remains exact under connection kills.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use oat_core::agg::AggOp;
use oat_core::fault::{EdgeFaults, FaultAction, FaultPlan, InjectedFaults};
use oat_core::ghost::GhostReq;
use oat_core::mechanism::{CombineOutcome, MechNode, Outbox};
use oat_core::message::Message;
use oat_core::policy::PolicySpec;
use oat_core::request::ReqOp;
use oat_core::tree::{NodeId, Tree};
use oat_core::wire::{put_u32, put_u64, WireReader, WireValue};
use oat_sim::stats::MsgStats;

use crate::frame::{
    read_frame, write_frame, INNER_NET, INNER_RESET, INNER_REVOKE, TAG_ACK, TAG_HELLO_CLIENT,
    TAG_HELLO_EDGE, TAG_REQ_COMBINE, TAG_REQ_METRICS, TAG_REQ_WRITE, TAG_RESP_COMBINE,
    TAG_RESP_METRICS, TAG_RESP_WRITE, TAG_SEQ,
};
use crate::metrics::NodeMetrics;

/// Identifies one client connection to one node; allocated by the
/// node's acceptor, carried by every envelope that reader produces.
pub(crate) type ClientId = u64;

/// Envelopes processed per inbox batch before the writers are flushed.
/// Bounds how long a frame can sit in a userspace buffer under sustained
/// load (a starving drain loop would otherwise defer flushes forever).
const MAX_BATCH: usize = 512;

/// Buffer capacity for each edge/client connection writer.
const WRITE_BUF: usize = 32 * 1024;

/// Retransmission-timer granularity: when unacknowledged frames exist,
/// the main loop wakes at this cadence and re-sends on edges whose ack
/// watermark made no progress since the previous tick.
const RTO: Duration = Duration::from_millis(30);

/// Reconnect backoff: first delay, doubled per failed attempt up to the
/// cap, with seeded jitter in `[0, delay)` added on top.
const RECONNECT_BASE_MS: u64 = 2;
const RECONNECT_CAP_MS: u64 = 200;

/// Soft bound on the per-edge retransmit buffer. Exactly-once delivery
/// forbids dropping unacknowledged frames, so the bound is enforced by
/// protocol cadence (the receiver acks every batch, ≤ [`MAX_BATCH`]
/// envelopes) rather than eviction; crossing it indicates a peer that
/// has stopped acking and is surfaced through the metrics timeouts.
pub(crate) const RTX_SOFT_CAP: usize = 1 << 16;

/// One unit of work on a node's inbox.
pub(crate) enum Envelope<V> {
    /// A mechanism message from the neighbour `from` — counted in the
    /// in-flight gauge by the *sender* before the bytes left its buffer.
    Net { from: NodeId, msg: Message<V> },
    /// Neighbour `from`'s automaton crashed and restarted (sequenced
    /// `RESET` frame). Counted in flight like a mechanism message.
    Reset { from: NodeId },
    /// Cascaded involuntary lease teardown from `from` (sequenced
    /// `REVOKE` frame). Counted in flight like a mechanism message.
    Revoke { from: NodeId },
    /// Cumulative ack from `from`: every sequenced frame up to `upto`
    /// arrived. Transport-level; not counted in flight.
    Ack { from: NodeId, upto: u64 },
    /// The edge connection to `peer` died (reader `epoch` identifies
    /// which incarnation of the connection, so a stale reader's death
    /// cannot tear down its successor).
    EdgeDown { peer: NodeId, epoch: u64 },
    /// A client request — counted in the in-flight gauge by the reader
    /// that decoded it.
    Client {
        conn: ClientId,
        req_id: u64,
        op: ReqOp<V>,
    },
    /// A metrics request — not counted (it sends no mechanism messages).
    Metrics { conn: ClientId, req_id: u64 },
    /// A freshly connected (or reconnected) edge stream. `accepted`
    /// distinguishes the acceptor side (which still owes the hello
    /// reply) from the dialer side (which already consumed it);
    /// `peer_rx` is the peer's receive watermark for resuming the
    /// sequenced stream.
    PeerWriter {
        peer: NodeId,
        stream: TcpStream,
        peer_rx: u64,
        accepted: bool,
    },
    /// Registration of the write half of a client connection. Sent by the
    /// client's reader before any request, so responses always have a
    /// writer to land in.
    ClientWriter { conn: ClientId, stream: TcpStream },
    /// The client's reader exited (connection closed); sent after its
    /// last request, so the main loop can retire the writer.
    ClientGone { conn: ClientId },
    /// Terminate and report final state.
    Shutdown,
}

/// Inbox occupancy gauge: current depth and high-water mark.
///
/// Monitoring only: nothing synchronizes through these counters, no
/// other memory access depends on their values, and a momentarily
/// torn read (depth observed before a racing peak update) is
/// indistinguishable from sampling a moment earlier. All operations
/// are therefore `Relaxed` — each counter is still individually
/// coherent (atomic RMWs never lose increments), which is the only
/// property the metrics report needs.
#[derive(Default)]
pub(crate) struct QueueGauge {
    depth: AtomicUsize,
    peak: AtomicUsize,
}

impl QueueGauge {
    pub(crate) fn on_enqueue(&self) {
        // Relaxed: see type-level comment — gauge values order nothing.
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dequeue(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn read(&self) -> (u64, u64) {
        (
            self.depth.load(Ordering::Relaxed) as u64,
            self.peak.load(Ordering::Relaxed) as u64,
        )
    }
}

/// Receive-side sequencing state for one directed edge, shared between
/// the main loop and the edge's (possibly successive) reader threads.
/// It outlives any single connection *and* any single automaton run:
/// the sequence space of an edge is continuous across reconnects and
/// crashes.
#[derive(Default)]
pub(crate) struct EdgeShared {
    /// Highest in-order sequence number received from the peer.
    rx_seq: AtomicU64,
    /// Frames the sequencer discarded: duplicates, out-of-window
    /// futures (go-back-N re-delivers them in order), undecodables.
    dup_drops: AtomicU64,
    /// Serializes the claim-and-enqueue step of delivery. During a
    /// reconnect the old connection's reader can still be draining
    /// kernel-buffered frames while the new reader delivers replayed
    /// copies of the same sequence numbers; holding this lock from the
    /// `rx_seq` check through the inbox enqueue makes each sequence
    /// number deliverable exactly once *and* keeps deliveries FIFO in
    /// the inbox even across overlapping readers. Uncontended in steady
    /// state (one reader per edge).
    deliver: Mutex<()>,
}

/// Everything a node thread shares with the cluster and its siblings.
pub(crate) struct NodeCtx<V> {
    pub tree: Tree,
    pub id: NodeId,
    pub ghost: bool,
    /// This node's pre-bound listener.
    pub listener: TcpListener,
    /// Listener addresses of every node, indexed by node id.
    pub addrs: Vec<std::net::SocketAddr>,
    /// This node's inbox sender (cloned into reader threads).
    pub tx: Sender<Envelope<V>>,
    /// This node's inbox.
    pub rx: Receiver<Envelope<V>>,
    /// Cluster-wide undelivered-work counter.
    pub in_flight: Arc<AtomicI64>,
    /// Cluster-wide count of mechanism messages sent (for per-request
    /// message windows without a metrics round-trip).
    pub total_sent: Arc<AtomicU64>,
    /// Set by the cluster before it unblocks the acceptors to exit.
    pub shutting_down: Arc<AtomicBool>,
    /// This node's inbox gauge.
    pub gauge: Arc<QueueGauge>,
    /// Signalled once every edge connection of this node is up.
    pub ready_tx: Sender<()>,
    /// The cluster's seeded fault plan (empty = reliable substrate).
    pub plan: Arc<FaultPlan>,
    /// Cluster-wide ledger of injected fault events.
    pub ledger: Arc<InjectedFaults>,
}

/// A node thread's final state, collected by `Cluster::shutdown`.
pub(crate) struct NodeReport<V> {
    /// Messages this node sent, per directed edge and kind.
    pub stats: MsgStats,
    /// `(node, value)` per combine answered here, local completion order.
    pub completions: Vec<(NodeId, V)>,
    /// Ghost write/combine log, when ghost tracking was enabled (final
    /// incarnation only — a crash discards the automaton's log).
    pub log: Option<Vec<GhostReq<V>>>,
    /// Network messages this node received and processed.
    pub delivered: u64,
    /// Combine waiters still parked at shutdown (possible when clients
    /// gave up under faults); they were dropped, not answered.
    pub abandoned: u64,
    /// Fault-recovery counters accumulated across all incarnations.
    pub faults: FaultCounters,
}

/// Fault-recovery counters, accumulated across crash-restarts (and in
/// [`crate::ClusterReport`], summed over all nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Edge connections re-established after a failure.
    pub reconnects: u64,
    /// Sequenced frames re-sent (RTO expiry or post-reconnect replay).
    pub retransmits: u64,
    /// Retransmission-timer expirations that triggered a resend.
    pub timeouts: u64,
    /// Automaton crash-restarts performed by the supervisor.
    pub restarts: u64,
}

/// Send side of one edge: the sequenced link's writer-side state. Lives
/// in the [`Escrow`], surviving both reconnects and automaton crashes.
struct EdgeLink {
    peer: NodeId,
    shared: Arc<EdgeShared>,
    /// Buffered writer of the live connection; `None` while down.
    writer: Option<BufWriter<TcpStream>>,
    /// Raw handle of the live connection, for injected kills.
    raw: Option<TcpStream>,
    /// Bumped per installed connection; readers carry their epoch so a
    /// stale reader's exit cannot tear down a successor connection.
    epoch: u64,
    /// Last sequence number assigned to an outgoing frame.
    tx_seq: u64,
    /// Highest sequence number the peer has acknowledged.
    acked: u64,
    /// `acked` as of the previous RTO tick (progress detection).
    acked_at_tick: u64,
    /// Unacknowledged frames: `(seq, inner tag, body, last transmit)`.
    /// The timestamp distinguishes a stalled peer from a frame that was
    /// simply sent just before an RTO tick — only frames at least one
    /// RTO old are eligible for go-back-N.
    rtx: std::collections::VecDeque<(u64, u8, Vec<u8>, Instant)>,
    /// Highest rx watermark we have acked back to the peer.
    rx_acked: u64,
    /// True when this endpoint owns redialing (lower id dials higher).
    dialer: bool,
    /// A dialer thread is currently trying to re-establish the edge.
    redialing: bool,
    /// The edge was up at least once (distinguishes reconnects).
    ever_up: bool,
    /// Seeded fault-decision stream for this directed edge.
    faults: Option<EdgeFaults>,
}

impl EdgeLink {
    fn is_up(&self) -> bool {
        self.writer.is_some()
    }
}

/// State that survives an automaton crash: the transport (inbox, edge
/// links, client writers), the report accumulators, and the single
/// durable mechanism variable — the node's last written `val`.
pub(crate) struct Escrow<V> {
    rx: Receiver<Envelope<V>>,
    links: Vec<EdgeLink>,
    clients: HashMap<ClientId, BufWriter<TcpStream>>,
    stats: MsgStats,
    completions: Vec<(NodeId, V)>,
    delivered: u64,
    /// The node's last written value; restored into the fresh automaton
    /// on restart (writes are acknowledged durable).
    durable_val: V,
    /// Injected crash trigger: crash after this many delivered messages
    /// (cumulative across restarts). Consumed when it fires.
    crash_at: Option<u64>,
    counters: FaultCounters,
    /// Edges currently up (for the ready signal).
    connected: usize,
    ready_sent: bool,
}

/// Settles one envelope's in-flight debt exactly once, when dropped —
/// at the end of the envelope's match arm on the normal path, and
/// during unwind when a handler panics (the supervisor restarts the
/// automaton, but a leaked increment would wedge `quiesce()` forever).
struct InFlightGuard<'a>(&'a AtomicI64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// How one automaton run ended.
enum RunExit {
    /// Orderly shutdown: the report is complete.
    Shutdown,
    /// The automaton crashed (injected or panicked); restart it.
    Crashed,
}

fn enqueue<V>(tx: &Sender<Envelope<V>>, gauge: &QueueGauge, env: Envelope<V>) {
    gauge.on_enqueue();
    if tx.send(env).is_err() {
        // Main loop already exited (shutdown race); drop silently.
        gauge.on_dequeue();
    }
}

/// Accepts connections for one node and classifies them by hello frame.
fn acceptor<V: WireValue + Send + 'static>(
    listener: TcpListener,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    in_flight: Arc<AtomicI64>,
    shutting_down: Arc<AtomicBool>,
) {
    // The acceptor is the only thread minting client connections for this
    // node, so a plain counter suffices for unique ids.
    let mut next_client: ClientId = 0;
    for conn in listener.incoming() {
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        match read_frame(&mut stream) {
            Ok((TAG_HELLO_EDGE, payload)) => {
                let mut r = WireReader::new(&payload);
                let (peer, peer_rx) = match r
                    .u32("hello node id")
                    .and_then(|id| Ok((NodeId(id), r.u64("hello rx watermark")?)))
                {
                    Ok(pair) => pair,
                    // Protocol violation from an unauthenticated
                    // connection: drop it, keep accepting.
                    Err(_) => continue,
                };
                // The main loop replies with its own hello (carrying its
                // rx watermark) and spawns the reader; the dialer sends
                // nothing until it has read that reply.
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::PeerWriter {
                        peer,
                        stream,
                        peer_rx,
                        accepted: true,
                    },
                );
            }
            Ok((TAG_HELLO_CLIENT, _)) => {
                let conn = next_client;
                next_client += 1;
                let tx = tx.clone();
                let gauge = Arc::clone(&gauge);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || client_reader(stream, conn, tx, gauge, in_flight));
            }
            // An unknown hello tag is a stranger speaking the wrong
            // protocol: drop the connection, keep accepting.
            Ok(_) => continue,
            // A connection that closes without a hello is the cluster's
            // shutdown nudge (or a port scanner); re-check the flag.
            Err(_) => continue,
        }
    }
}

/// Receive side of the sequenced link for one edge connection: dedups
/// and orders `TAG_SEQ` frames against the escrowed [`EdgeShared`],
/// forwards acks, and reports the connection's death to the main loop.
#[allow(clippy::too_many_arguments)] // thread entry point: each arg is one escrowed handle
fn edge_reader<V: WireValue>(
    mut stream: TcpStream,
    peer: NodeId,
    epoch: u64,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    shared: Arc<EdgeShared>,
    in_flight: Arc<AtomicI64>,
    shutting_down: Arc<AtomicBool>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok((TAG_SEQ, payload)) => {
                if payload.len() < 9 {
                    shared.dup_drops.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let seq = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
                let inner = payload[8];
                let body = &payload[9..];
                // Claim the sequence number and enqueue under the edge's
                // delivery lock: a replaced connection's reader may race
                // this one, and check-then-store alone would let both
                // deliver the same frame (double processing, double
                // in-flight decrement).
                let _claim = shared.deliver.lock().unwrap_or_else(|p| p.into_inner());
                let expected = shared.rx_seq.load(Ordering::Relaxed) + 1;
                if seq != expected {
                    // A duplicate (below the window) or a future frame
                    // (something below us was lost — go-back-N will
                    // re-deliver it in order). Either way: discard. The
                    // in-flight gauge counted the logical frame once at
                    // its first buffering, so dropping copies is free.
                    shared.dup_drops.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                shared.rx_seq.store(seq, Ordering::Relaxed);
                match inner {
                    INNER_NET => match Message::<V>::decode_wire(body) {
                        Ok(msg) => enqueue(&tx, &gauge, Envelope::Net { from: peer, msg }),
                        Err(_) => {
                            // Undecodable mechanism payload: degrade, do
                            // not panic. The frame was counted in flight
                            // by its sender; settle the account here.
                            shared.dup_drops.fetch_add(1, Ordering::Relaxed);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    },
                    INNER_RESET => enqueue(&tx, &gauge, Envelope::Reset { from: peer }),
                    INNER_REVOKE => enqueue(&tx, &gauge, Envelope::Revoke { from: peer }),
                    _ => {
                        shared.dup_drops.fetch_add(1, Ordering::Relaxed);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Ok((TAG_ACK, payload)) => {
                let mut r = WireReader::new(&payload);
                if let Ok(upto) = r.u64("ack watermark") {
                    enqueue(&tx, &gauge, Envelope::Ack { from: peer, upto });
                } else {
                    shared.dup_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Unknown frame on an authenticated edge: count and ignore.
            Ok(_) => {
                shared.dup_drops.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Clean close and hard error alike: during shutdown this
                // is expected teardown; otherwise the edge died (killed
                // connection, peer process trouble) and the main loop
                // must arrange reconnection.
                if !shutting_down.load(Ordering::SeqCst) {
                    enqueue(&tx, &gauge, Envelope::EdgeDown { peer, epoch });
                }
                break;
            }
        }
    }
}

/// Dials (or redials) one edge with capped exponential backoff plus
/// seeded jitter, performs the hello exchange, and hands the connected
/// stream to the main loop. Exits silently once shutdown begins.
fn edge_dialer<V: WireValue>(
    addr: std::net::SocketAddr,
    me: NodeId,
    peer: NodeId,
    shared: Arc<EdgeShared>,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    shutting_down: Arc<AtomicBool>,
) {
    // splitmix64 jitter stream seeded by the edge — deterministic per
    // (me, peer), independent across edges.
    let mut jitter_state: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((me.0 as u64) << 32 | peer.0 as u64);
    let mut next_jitter = move |bound: u64| -> u64 {
        jitter_state = jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % bound.max(1)
    };
    let mut backoff = RECONNECT_BASE_MS;
    loop {
        if shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let attempt = (|| -> std::io::Result<(TcpStream, u64)> {
            let mut s = TcpStream::connect(addr)?;
            let _ = s.set_nodelay(true);
            let mut hello = Vec::with_capacity(12);
            put_u32(&mut hello, me.0);
            put_u64(&mut hello, shared.rx_seq.load(Ordering::Relaxed));
            write_frame(&mut s, TAG_HELLO_EDGE, &hello)?;
            let (tag, payload) = read_frame(&mut s)?;
            let mut r = WireReader::new(&payload);
            if tag != TAG_HELLO_EDGE || r.u32("hello reply id").is_err() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad hello reply",
                ));
            }
            let peer_rx = r
                .u64("hello reply rx")
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "short hello"))?;
            Ok((s, peer_rx))
        })();
        match attempt {
            Ok((stream, peer_rx)) => {
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::PeerWriter {
                        peer,
                        stream,
                        peer_rx,
                        accepted: false,
                    },
                );
                return;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(backoff + next_jitter(backoff)));
                backoff = (backoff * 2).min(RECONNECT_CAP_MS);
            }
        }
    }
}

/// Decodes client request frames from one client connection.
fn client_reader<V: WireValue>(
    mut stream: TcpStream,
    conn: ClientId,
    tx: Sender<Envelope<V>>,
    gauge: Arc<QueueGauge>,
    in_flight: Arc<AtomicI64>,
) {
    match stream.try_clone() {
        // Register the write half first; the inbox is FIFO, so the main
        // loop owns the writer before any request from this connection.
        Ok(s) => enqueue(&tx, &gauge, Envelope::ClientWriter { conn, stream: s }),
        Err(_) => return,
    }
    // Clients are untrusted: any protocol violation (malformed payload,
    // unknown tag, dirty close) drops the connection instead of
    // panicking — requests already accepted still complete.
    loop {
        match read_frame(&mut stream) {
            Ok((TAG_REQ_COMBINE, payload)) => {
                let mut r = WireReader::new(&payload);
                let req_id = match r.u64("combine req id") {
                    Ok(id) => id,
                    Err(_) => break,
                };
                in_flight.fetch_add(1, Ordering::SeqCst);
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::Client {
                        conn,
                        req_id,
                        op: ReqOp::Combine,
                    },
                );
            }
            Ok((TAG_REQ_WRITE, payload)) => {
                let mut r = WireReader::new(&payload);
                let (req_id, arg) = match r.u64("write req id").and_then(|id| {
                    let arg = V::decode(&mut r)?;
                    r.finish("write request trailing bytes")?;
                    Ok((id, arg))
                }) {
                    Ok(pair) => pair,
                    Err(_) => break,
                };
                in_flight.fetch_add(1, Ordering::SeqCst);
                enqueue(
                    &tx,
                    &gauge,
                    Envelope::Client {
                        conn,
                        req_id,
                        op: ReqOp::Write(arg),
                    },
                );
            }
            Ok((TAG_REQ_METRICS, payload)) => {
                let mut r = WireReader::new(&payload);
                let req_id = match r.u64("metrics req id") {
                    Ok(id) => id,
                    Err(_) => break,
                };
                enqueue(&tx, &gauge, Envelope::Metrics { conn, req_id });
            }
            Ok(_) | Err(_) => break,
        }
    }
    // FIFO after every request above: the main loop retires the writer
    // only once all of this connection's requests have been served.
    enqueue(&tx, &gauge, Envelope::ClientGone { conn });
}

/// Writes one sequenced frame to a link's buffered writer.
fn write_seq(
    w: &mut BufWriter<TcpStream>,
    seq: u64,
    inner: u8,
    body: &[u8],
) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(9 + body.len());
    put_u64(&mut payload, seq);
    payload.push(inner);
    payload.extend_from_slice(body);
    write_frame(w, TAG_SEQ, &payload)
}

/// Assigns the next sequence number on `link`, appends the frame to the
/// retransmit buffer (in-flight accounting happens here, exactly once
/// per logical frame), and attempts first transmission — subject to the
/// edge's fault-decision stream and kill schedule. Returns `true` when
/// the connection must be marked down.
fn send_seq(
    link: &mut EdgeLink,
    inner: u8,
    body: &[u8],
    in_flight: &AtomicI64,
    ledger: &InjectedFaults,
) -> bool {
    in_flight.fetch_add(1, Ordering::SeqCst);
    link.tx_seq += 1;
    let seq = link.tx_seq;
    link.rtx
        .push_back((seq, inner, body.to_vec(), Instant::now()));
    debug_assert!(
        link.rtx.len() <= RTX_SOFT_CAP,
        "retransmit buffer runaway: peer {:?} stopped acking",
        link.peer
    );
    let Some(w) = link.writer.as_mut() else {
        // Edge down: the frame waits in the retransmit buffer and is
        // replayed when the connection comes back.
        return false;
    };
    let action = link
        .faults
        .as_mut()
        .map(|f| f.next_action())
        .unwrap_or(FaultAction::Deliver);
    let mut failed = false;
    match action {
        FaultAction::Deliver => failed = write_seq(w, seq, inner, body).is_err(),
        FaultAction::Drop => {
            // First transmission suppressed; the RTO resend recovers it.
            ledger.drops.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Delay => {
            // Modeled as a suppressed first transmission too — the frame
            // arrives late, via the retransmission path, preserving
            // per-edge FIFO (a true in-stream delay would reorder).
            ledger.delays.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Duplicate => {
            failed =
                write_seq(w, seq, inner, body).is_err() || write_seq(w, seq, inner, body).is_err();
            ledger.dups.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(f) = link.faults.as_mut() {
        if f.on_frame_carried() {
            // Scheduled connection kill: sever the socket with frames
            // potentially still in userspace/kernel buffers — they are
            // genuinely lost and must come back via reconnect replay.
            ledger.conns_killed.fetch_add(1, Ordering::Relaxed);
            if let Some(raw) = &link.raw {
                let _ = raw.shutdown(Shutdown::Both);
            }
            failed = true;
        }
    }
    failed
}

/// Buffers everything in `out` onto the sequenced links, recording
/// stats and in-flight accounting per frame. Returns neighbour indices
/// whose connection failed and must be marked down. No flush happens
/// here — the main loop flushes all writers at each batch boundary.
#[allow(clippy::too_many_arguments)] // splits escrow borrows the compiler can't see through a struct
fn send_outbox<V: WireValue, A: AggOp<Value = V>>(
    node: &MechNode<impl oat_core::policy::NodePolicy, A>,
    tree: &Tree,
    id: NodeId,
    out: &mut Outbox<V>,
    links: &mut [EdgeLink],
    stats: &mut MsgStats,
    in_flight: &AtomicI64,
    total_sent: &AtomicU64,
    ledger: &InjectedFaults,
    downed: &mut Vec<usize>,
) {
    let mut payload = Vec::with_capacity(32);
    for (to, msg) in out.drain(..) {
        stats.record(tree.dir_edge_index(id, to), msg.kind());
        // Relaxed is sufficient here: `total_sent` carries no ordering
        // duty of its own. Every read that must observe it
        // (`Cluster::total_messages` in per-request windows) happens
        // after `quiesce()` saw `in_flight == 0`, and the SeqCst
        // decrement of `in_flight` that concludes each handler is
        // sequenced after this increment in the same thread — the
        // acquire/release edge through `in_flight` publishes the relaxed
        // add to the quiescing thread.
        total_sent.fetch_add(1, Ordering::Relaxed);
        payload.clear();
        msg.encode_wire(&mut payload);
        let wi = node.nbr_index(to);
        if send_seq(&mut links[wi], INNER_NET, &payload, in_flight, ledger) {
            downed.push(wi);
        }
    }
}

/// Buffers one response frame for a client connection. A missing or
/// failing writer means the client vanished; its responses are dropped —
/// clients are untrusted peers, their disappearance must not kill a node.
fn respond(
    clients: &mut HashMap<ClientId, BufWriter<TcpStream>>,
    conn: ClientId,
    tag: u8,
    payload: &[u8],
) {
    if let Some(w) = clients.get_mut(&conn) {
        if write_frame(w, tag, payload).is_err() {
            clients.remove(&conn);
        }
    }
}

/// Batch-boundary flush: first piggy-back a cumulative ack on every
/// edge whose receive watermark advanced, then flush edges (before
/// clients, so a flushed client response always trails the mechanism
/// messages of the request that produced it). A failing edge is marked
/// down (reconnect recovers it) instead of panicking; a failing client
/// writer is dropped.
fn flush_and_ack(
    links: &mut [EdgeLink],
    clients: &mut HashMap<ClientId, BufWriter<TcpStream>>,
    downed: &mut Vec<usize>,
) {
    for (wi, link) in links.iter_mut().enumerate() {
        let rx = link.shared.rx_seq.load(Ordering::Relaxed);
        if let Some(w) = link.writer.as_mut() {
            let mut ok = true;
            if rx > link.rx_acked {
                let mut p = Vec::with_capacity(8);
                put_u64(&mut p, rx);
                ok = write_frame(w, TAG_ACK, &p).is_ok();
                if ok {
                    link.rx_acked = rx;
                }
            }
            if ok {
                ok = w.flush().is_ok();
            }
            if !ok {
                downed.push(wi);
            }
        }
    }
    clients.retain(|_, w| w.flush().is_ok());
}

/// The per-node supervisor: owns the [`Escrow`], spawns the acceptor
/// and the initial dialers, and restarts the automaton run after every
/// crash (injected or panicked) until an orderly shutdown.
pub(crate) fn node_supervisor<S, A>(ctx: NodeCtx<A::Value>, op: A, spec: S) -> NodeReport<A::Value>
where
    S: PolicySpec,
    A: AggOp,
    A::Value: WireValue,
{
    let NodeCtx {
        tree,
        id,
        ghost,
        listener,
        addrs,
        tx,
        rx,
        in_flight,
        total_sent,
        shutting_down,
        gauge,
        ready_tx,
        plan,
        ledger,
    } = ctx;
    let degree = tree.degree(id);
    let nbrs: Vec<NodeId> = tree.nbrs(id).to_vec();

    // The acceptor handles connections from lower-id neighbours and from
    // clients for the lifetime of the node (it is transport: it survives
    // automaton crashes by construction).
    {
        let tx = tx.clone();
        let gauge = Arc::clone(&gauge);
        let in_flight = Arc::clone(&in_flight);
        let shutting_down = Arc::clone(&shutting_down);
        std::thread::spawn(move || {
            acceptor::<A::Value>(listener, tx, gauge, in_flight, shutting_down)
        });
    }

    let links: Vec<EdgeLink> = nbrs
        .iter()
        .map(|&v| EdgeLink {
            peer: v,
            shared: Arc::new(EdgeShared::default()),
            writer: None,
            raw: None,
            epoch: 0,
            tx_seq: 0,
            acked: 0,
            acked_at_tick: 0,
            rtx: std::collections::VecDeque::new(),
            rx_acked: 0,
            dialer: id.0 < v.0,
            redialing: false,
            ever_up: false,
            faults: if plan.is_empty() {
                None
            } else {
                Some(plan.edge_stream(id, v))
            },
        })
        .collect();

    let mut escrow = Escrow {
        rx,
        links,
        clients: HashMap::new(),
        stats: MsgStats::new(&tree),
        completions: Vec::new(),
        delivered: 0,
        durable_val: op.identity(),
        crash_at: plan.crash_after(id),
        counters: FaultCounters::default(),
        connected: 0,
        ready_sent: false,
    };

    // Dial every higher-id neighbour (exactly one TCP connection per
    // tree edge, used bidirectionally). Asynchronous with backoff: the
    // main loop starts serving immediately, so hello replies to lower-id
    // dialers are never delayed behind our own dials.
    for link in &escrow.links {
        if link.dialer {
            let tx = tx.clone();
            let gauge = Arc::clone(&gauge);
            let shared = Arc::clone(&link.shared);
            let shutting_down = Arc::clone(&shutting_down);
            let addr = addrs[link.peer.idx()];
            let peer = link.peer;
            std::thread::spawn(move || {
                edge_dialer::<A::Value>(addr, id, peer, shared, tx, gauge, shutting_down)
            });
        }
    }
    if degree == 0 && !escrow.ready_sent {
        escrow.ready_sent = true;
        let _ = ready_tx.send(());
    }

    let mut log = None;
    let mut abandoned = 0;
    let mut restarted = false;
    loop {
        let mut mech: MechNode<S::Node, A> =
            MechNode::new(&tree, id, op.clone(), spec.build(degree), ghost);
        if restarted {
            // Restore the durable value into the fresh automaton. The
            // fresh node holds no grants, so this emits nothing.
            let mut sink = Vec::new();
            mech.handle_write(escrow.durable_val.clone(), &mut sink);
            debug_assert!(sink.is_empty());
        }
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_node(
                &mut escrow,
                &mut mech,
                RunCtx {
                    tree: &tree,
                    id,
                    addrs: &addrs,
                    tx: &tx,
                    in_flight: &in_flight,
                    total_sent: &total_sent,
                    shutting_down: &shutting_down,
                    gauge: &gauge,
                    ready_tx: &ready_tx,
                    ledger: &ledger,
                },
                restarted,
                &mut log,
                &mut abandoned,
            )
        }));
        match run {
            Ok(RunExit::Shutdown) => break,
            Ok(RunExit::Crashed) | Err(_) => {
                // The automaton is gone (waiters included — clients
                // recover via timeout + retry); the escrowed transport
                // and durable value carry over into the next run.
                escrow.counters.restarts += 1;
                restarted = true;
            }
        }
    }

    NodeReport {
        stats: escrow.stats,
        completions: escrow.completions,
        log,
        delivered: escrow.delivered,
        abandoned,
        faults: escrow.counters,
    }
}

/// Borrowed per-run context for [`run_node`] (everything immutable
/// across restarts).
struct RunCtx<'a, V> {
    tree: &'a Tree,
    id: NodeId,
    addrs: &'a [std::net::SocketAddr],
    tx: &'a Sender<Envelope<V>>,
    in_flight: &'a Arc<AtomicI64>,
    total_sent: &'a AtomicU64,
    shutting_down: &'a Arc<AtomicBool>,
    gauge: &'a Arc<QueueGauge>,
    ready_tx: &'a Sender<()>,
    ledger: &'a InjectedFaults,
}

/// One automaton run: serves envelopes until shutdown or crash.
#[allow(clippy::too_many_arguments)]
fn run_node<P, A>(
    escrow: &mut Escrow<A::Value>,
    node: &mut MechNode<P, A>,
    ctx: RunCtx<'_, A::Value>,
    restarted: bool,
    log: &mut Option<Vec<GhostReq<A::Value>>>,
    abandoned: &mut u64,
    // (escrow and node are separate parameters so a panic inside a
    // handler poisons only the automaton, never the escrowed transport)
) -> RunExit
where
    P: oat_core::policy::NodePolicy,
    A: AggOp,
    A::Value: WireValue,
{
    let id = ctx.id;
    let mut out: Outbox<A::Value> = Vec::new();
    let mut waiters: Vec<(ClientId, u64)> = Vec::new();
    let mut downed: Vec<usize> = Vec::new();

    if restarted {
        // First act of a restarted automaton: a sequenced RESET on every
        // edge. Down edges queue it in the retransmit buffer, so the
        // peer learns of the restart in FIFO position even across a
        // simultaneous connection failure.
        for link in escrow.links.iter_mut() {
            if send_seq(link, INNER_RESET, &[], ctx.in_flight, ctx.ledger) {
                let wi = node.nbr_index(link.peer);
                downed.push(wi);
            }
        }
        flush_and_ack(&mut escrow.links, &mut escrow.clients, &mut downed);
        mark_downed(escrow, &ctx, &mut downed);
    }

    loop {
        // Block for the first envelope of a batch — with a retransmit
        // timeout whenever unacked frames could need re-sending. Every
        // path that adds frames to a writer runs inside the batch loop,
        // and `flush_and_ack` runs before the next blocking recv, so
        // buffers are empty whenever the loop sleeps.
        let wants_tick = escrow.links.iter().any(|l| !l.rtx.is_empty() && l.is_up());
        let first = if wants_tick {
            match escrow.rx.recv_timeout(RTO) {
                Ok(env) => Some(env),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    return finish(escrow, node, waiters, log, abandoned)
                }
            }
        } else {
            match escrow.rx.recv() {
                Ok(env) => Some(env),
                Err(_) => return finish(escrow, node, waiters, log, abandoned),
            }
        };
        let Some(first) = first else {
            // RTO expired: go-back-N on every up edge whose ack watermark
            // stalled since the previous tick. A stalled watermark alone
            // is not evidence of loss — frames sent just before this
            // tick have not had an ack's worth of time yet — so the
            // oldest unacked frame must also be at least one RTO old.
            for (wi, link) in escrow.links.iter_mut().enumerate() {
                let stale = link
                    .rtx
                    .front()
                    .is_some_and(|(_, _, _, sent)| sent.elapsed() >= RTO);
                if link.is_up() && stale && link.acked == link.acked_at_tick {
                    escrow.counters.timeouts += 1;
                    escrow.counters.retransmits += link.rtx.len() as u64;
                    let w = link.writer.as_mut().expect("is_up checked");
                    let mut failed = false;
                    let now = Instant::now();
                    for (seq, inner, body, sent) in link.rtx.iter_mut() {
                        if write_seq(w, *seq, *inner, body).is_err() {
                            failed = true;
                            break;
                        }
                        *sent = now;
                    }
                    if !failed {
                        failed = w.flush().is_err();
                    }
                    if failed {
                        downed.push(wi);
                    }
                }
                link.acked_at_tick = link.acked;
            }
            mark_downed(escrow, &ctx, &mut downed);
            continue;
        };

        let mut crash = false;
        let mut shutdown = false;
        let mut next = Some(first);
        let mut batched = 0usize;
        while let Some(env) = next {
            ctx.gauge.on_dequeue();
            batched += 1;
            match env {
                Envelope::Shutdown => {
                    shutdown = true;
                    break;
                }
                Envelope::PeerWriter {
                    peer,
                    stream,
                    peer_rx,
                    accepted,
                } => install_edge(escrow, &ctx, node, peer, stream, peer_rx, accepted),
                Envelope::EdgeDown { peer, epoch } => {
                    if let Some(wi) = ctx.tree.nbrs(id).iter().position(|&v| v == peer) {
                        // Ignore a stale reader's death notice: only the
                        // current connection's reader may tear it down.
                        if escrow.links[wi].epoch == epoch && escrow.links[wi].is_up() {
                            downed.push(wi);
                            mark_downed(escrow, &ctx, &mut downed);
                        }
                    }
                }
                Envelope::Ack { from, upto } => {
                    if let Some(wi) = ctx.tree.nbrs(id).iter().position(|&v| v == from) {
                        let link = &mut escrow.links[wi];
                        if upto > link.acked {
                            link.acked = upto;
                        }
                        while link.rtx.front().is_some_and(|(s, ..)| *s <= link.acked) {
                            link.rtx.pop_front();
                        }
                    }
                }
                Envelope::ClientWriter { conn, stream } => {
                    escrow
                        .clients
                        .insert(conn, BufWriter::with_capacity(WRITE_BUF, stream));
                }
                Envelope::ClientGone { conn } => {
                    // FIFO guarantees every request from `conn` was served;
                    // parked combine waiters keep their slot and are
                    // answered best-effort (the respond() no-ops).
                    escrow.clients.remove(&conn);
                }
                Envelope::Net { from, msg } => {
                    // Guard, not a trailing decrement: the handler below
                    // can panic, and the debt must settle during unwind.
                    let _done = InFlightGuard(ctx.in_flight);
                    escrow.delivered += 1;
                    let completed = node.handle_message(from, msg, &mut out);
                    send_outbox(
                        node,
                        ctx.tree,
                        id,
                        &mut out,
                        &mut escrow.links,
                        &mut escrow.stats,
                        ctx.in_flight,
                        ctx.total_sent,
                        ctx.ledger,
                        &mut downed,
                    );
                    if let Some(v) = completed {
                        // Every coalesced waiter gets the same value.
                        for (conn, req_id) in waiters.drain(..) {
                            let mut payload = Vec::with_capacity(16);
                            put_u64(&mut payload, req_id);
                            v.encode(&mut payload);
                            respond(&mut escrow.clients, conn, TAG_RESP_COMBINE, &payload);
                            escrow.completions.push((id, v.clone()));
                        }
                    }
                    if escrow.crash_at == Some(escrow.delivered) {
                        // Injected crash, at a clean point: the envelope
                        // is fully processed and accounted. Fires once.
                        escrow.crash_at = None;
                        ctx.ledger.crashes.fetch_add(1, Ordering::Relaxed);
                        crash = true;
                        break;
                    }
                }
                Envelope::Reset { from } => {
                    let _done = InFlightGuard(ctx.in_flight);
                    // The peer's automaton restarted: run the mechanism's
                    // peer-reset transition (re-probes land in `out`) and
                    // start the revoke cascade toward unsound grants.
                    let revokes = node.handle_peer_reset(from, &mut out);
                    send_outbox(
                        node,
                        ctx.tree,
                        id,
                        &mut out,
                        &mut escrow.links,
                        &mut escrow.stats,
                        ctx.in_flight,
                        ctx.total_sent,
                        ctx.ledger,
                        &mut downed,
                    );
                    for t in revokes {
                        let wi = node.nbr_index(t);
                        if send_seq(
                            &mut escrow.links[wi],
                            INNER_REVOKE,
                            &[],
                            ctx.in_flight,
                            ctx.ledger,
                        ) {
                            downed.push(wi);
                        }
                    }
                }
                Envelope::Revoke { from } => {
                    let _done = InFlightGuard(ctx.in_flight);
                    let next_hops = node.handle_revoke(from, &mut out);
                    send_outbox(
                        node,
                        ctx.tree,
                        id,
                        &mut out,
                        &mut escrow.links,
                        &mut escrow.stats,
                        ctx.in_flight,
                        ctx.total_sent,
                        ctx.ledger,
                        &mut downed,
                    );
                    for t in next_hops {
                        let wi = node.nbr_index(t);
                        if send_seq(
                            &mut escrow.links[wi],
                            INNER_REVOKE,
                            &[],
                            ctx.in_flight,
                            ctx.ledger,
                        ) {
                            downed.push(wi);
                        }
                    }
                }
                Envelope::Client { conn, req_id, op } => {
                    let _done = InFlightGuard(ctx.in_flight);
                    match op {
                        ReqOp::Write(arg) => {
                            escrow.durable_val = arg.clone();
                            node.handle_write(arg, &mut out);
                            send_outbox(
                                node,
                                ctx.tree,
                                id,
                                &mut out,
                                &mut escrow.links,
                                &mut escrow.stats,
                                ctx.in_flight,
                                ctx.total_sent,
                                ctx.ledger,
                                &mut downed,
                            );
                            let mut payload = Vec::with_capacity(8);
                            put_u64(&mut payload, req_id);
                            respond(&mut escrow.clients, conn, TAG_RESP_WRITE, &payload);
                        }
                        ReqOp::Combine => {
                            let outcome = node.handle_combine(&mut out);
                            send_outbox(
                                node,
                                ctx.tree,
                                id,
                                &mut out,
                                &mut escrow.links,
                                &mut escrow.stats,
                                ctx.in_flight,
                                ctx.total_sent,
                                ctx.ledger,
                                &mut downed,
                            );
                            match outcome {
                                CombineOutcome::Done(v) => {
                                    let mut payload = Vec::with_capacity(16);
                                    put_u64(&mut payload, req_id);
                                    v.encode(&mut payload);
                                    respond(&mut escrow.clients, conn, TAG_RESP_COMBINE, &payload);
                                    escrow.completions.push((id, v));
                                }
                                CombineOutcome::Pending | CombineOutcome::Coalesced => {
                                    // A retried request must not park a
                                    // second waiter (one response per
                                    // (connection, req-id)).
                                    if !waiters.contains(&(conn, req_id)) {
                                        waiters.push((conn, req_id));
                                    }
                                }
                            }
                        }
                    }
                }
                Envelope::Metrics { conn, req_id } => {
                    let metrics = snapshot_metrics(
                        node,
                        ctx.tree,
                        id,
                        escrow,
                        ctx.gauge,
                        waiters.len() as u64,
                    );
                    let mut payload = Vec::with_capacity(64);
                    put_u64(&mut payload, req_id);
                    metrics.encode(&mut payload);
                    respond(&mut escrow.clients, conn, TAG_RESP_METRICS, &payload);
                }
            }
            next = if batched < MAX_BATCH {
                match escrow.rx.try_recv() {
                    Ok(env) => Some(env),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
                }
            } else {
                None
            };
        }
        flush_and_ack(&mut escrow.links, &mut escrow.clients, &mut downed);
        mark_downed(escrow, &ctx, &mut downed);
        if crash {
            return RunExit::Crashed;
        }
        if shutdown {
            return finish(escrow, node, waiters, log, abandoned);
        }
    }
}

/// Orderly end of the final run: record what the automaton still held.
fn finish<P, A>(
    _escrow: &mut Escrow<A::Value>,
    node: &MechNode<P, A>,
    waiters: Vec<(ClientId, u64)>,
    log: &mut Option<Vec<GhostReq<A::Value>>>,
    abandoned: &mut u64,
) -> RunExit
where
    P: oat_core::policy::NodePolicy,
    A: AggOp,
{
    // Under faults a client may have given up on a combine; dropping the
    // waiter (instead of the old panic) lets shutdown proceed and the
    // count surfaces in the report.
    *abandoned += waiters.len() as u64;
    *log = node.ghost().map(|g| g.log.clone());
    RunExit::Shutdown
}

/// Installs a freshly connected edge stream: replies to the hello when
/// we are the accepting side, replaces any previous connection, spawns
/// the reader, and replays every unacknowledged frame past the peer's
/// receive watermark.
fn install_edge<P, A>(
    escrow: &mut Escrow<A::Value>,
    ctx: &RunCtx<'_, A::Value>,
    node: &MechNode<P, A>,
    peer: NodeId,
    stream: TcpStream,
    peer_rx: u64,
    accepted: bool,
) where
    P: oat_core::policy::NodePolicy,
    A: AggOp,
    A::Value: WireValue,
{
    // An unknown peer id is a protocol violation from an untrusted
    // connection: drop it.
    let Some(wi) = ctx.tree.nbrs(ctx.id).iter().position(|&v| v == peer) else {
        return;
    };
    let _ = node; // neighbour lookup goes through the tree; node unused
    let link = &mut escrow.links[wi];
    if accepted {
        // Reply with our id + receive watermark so the dialer knows
        // where to resume. Direct unbuffered write: the dialer sends
        // nothing until it has read this.
        let mut hello = Vec::with_capacity(12);
        put_u32(&mut hello, ctx.id.0);
        put_u64(&mut hello, link.shared.rx_seq.load(Ordering::Relaxed));
        let mut s = &stream;
        if write_frame(&mut s, TAG_HELLO_EDGE, &hello).is_err() {
            // The dialer will retry with backoff.
            return;
        }
    }
    let (reader_stream, raw) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return,
    };
    let was_up = link.is_up();
    // Sever any still-live previous connection before installing its
    // replacement, so at most one reader per edge is draining a socket.
    // (Its reader exits with the old epoch; the EdgeDown is ignored.)
    if let Some(old) = link.raw.take() {
        let _ = old.shutdown(Shutdown::Both);
    }
    link.epoch += 1;
    link.raw = Some(raw);
    link.writer = Some(BufWriter::with_capacity(WRITE_BUF, stream));
    link.redialing = false;
    if link.ever_up {
        escrow.counters.reconnects += 1;
    }
    link.ever_up = true;
    {
        let tx = ctx.tx.clone();
        let gauge = Arc::clone(ctx.gauge);
        let shared = Arc::clone(&link.shared);
        let in_flight = Arc::clone(ctx.in_flight);
        let shutting_down = Arc::clone(ctx.shutting_down);
        let epoch = link.epoch;
        std::thread::spawn(move || {
            edge_reader::<A::Value>(
                reader_stream,
                peer,
                epoch,
                tx,
                gauge,
                shared,
                in_flight,
                shutting_down,
            )
        });
    }
    // Resume the sequenced stream: everything the peer already has is
    // acknowledged by its hello watermark; replay the rest in order.
    if peer_rx > link.acked {
        link.acked = peer_rx;
    }
    while link.rtx.front().is_some_and(|(s, ..)| *s <= link.acked) {
        link.rtx.pop_front();
    }
    if !link.rtx.is_empty() {
        escrow.counters.retransmits += link.rtx.len() as u64;
        let w = link.writer.as_mut().expect("just installed");
        let mut failed = false;
        let now = Instant::now();
        for (seq, inner, body, sent) in link.rtx.iter_mut() {
            if write_seq(w, *seq, *inner, body).is_err() {
                failed = true;
                break;
            }
            *sent = now;
        }
        if !failed {
            failed = w.flush().is_err();
        }
        if failed {
            let mut downs = vec![wi];
            mark_downed(escrow, ctx, &mut downs);
            return;
        }
    }
    if !was_up {
        escrow.connected += 1;
        if escrow.connected == ctx.tree.degree(ctx.id) && !escrow.ready_sent {
            escrow.ready_sent = true;
            let _ = ctx.ready_tx.send(());
        }
    }
}

/// Marks every queued-down edge as down exactly once and spawns the
/// redial thread when this endpoint owns the edge's dialing.
fn mark_downed<V: WireValue + Send + 'static>(
    escrow: &mut Escrow<V>,
    ctx: &RunCtx<'_, V>,
    downed: &mut Vec<usize>,
) {
    for wi in downed.drain(..) {
        let link = &mut escrow.links[wi];
        if !link.is_up() {
            continue;
        }
        link.writer = None;
        if let Some(raw) = link.raw.take() {
            let _ = raw.shutdown(Shutdown::Both);
        }
        escrow.connected -= 1;
        if link.dialer && !link.redialing && !ctx.shutting_down.load(Ordering::SeqCst) {
            link.redialing = true;
            let tx = ctx.tx.clone();
            let gauge = Arc::clone(ctx.gauge);
            let shared = Arc::clone(&link.shared);
            let shutting_down = Arc::clone(ctx.shutting_down);
            let addr = ctx.addrs[link.peer.idx()];
            let me = ctx.id;
            let peer = link.peer;
            std::thread::spawn(move || {
                edge_dialer::<V>(addr, me, peer, shared, tx, gauge, shutting_down)
            });
        }
    }
}

fn snapshot_metrics<P: oat_core::policy::NodePolicy, A: AggOp>(
    node: &MechNode<P, A>,
    tree: &Tree,
    id: NodeId,
    escrow: &Escrow<A::Value>,
    gauge: &QueueGauge,
    pending_combines: u64,
) -> NodeMetrics {
    let mut leases_taken = 0;
    let mut leases_granted = 0;
    let mut edges = Vec::with_capacity(node.nbrs().len());
    let mut dup_drops = 0;
    for (vi, &v) in node.nbrs().iter().enumerate() {
        if node.taken(vi) {
            leases_taken += 1;
        }
        if node.granted(vi) {
            leases_granted += 1;
        }
        edges.push((
            v.0,
            escrow.stats.per_edge_counts()[tree.dir_edge_index(id, v)],
        ));
        dup_drops += escrow.links[vi].shared.dup_drops.load(Ordering::Relaxed);
    }
    let (queue_depth, queue_peak) = gauge.read();
    NodeMetrics {
        node: id.0,
        sent_by_kind: escrow.stats.kind_totals(),
        delivered: escrow.delivered,
        edges,
        leases_taken,
        leases_granted,
        queue_depth,
        queue_peak,
        pending_combines,
        combines_served: escrow.completions.len() as u64,
        reconnects: escrow.counters.reconnects,
        retransmits: escrow.counters.retransmits,
        dup_drops,
        timeouts: escrow.counters.timeouts,
        restarts: escrow.counters.restarts,
    }
}
