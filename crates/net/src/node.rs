//! One tree node as reactor-owned, crash-restartable state.
//!
//! ## Ownership model
//!
//! A node is plain data — [`NodeRt`] — owned by exactly one reactor
//! thread (see [`crate::reactor`]): the [`MechNode`] automaton, the
//! per-edge [`EdgeLink`]s (sequencing + retransmit buffer + the live
//! connection), the client connections, the per-node [`MsgStats`], and
//! the parked combine waiters. There are no per-node threads, no inbox
//! channel, and no locks: every byte this node reads or writes moves
//! through its owning reactor's event loop, which calls the `on_*`
//! handlers below when a socket is ready and [`NodeRt::flush`] once per
//! loop iteration.
//!
//! Inbound bytes land in per-connection [`FrameDecoder`]s, so a frame
//! split across arbitrarily many TCP segments (or a client that stalls
//! mid-frame) consumes buffer space, never a thread — the decoder picks
//! up where the last segment left off. Outbound frames are queued on
//! per-connection [`WriteQueue`]s and leave in vectored writes at the
//! loop's flush point.
//!
//! ## The sequenced edge link
//!
//! The paper assumes reliable FIFO channels; a single TCP connection
//! provides that only while it lives. Every payload frame between
//! neighbours therefore carries a per-directed-edge sequence number
//! (`TAG_SEQ`), the receiver delivers exactly the next expected number
//! and discards everything else, and acknowledges cumulatively
//! (`TAG_ACK`) at flush boundaries. The sender keeps unacknowledged
//! frames in a retransmit buffer and re-sends them (go-back-N) on an
//! RTO tick or after a reconnect, resuming from the watermark the
//! peer's hello reported. Together: per-edge FIFO **exactly-once**
//! delivery that survives killed connections and injected
//! drop/duplicate faults.
//!
//! Exactly-once forbids dropping unacknowledged frames, so the
//! retransmit buffer is bounded by *backpressure* instead of eviction:
//! past [`RTX_DEFAULT_HIGH`] (configurable via `NetConfig`) the node
//! stops reading its **client** connections — the intake that generates
//! new work — until the buffer drains below the low watermark. Edge
//! connections are never stalled: acks and peer traffic must keep
//! flowing or the stall could never clear. Stall entries are counted in
//! [`NodeMetrics::backpressure_stalls`].
//!
//! Injected faults never touch the quiescence or message-count books:
//! stats and the in-flight gauge are recorded once, when a frame is
//! first buffered; retransmits and duplicates are not re-counted, and a
//! discarded duplicate decrements nothing. A fault-free run and a
//! faulty-but-recovered run have identical logical message counts.
//!
//! ## Crash-restart supervision and durability grades
//!
//! The automaton (mechanism + policy + waiters) is *volatile*: an
//! injected crash (or a caught panic — each dispatch runs under
//! `catch_unwind`) destroys it. The transport — edge links with their
//! sequence state and retransmit buffers, client connections — and the
//! node's last written `val` survive in [`NodeRt`]. On restart the node
//! rebuilds a fresh automaton, restores `val`, and the new run's first
//! act is a sequenced `RESET` on every edge; neighbours answer with the
//! mechanism's peer-reset transition and a revoke cascade tears down
//! every cached aggregate that included the crashed subtree. Clients
//! re-drive lost requests via timeout + retry.
//!
//! A process-grade kill (`kill9` in the fault grammar) destroys the
//! whole `NodeRt` — links, retransmit buffers, client connections, the
//! in-memory escrow itself. Recovery then runs through the node's
//! [`Durability`] backend: [`NodeRt::kill9_restart`] demolishes the
//! runtime state, replays the write-ahead log into fresh link
//! watermarks + retransmit buffers + durable value, bumps the
//! incarnation epoch, and broadcasts `RESET` exactly like an in-process
//! crash. The same replay path serves *cold start*: a node spawned over
//! an existing WAL directory rejoins with its history intact. With the
//! default `Memory` backend there is nothing to replay, so kill9
//! schedules are rejected at spawn.
//!
//! ## Quiescence accounting
//!
//! A cluster-wide counter ([`crate::reactor::InFlight`], an `AtomicI64`
//! plus a condvar notified at zero) counts undelivered work. Client requests
//! are counted at decode and settled when their dispatch ends. Edge
//! frames settle on *acknowledgement*: the sender increments when a
//! frame is assigned its sequence number and decrements once per frame
//! trimmed from the retransmit buffer (cumulative ack, reconnect-hello
//! watermark — each frame leaves exactly once). Outstanding edge debt
//! therefore always equals the total frames parked in retransmit
//! buffers, which is what makes kill9 accounting exact: demolishing a
//! node forgives its buffered frames, replaying the WAL re-charges the
//! recovered ones. Work spawned by a delivered frame is counted before
//! the ack that settles its parent can be flushed, so the counter never
//! dips to zero while logical work remains and `quiesce()` stays exact
//! under connection kills and process kills alike.

use std::collections::{HashMap, VecDeque};
use std::net::Shutdown;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

use oat_core::agg::AggOp;
use oat_core::fault::{EdgeFaults, FaultAction, FaultPlan, InjectedFaults};
use oat_core::ghost::GhostReq;
use oat_core::mechanism::{CombineOutcome, MechNode, Outbox};
use oat_core::message::Message;
use oat_core::policy::PolicySpec;
use oat_core::request::ReqOp;
use oat_core::tree::{NodeId, Tree};
use oat_core::wire::{put_u32, put_u64, WireReader, WireValue};
use oat_poll::{PollFd, POLLIN, POLLOUT};
use oat_sim::stats::MsgStats;
use std::os::unix::io::AsRawFd;

use crate::durability::{Durability, LinkState, WalState};
use crate::frame::{
    decode_batch, encode_batch, INNER_NET, INNER_NET_T, INNER_RESET, INNER_REVOKE, TAG_ACK,
    TAG_HELLO_CLIENT, TAG_HELLO_EDGE, TAG_PARTIAL, TAG_REQ_BATCH, TAG_REQ_COMBINE,
    TAG_REQ_COMBINE_T, TAG_REQ_METRICS, TAG_REQ_WRITE, TAG_REQ_WRITE_T, TAG_RESP_BATCH,
    TAG_RESP_COMBINE, TAG_RESP_METRICS, TAG_RESP_WRITE, TAG_SEQ, TAG_SUB,
};
use crate::metrics::NodeMetrics;
use crate::reactor::{Conn, InFlight, NodeSeed, Tok, WriteQueue};
use crate::transport::{Listener, NodeAddr, Stream};

/// Identifies one client connection to one node.
pub(crate) type ClientId = u64;

/// Retransmission-timer granularity: when unacknowledged frames exist,
/// the reactor wakes at this cadence and re-sends on edges whose ack
/// watermark made no progress since the previous tick.
pub(crate) const RTO: Duration = Duration::from_millis(30);

/// Reconnect backoff: first delay, doubled per failed attempt up to the
/// cap, with seeded jitter in `[0, delay)` added on top.
const RECONNECT_BASE_MS: u64 = 2;
const RECONNECT_CAP_MS: u64 = 200;

/// Default retransmit-buffer backpressure watermarks (frames per edge):
/// at the high mark the node parks its client intake, below the low
/// mark it resumes. Overridable per cluster via `NetConfig`.
pub(crate) const RTX_DEFAULT_HIGH: usize = 1 << 16;
pub(crate) const RTX_DEFAULT_LOW: usize = 1 << 12;

/// Work-queue gauge: messages decoded but not yet dispatched, plus the
/// high-water mark. With the reactor model decode and dispatch happen
/// in the same loop iteration, so `depth` returns to zero at every
/// flush boundary — `peak` records how deep one readiness event got.
///
/// Monitoring only; all operations are `Relaxed` (each counter is still
/// individually coherent, which is all the metrics report needs).
#[derive(Default)]
pub(crate) struct QueueGauge {
    depth: AtomicUsize,
    peak: AtomicUsize,
}

impl QueueGauge {
    pub(crate) fn on_enqueue(&self) {
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dequeue(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn read(&self) -> (u64, u64) {
        (
            self.depth.load(Ordering::Relaxed) as u64,
            self.peak.load(Ordering::Relaxed) as u64,
        )
    }
}

/// A node's final state, collected by `Cluster::shutdown`.
pub(crate) struct NodeReport<V> {
    /// Messages this node sent, per directed edge and kind.
    pub stats: MsgStats,
    /// `(node, value)` per combine answered here, local completion order.
    pub completions: Vec<(NodeId, V)>,
    /// Ghost write/combine log, when ghost tracking was enabled (final
    /// incarnation only — a crash discards the automaton's log).
    pub log: Option<Vec<GhostReq<V>>>,
    /// Network messages this node received and processed.
    pub delivered: u64,
    /// Combine waiters still parked at shutdown (possible when clients
    /// gave up under faults); they were dropped, not answered.
    pub abandoned: u64,
    /// Fault-recovery counters accumulated across all incarnations.
    pub faults: FaultCounters,
    /// Durability-backend counters (all zero for the Memory backend).
    pub wal: crate::durability::WalCounters,
}

/// Fault-recovery counters, accumulated across crash-restarts (and in
/// [`crate::ClusterReport`], summed over all nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Edge connections re-established after a failure.
    pub reconnects: u64,
    /// Sequenced frames re-sent (RTO expiry or post-reconnect replay).
    pub retransmits: u64,
    /// Retransmission-timer expirations that triggered a resend.
    pub timeouts: u64,
    /// Automaton restarts performed by the supervisor — in-process
    /// crash-restarts plus process-grade kill9 recoveries.
    pub restarts: u64,
    /// Process-grade kills recovered through the durability backend
    /// (always counted in `restarts` too).
    pub kill9s: u64,
}

/// Settles one *client* work item's in-flight debt exactly once, when
/// dropped — at the end of its dispatch arm on the normal path, and
/// after the `catch_unwind` when a handler panics (the node restarts
/// the automaton, but a leaked increment would wedge `quiesce()`
/// forever). Edge frames are not guarded here: their debt belongs to
/// the sender and settles when the frame leaves its retransmit buffer.
struct InFlightGuard<'a>(&'a InFlight);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Cluster-shared context, borrowed by every handler. Immutable for the
/// cluster's lifetime.
pub(crate) struct Ctx<'a, S, A: AggOp> {
    pub tree: &'a Tree,
    pub addrs: &'a [NodeAddr],
    pub op: &'a A,
    pub spec: &'a S,
    pub ghost: bool,
    /// Cluster-wide undelivered-work counter.
    pub in_flight: &'a InFlight,
    /// Cluster-wide count of mechanism messages sent.
    pub total_sent: &'a AtomicU64,
    /// Cluster-wide ledger of injected fault events.
    pub ledger: &'a InjectedFaults,
    /// Retransmit-buffer backpressure watermarks.
    pub rtx_high: usize,
    pub rtx_low: usize,
}

/// Send + receive state of one edge: the sequenced link, its live
/// connection (if any), and the redial timer. Survives both reconnects
/// and automaton crashes — the sequence space of an edge is continuous
/// across both.
struct EdgeLink {
    peer: NodeId,
    /// The live connection; `None` while down.
    conn: Option<Conn>,
    /// A dial in progress: connected, hello sent, awaiting the reply.
    pending_dial: Option<Conn>,
    /// When to attempt the next dial (dialer side, edge down).
    redial_at: Option<Instant>,
    backoff_ms: u64,
    /// splitmix64 state for reconnect jitter, seeded per directed edge.
    jitter_state: u64,
    /// Last sequence number assigned to an outgoing frame.
    tx_seq: u64,
    /// Highest sequence number the peer has acknowledged.
    acked: u64,
    /// `acked` as of the previous RTO tick (progress detection).
    acked_at_tick: u64,
    /// Unacknowledged frames: `(seq, inner tag, body, last transmit)`.
    /// The timestamp distinguishes a stalled peer from a frame sent just
    /// before an RTO tick — only frames at least one RTO old are
    /// eligible for go-back-N.
    rtx: VecDeque<(u64, u8, Vec<u8>, Instant)>,
    /// Highest in-order sequence number received from the peer.
    rx_seq: u64,
    /// Highest rx watermark we have acked back to the peer.
    rx_acked: u64,
    /// Re-send the cumulative ack at the next flush even though
    /// `rx_seq` did not advance: the peer retransmitted frames we
    /// already delivered, so our previous ack was evidently lost.
    reack: bool,
    /// Frames the sequencer discarded: duplicates, out-of-window
    /// futures (go-back-N re-delivers them in order), undecodables.
    dup_drops: u64,
    /// True when this endpoint owns redialing (lower id dials higher).
    dialer: bool,
    /// The edge was up at least once (distinguishes reconnects).
    ever_up: bool,
    /// Seeded fault-decision stream for this directed edge.
    faults: Option<EdgeFaults>,
}

impl EdgeLink {
    fn next_jitter(&mut self, bound: u64) -> u64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % bound.max(1)
    }
}

/// One unit of decoded work, dispatched in decode order.
enum Work<V> {
    /// A mechanism message from neighbour `from` — counted in the
    /// in-flight gauge by the *sender* before the bytes were buffered.
    Net { from: NodeId, msg: Message<V> },
    /// A mechanism message for forest tree `tree` (inner tag 3).
    /// Counted like [`Work::Net`]; tree 0 decodes to `Net` instead.
    NetT {
        from: NodeId,
        tree: u32,
        msg: Message<V>,
    },
    /// Neighbour `from`'s automaton crashed and restarted (sequenced
    /// `RESET` frame). Counted in flight like a mechanism message.
    Reset { from: NodeId },
    /// Cascaded involuntary lease teardown from `from` (sequenced
    /// `REVOKE` frame). Counted in flight like a mechanism message.
    Revoke { from: NodeId },
    /// Per-tree revoke for a forest tree (`REVOKE` with a 4-byte tree-id
    /// body). Counted like [`Work::Revoke`].
    RevokeT { from: NodeId, tree: u32 },
    /// A client request — counted in flight at decode.
    Client {
        conn: ClientId,
        req_id: u64,
        op: ReqOp<V>,
    },
    /// A tree-scoped client request (tags 13/14) for a forest tree.
    /// Counted like [`Work::Client`]; tree 0 decodes to `Client`.
    ClientT {
        conn: ClientId,
        req_id: u64,
        tree: u32,
        op: ReqOp<V>,
    },
    /// A continuous-query subscription (`TAG_SUB`) — counted in flight
    /// at decode (registering triggers a refresh combine).
    Sub {
        conn: ClientId,
        sub_id: u64,
        tree: u32,
    },
    /// A metrics request — not counted (it sends no mechanism messages).
    Metrics { conn: ClientId, req_id: u64 },
}

/// Accumulates responses for in-progress request batches.
///
/// A `TAG_REQ_BATCH` frame's members dispatch as ordinary
/// [`Work::Client`] items, so their responses arrive one at a time —
/// possibly much later (a parked combine), possibly after a crash
/// forced the client to re-drive members individually. The book routes
/// each `(client, req id)` response into its batch accumulator; at
/// every flush boundary the node *streams* whatever the accumulator
/// gathered as a `TAG_RESP_BATCH` frame, so completed members leave
/// immediately instead of waiting behind the roster's slowest member
/// (one request batch may be answered by several response frames whose
/// items concatenate to the full roster). A member is struck from the
/// index at its *first* response: an idempotent retry answered a
/// second time falls through to the direct path, where the client
/// discards unknown ids — never a duplicate item in a batch frame.
#[derive(Default)]
struct BatchBook {
    /// `(client, req id)` → batch key, while the member's answer is due.
    member: HashMap<(ClientId, u64), u64>,
    /// `(client, batch key)` → responses gathered since the last flush.
    accs: HashMap<(ClientId, u64), BatchAcc>,
    next_key: u64,
}

struct BatchAcc {
    /// Members that have not answered yet; the accumulator retires when
    /// this reaches zero *and* the gathered items have been streamed.
    remaining: usize,
    /// Responses gathered since the last flush-boundary emission.
    items: Vec<(u8, Vec<u8>)>,
}

impl BatchBook {
    /// Forgets everything owed to a departed client.
    fn purge(&mut self, cid: ClientId) {
        self.member.retain(|&(c, _), _| c != cid);
        self.accs.retain(|&(c, _), _| c != cid);
    }
}

/// A lazily created automaton instance serving one named tree of the
/// forest (tree ids ≥ 1, addressed by the `_T` frame variants). Tree 0
/// is the node's built-in instance (`NodeRt::mech`) and keeps the
/// legacy wire encodings byte-for-byte. Forest instances are
/// *volatile*: their writes are not WAL-logged, so a crash or kill9
/// loses them — the query engine owns re-driving them (its per-key
/// accumulators are absolute values, so a re-write heals the tree).
struct Inst<N: oat_core::policy::NodePolicy, A: AggOp> {
    mech: MechNode<N, A>,
    /// Parked tree-scoped combine requests.
    waiters: Vec<(ClientId, u64)>,
}

/// One continuous-query subscription: a client that asked to be pushed
/// `TAG_PARTIAL` refinements for a tree served at this node.
struct Sub {
    conn: ClientId,
    id: u64,
    /// The subscriber has been sent at least one partial (a fresh
    /// subscriber is primed with the current value even when it equals
    /// the last pushed one).
    primed: bool,
}

/// Per-tree subscription state. Lives *outside* the automaton
/// instances: subscriptions are transport-level state like client
/// connections, so an automaton crash-restart must not silently end a
/// continuous query (a kill9 severs the client sockets, which drops
/// the subscriptions with them — subscribers re-subscribe on
/// reconnect, exactly like they re-drive requests).
struct TreeSubs<V> {
    subs: Vec<Sub>,
    /// Monotone per-tree refinement counter stamped on pushed partials.
    push_seq: u64,
    /// Last pushed value: a refresh that reproduces it is not a
    /// refinement and is pushed only to unprimed subscribers.
    last_push: Option<V>,
}

impl<V> Default for TreeSubs<V> {
    fn default() -> Self {
        TreeSubs {
            subs: Vec::new(),
            push_seq: 0,
            last_push: None,
        }
    }
}

/// One tree node: automaton + transport, owned by a reactor thread.
pub(crate) struct NodeRt<S: PolicySpec, A: AggOp> {
    id: NodeId,
    degree: usize,
    listener: Listener,
    mech: MechNode<S::Node, A>,
    links: Vec<EdgeLink>,
    /// Accepted connections that have not yet sent their hello.
    pending: HashMap<u64, Conn>,
    next_pending: u64,
    clients: HashMap<ClientId, Conn>,
    next_client: ClientId,
    /// In-progress request batches awaiting their combined response.
    book: BatchBook,
    /// Parked combine requests, answered at the next completion.
    waiters: Vec<(ClientId, u64)>,
    /// Lazily created forest automaton instances (tree ids ≥ 1); the
    /// node's built-in instance (`mech`) serves tree 0.
    insts: HashMap<u32, Inst<S::Node, A>>,
    /// Continuous-query subscriptions, keyed by tree id.
    tree_subs: HashMap<u32, TreeSubs<A::Value>>,
    stats: MsgStats,
    completions: Vec<(NodeId, A::Value)>,
    delivered: u64,
    /// The node's last written value; restored into the fresh automaton
    /// on restart (writes are acknowledged durable).
    durable_val: A::Value,
    /// The durability backend: in-memory (no-op) or write-ahead log.
    backend: Box<dyn Durability>,
    /// Cached `backend.active()` — gates every logging hook so the
    /// Memory backend costs nothing on the hot path.
    durable: bool,
    /// Incarnation epoch: bumped on every restart (crash or kill9) and
    /// persisted through the backend so a recovered incarnation never
    /// reuses an epoch its predecessor already burned.
    epoch: u64,
    /// Last lease bits `(granted << 1) | taken` logged per neighbour
    /// index; transitions are WAL-logged as diffs against this cache.
    lease_bits: Vec<u8>,
    /// Injected crash trigger: crash after this many delivered messages
    /// (cumulative across restarts). Consumed when it fires.
    crash_at: Option<u64>,
    /// Injected process-kill trigger, same schedule semantics.
    kill9_at: Option<u64>,
    /// A kill9 fired during dispatch; the reactor demolishes and
    /// recovers the node at the next safe point (between dispatches).
    kill9_pending: bool,
    counters: FaultCounters,
    /// Times the node entered a client-intake stall (see module docs).
    backpressure_stalls: u64,
    stalled: bool,
    /// Edges currently up (for the ready signal).
    connected: usize,
    ready_sent: bool,
    ready_tx: Sender<()>,
    abandoned: u64,
    gauge: QueueGauge,
    /// Mechanism outbox scratch, drained after every handler call.
    out: Outbox<A::Value>,
    /// Neighbour indices whose connection failed mid-handler; settled
    /// (marked down) at the next `settle_downed`.
    downed: Vec<usize>,
}

impl<S, A> NodeRt<S, A>
where
    S: PolicySpec,
    S::Node: 'static,
    A: AggOp,
    A::Value: WireValue,
{
    pub(crate) fn new(
        seed: NodeSeed,
        ctx: &Ctx<'_, S, A>,
        plan: &FaultPlan,
        ready_tx: Sender<()>,
    ) -> NodeRt<S, A> {
        let NodeSeed {
            id,
            listener,
            backend,
        } = seed;
        let degree = ctx.tree.degree(id);
        let now = Instant::now();
        let links: Vec<EdgeLink> = ctx
            .tree
            .nbrs(id)
            .iter()
            .map(|&v| {
                let dialer = id.0 < v.0;
                EdgeLink {
                    peer: v,
                    conn: None,
                    pending_dial: None,
                    // Dialers attempt immediately at the first timer pass.
                    redial_at: dialer.then_some(now),
                    backoff_ms: RECONNECT_BASE_MS,
                    jitter_state: plan.jitter_seed(id, v),
                    tx_seq: 0,
                    acked: 0,
                    acked_at_tick: 0,
                    rtx: VecDeque::new(),
                    rx_seq: 0,
                    rx_acked: 0,
                    reack: false,
                    dup_drops: 0,
                    dialer,
                    ever_up: false,
                    faults: (!plan.is_empty()).then(|| plan.edge_stream(id, v)),
                }
            })
            .collect();
        let mech = MechNode::new(
            ctx.tree,
            id,
            ctx.op.clone(),
            ctx.spec.build(degree),
            ctx.ghost,
        );
        let ready_sent = degree == 0;
        if ready_sent {
            let _ = ready_tx.send(());
        }
        let durable = backend.active();
        let mut node = NodeRt {
            id,
            degree,
            listener,
            mech,
            links,
            pending: HashMap::new(),
            next_pending: 0,
            clients: HashMap::new(),
            next_client: 0,
            book: BatchBook::default(),
            waiters: Vec::new(),
            insts: HashMap::new(),
            tree_subs: HashMap::new(),
            stats: MsgStats::new(ctx.tree),
            completions: Vec::new(),
            delivered: 0,
            durable_val: ctx.op.identity(),
            backend,
            durable,
            epoch: 0,
            lease_bits: vec![0; degree],
            crash_at: plan.crash_after(id),
            kill9_at: plan.kill9_after(id),
            kill9_pending: false,
            counters: FaultCounters::default(),
            backpressure_stalls: 0,
            stalled: false,
            connected: 0,
            ready_sent,
            ready_tx,
            abandoned: 0,
            gauge: QueueGauge::default(),
            out: Vec::new(),
            downed: Vec::new(),
        };
        // Cold start: a durable backend with history means this node is
        // a new incarnation of a previous process — replay the WAL and
        // rejoin with watermarks, retransmit buffers, and value intact.
        if durable {
            if let Some(state) = node.backend.recover() {
                node.restore_from(state, ctx);
            }
        }
        node
    }

    pub(crate) fn id(&self) -> NodeId {
        self.id
    }

    /// True when an RTO tick could re-send something: an up edge holds
    /// unacknowledged frames.
    pub(crate) fn wants_rto_tick(&self) -> bool {
        self.links
            .iter()
            .any(|l| l.conn.is_some() && !l.rtx.is_empty())
    }

    /// Earliest pending redial timer, if any.
    pub(crate) fn next_redial(&self) -> Option<Instant> {
        self.links.iter().filter_map(|l| l.redial_at).min()
    }

    /// Appends this node's poll interest set: listener, pre-hello
    /// connections, edges (live + dialing), clients. A stalled node
    /// drops `POLLIN` interest on its clients only — the intake that
    /// creates new sequenced frames — never on edges.
    pub(crate) fn register(&self, idx: usize, fds: &mut Vec<PollFd>, toks: &mut Vec<Tok>) {
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        toks.push(Tok::Listener(idx));
        for (&pid, conn) in &self.pending {
            fds.push(PollFd::new(conn.stream.as_raw_fd(), POLLIN));
            toks.push(Tok::Pending(idx, pid));
        }
        // POLLOUT interest is transport-gated: ring doorbells are almost
        // always writable, so arming POLLOUT on them would busy-spin. A
        // blocked ring write recovers via the peer's space-freed nudge
        // (POLLIN) plus the unconditional flush pass each iteration.
        for (wi, link) in self.links.iter().enumerate() {
            if let Some(conn) = &link.conn {
                let mut ev = POLLIN;
                if !conn.out.is_empty() && conn.stream.wants_pollout() {
                    ev |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), ev));
                toks.push(Tok::Edge(idx, wi));
            }
            if let Some(conn) = &link.pending_dial {
                let mut ev = POLLIN;
                if !conn.out.is_empty() && conn.stream.wants_pollout() {
                    ev |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), ev));
                toks.push(Tok::Dial(idx, wi));
            }
        }
        for (&cid, conn) in &self.clients {
            let mut ev = if self.stalled { 0 } else { POLLIN };
            if !conn.out.is_empty() && conn.stream.wants_pollout() {
                ev |= POLLOUT;
            }
            if ev != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), ev));
                toks.push(Tok::Client(idx, cid));
            }
        }
    }

    /// Accepts everything the listener has ready; connections park in
    /// `pending` until their hello classifies them.
    pub(crate) fn on_accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        self.pending.insert(self.next_pending, conn);
                        self.next_pending += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// A pre-hello connection became readable: classify it by its first
    /// frame. Anything other than a well-formed hello is a stranger
    /// speaking the wrong protocol — dropped, never fatal.
    pub(crate) fn on_pending_ready(&mut self, pid: u64, ctx: &Ctx<'_, S, A>, scratch: &mut [u8]) {
        let Some(conn) = self.pending.get_mut(&pid) else {
            return;
        };
        let closed = conn.read_ready(scratch);
        match conn.dec.try_frame() {
            Ok(Some((TAG_HELLO_EDGE, payload))) => {
                let conn = self.pending.remove(&pid).expect("present above");
                let mut r = WireReader::new(&payload);
                let parsed = r.u32("hello node id").and_then(|id| {
                    Ok((
                        NodeId(id),
                        r.u64("hello rx watermark")?,
                        r.u64("hello ack watermark")?,
                    ))
                });
                if let Ok((peer, peer_rx, peer_acked)) = parsed {
                    if let Some(wi) = self.install_edge(peer, conn, peer_rx, peer_acked, true, ctx)
                    {
                        // The dialer may have pipelined nothing (it waits
                        // for our reply), but a *reconnecting* peer's
                        // replay can already sit behind the hello.
                        self.drain_edge(wi, ctx);
                    }
                }
            }
            Ok(Some((TAG_HELLO_CLIENT, _))) => {
                let conn = self.pending.remove(&pid).expect("present above");
                let cid = self.next_client;
                self.next_client += 1;
                self.clients.insert(cid, conn);
                // Clients may pipeline requests behind the hello in one
                // segment; serve whatever already decoded.
                self.on_client_ready(cid, ctx, &mut []);
            }
            Ok(Some(_)) | Err(_) => {
                self.pending.remove(&pid);
            }
            Ok(None) => {
                if closed {
                    self.pending.remove(&pid);
                }
            }
        }
    }

    /// A dial-in-progress connection became readable: expect the hello
    /// reply carrying the peer's receive watermark, then promote it to
    /// the live edge connection.
    pub(crate) fn on_dial_ready(&mut self, wi: usize, ctx: &Ctx<'_, S, A>, scratch: &mut [u8]) {
        let link = &mut self.links[wi];
        let Some(conn) = link.pending_dial.as_mut() else {
            return;
        };
        let closed = conn.read_ready(scratch);
        match conn.dec.try_frame() {
            Ok(Some((TAG_HELLO_EDGE, payload))) => {
                let peer = link.peer;
                let conn = link.pending_dial.take().expect("present above");
                let mut r = WireReader::new(&payload);
                let parsed = r
                    .u32("hello reply id")
                    .and_then(|id| Ok((id, r.u64("hello reply rx")?, r.u64("hello reply acked")?)));
                match parsed {
                    Ok((id, peer_rx, peer_acked)) if id == peer.0 => {
                        if let Some(wi) =
                            self.install_edge(peer, conn, peer_rx, peer_acked, false, ctx)
                        {
                            // The peer's replay may ride the same segment
                            // as its hello reply; deliver it now.
                            self.drain_edge(wi, ctx);
                        }
                    }
                    _ => self.schedule_redial(wi),
                }
            }
            Ok(Some(_)) | Err(_) => {
                self.links[wi].pending_dial = None;
                self.schedule_redial(wi);
            }
            Ok(None) => {
                if closed {
                    self.links[wi].pending_dial = None;
                    self.schedule_redial(wi);
                }
            }
        }
    }

    /// A live edge connection became readable.
    pub(crate) fn on_edge_ready(&mut self, wi: usize, ctx: &Ctx<'_, S, A>, scratch: &mut [u8]) {
        let Some(conn) = self.links[wi].conn.as_mut() else {
            return;
        };
        let closed = conn.read_ready(scratch);
        // Frames decoded before EOF/corruption are valid: drain first.
        let ok = self.drain_edge(wi, ctx);
        if closed || !ok {
            self.downed.push(wi);
            self.settle_downed();
        }
    }

    /// Decodes and dispatches everything buffered on edge `wi`'s live
    /// connection. Returns `false` when the stream is corrupt (bad
    /// frame length) and must be torn down.
    fn drain_edge(&mut self, wi: usize, ctx: &Ctx<'_, S, A>) -> bool {
        let mut work: Vec<Work<A::Value>> = Vec::new();
        let mut ok = true;
        let rx_before = self.links[wi].rx_seq;
        let acked_before = self.links[wi].acked;
        {
            let link = &mut self.links[wi];
            let Some(conn) = link.conn.as_mut() else {
                return true;
            };
            loop {
                match conn.dec.try_frame() {
                    Ok(None) => break,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                    Ok(Some((TAG_SEQ, payload))) => {
                        if payload.len() < 9 {
                            link.dup_drops += 1;
                            continue;
                        }
                        let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                        let inner = payload[8];
                        let body = &payload[9..];
                        if seq != link.rx_seq + 1 {
                            // A duplicate (below the window) or a future
                            // frame (something below it was lost — go-
                            // back-N re-delivers in order). Discard; the
                            // sender settles the logical frame's in-
                            // flight debt when it is acked, so copies
                            // are free.
                            link.dup_drops += 1;
                            if seq <= link.rx_seq {
                                // Already-delivered frames coming back
                                // mean the peer never saw our cumulative
                                // ack; repeat it even though rx_seq is
                                // not advancing.
                                link.reack = true;
                            }
                            continue;
                        }
                        link.rx_seq = seq;
                        oat_obs::trace_event!(
                            oat_obs::EventKind::FrameRx,
                            self.id.0,
                            link.peer.0,
                            (seq << 8) | u64::from(inner)
                        );
                        match inner {
                            INNER_NET => match Message::<A::Value>::decode_wire(body) {
                                Ok(msg) => {
                                    self.gauge.on_enqueue();
                                    work.push(Work::Net {
                                        from: link.peer,
                                        msg,
                                    });
                                }
                                Err(_) => {
                                    // Undecodable mechanism payload:
                                    // degrade, do not panic. The cumulative
                                    // ack below settles the sender's
                                    // account like any delivered frame.
                                    link.dup_drops += 1;
                                }
                            },
                            INNER_NET_T => {
                                // A forest-tree mechanism message: u32
                                // tree id, then the ordinary encoding.
                                if body.len() < 4 {
                                    link.dup_drops += 1;
                                    continue;
                                }
                                let tree =
                                    u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
                                match Message::<A::Value>::decode_wire(&body[4..]) {
                                    Ok(msg) if tree != 0 => {
                                        self.gauge.on_enqueue();
                                        work.push(Work::NetT {
                                            from: link.peer,
                                            tree,
                                            msg,
                                        });
                                    }
                                    Ok(msg) => {
                                        self.gauge.on_enqueue();
                                        work.push(Work::Net {
                                            from: link.peer,
                                            msg,
                                        });
                                    }
                                    Err(_) => {
                                        link.dup_drops += 1;
                                    }
                                }
                            }
                            INNER_RESET => {
                                self.gauge.on_enqueue();
                                work.push(Work::Reset { from: link.peer });
                            }
                            INNER_REVOKE => {
                                // An empty body is the legacy tree-0
                                // revoke; a 4-byte body names a forest
                                // tree.
                                if body.is_empty() {
                                    self.gauge.on_enqueue();
                                    work.push(Work::Revoke { from: link.peer });
                                } else if body.len() == 4 {
                                    let tree =
                                        u32::from_le_bytes(body.try_into().expect("4 bytes"));
                                    self.gauge.on_enqueue();
                                    work.push(Work::RevokeT {
                                        from: link.peer,
                                        tree,
                                    });
                                } else {
                                    link.dup_drops += 1;
                                }
                            }
                            _ => {
                                link.dup_drops += 1;
                            }
                        }
                    }
                    Ok(Some((TAG_ACK, payload))) => {
                        let mut r = WireReader::new(&payload);
                        if let Ok(upto) = r.u64("ack watermark") {
                            if upto > link.acked {
                                link.acked = upto;
                            }
                            // Each trimmed frame settles its in-flight
                            // debt — the one and only settle for an edge
                            // frame (trims are the only rtx removals).
                            let mut settled = 0;
                            while link.rtx.front().is_some_and(|(s, ..)| *s <= link.acked) {
                                link.rtx.pop_front();
                                settled += 1;
                            }
                            if settled > 0 {
                                ctx.in_flight.sub(settled);
                            }
                        } else {
                            link.dup_drops += 1;
                        }
                    }
                    // Unknown frame on an authenticated edge: count, skip.
                    Ok(Some(_)) => {
                        link.dup_drops += 1;
                    }
                }
            }
        }
        if self.durable {
            // One watermark record per drain, not per frame: the WAL
            // needs the high-water marks, not the arrival history. Rx is
            // logged before dispatch so the delivered frames' own log
            // records (sends they trigger) sort after their cause.
            let link = &self.links[wi];
            if link.rx_seq > rx_before {
                self.backend.log_rx(link.peer.0, link.rx_seq);
            }
            if link.acked > acked_before {
                self.backend.log_ack(link.peer.0, link.acked);
            }
        }
        for w in work {
            self.dispatch(w, ctx);
        }
        ok
    }

    /// A client connection became readable. Pass an empty scratch to
    /// serve only already-buffered frames (hello promotion path).
    pub(crate) fn on_client_ready(
        &mut self,
        cid: ClientId,
        ctx: &Ctx<'_, S, A>,
        scratch: &mut [u8],
    ) {
        let Some(conn) = self.clients.get_mut(&cid) else {
            return;
        };
        let closed = !scratch.is_empty() && conn.read_ready(scratch);
        let keep = self.drain_client(cid, ctx);
        if closed || !keep {
            // Reaching EOF after a full drain means every request was
            // served (per-connection bytes are FIFO); stream gathered
            // batch responses and flush queued frames best-effort, then
            // retire the connection.
            self.stream_batches();
            if let Some(mut conn) = self.clients.remove(&cid) {
                let _ = conn.flush();
            }
            self.book.purge(cid);
            self.purge_subs(cid);
        }
    }

    /// Drops every subscription held by a departed client. The per-tree
    /// refinement counter survives — a reconnecting subscriber resumes
    /// on a monotone seq.
    fn purge_subs(&mut self, cid: ClientId) {
        for ts in self.tree_subs.values_mut() {
            ts.subs.retain(|s| s.conn != cid);
        }
    }

    /// Emits every non-empty batch accumulator as a `TAG_RESP_BATCH`
    /// frame and retires accumulators whose roster is exhausted. Runs at
    /// each flush boundary, so members completed during this loop
    /// iteration leave now — one request batch streams out as several
    /// response frames whose items concatenate to the full roster.
    fn stream_batches(&mut self) {
        if self.book.accs.is_empty() {
            return;
        }
        let clients = &mut self.clients;
        self.book.accs.retain(|&(cid, _), acc| {
            if !acc.items.is_empty() {
                let frame = encode_batch(&acc.items);
                acc.items.clear();
                if let Some(c) = clients.get_mut(&cid) {
                    c.out.frame(TAG_RESP_BATCH, &frame);
                }
            }
            acc.remaining > 0
        });
    }

    /// Decodes and dispatches everything buffered on client `cid`.
    /// Returns `false` on a protocol violation (drop the connection —
    /// clients are untrusted; requests already decoded still complete).
    fn drain_client(&mut self, cid: ClientId, ctx: &Ctx<'_, S, A>) -> bool {
        let mut work: Vec<Work<A::Value>> = Vec::new();
        let mut keep = true;
        {
            let Some(conn) = self.clients.get_mut(&cid) else {
                return false;
            };
            loop {
                match conn.dec.try_frame() {
                    Ok(None) => break,
                    Err(_) => {
                        keep = false;
                        break;
                    }
                    Ok(Some((TAG_REQ_COMBINE, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let Ok(req_id) = r.u64("combine req id") else {
                            keep = false;
                            break;
                        };
                        ctx.in_flight.add(1);
                        self.gauge.on_enqueue();
                        oat_obs::trace_event!(
                            oat_obs::EventKind::ReqRecv,
                            self.id.0,
                            cid as u32,
                            req_id
                        );
                        work.push(Work::Client {
                            conn: cid,
                            req_id,
                            op: ReqOp::Combine,
                        });
                    }
                    Ok(Some((TAG_REQ_WRITE, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let parsed = r.u64("write req id").and_then(|id| {
                            let arg = A::Value::decode(&mut r)?;
                            r.finish("write request trailing bytes")?;
                            Ok((id, arg))
                        });
                        let Ok((req_id, arg)) = parsed else {
                            keep = false;
                            break;
                        };
                        ctx.in_flight.add(1);
                        self.gauge.on_enqueue();
                        oat_obs::trace_event!(
                            oat_obs::EventKind::ReqRecv,
                            self.id.0,
                            cid as u32,
                            req_id
                        );
                        work.push(Work::Client {
                            conn: cid,
                            req_id,
                            op: ReqOp::Write(arg),
                        });
                    }
                    Ok(Some((TAG_REQ_COMBINE_T, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let parsed = r.u64("tree combine req id").and_then(|id| {
                            let tree = r.u32("tree combine tree id")?;
                            r.finish("tree combine trailing bytes")?;
                            Ok((id, tree))
                        });
                        let Ok((req_id, tree)) = parsed else {
                            keep = false;
                            break;
                        };
                        ctx.in_flight.add(1);
                        self.gauge.on_enqueue();
                        oat_obs::trace_event!(
                            oat_obs::EventKind::ReqRecv,
                            self.id.0,
                            cid as u32,
                            req_id
                        );
                        // Tree 0 is the built-in instance: route through
                        // the legacy work item so its combines stay on
                        // the sim-parity path.
                        work.push(if tree == 0 {
                            Work::Client {
                                conn: cid,
                                req_id,
                                op: ReqOp::Combine,
                            }
                        } else {
                            Work::ClientT {
                                conn: cid,
                                req_id,
                                tree,
                                op: ReqOp::Combine,
                            }
                        });
                    }
                    Ok(Some((TAG_REQ_WRITE_T, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let parsed = r.u64("tree write req id").and_then(|id| {
                            let tree = r.u32("tree write tree id")?;
                            let arg = A::Value::decode(&mut r)?;
                            r.finish("tree write trailing bytes")?;
                            Ok((id, tree, arg))
                        });
                        let Ok((req_id, tree, arg)) = parsed else {
                            keep = false;
                            break;
                        };
                        ctx.in_flight.add(1);
                        self.gauge.on_enqueue();
                        oat_obs::trace_event!(
                            oat_obs::EventKind::ReqRecv,
                            self.id.0,
                            cid as u32,
                            req_id
                        );
                        work.push(if tree == 0 {
                            Work::Client {
                                conn: cid,
                                req_id,
                                op: ReqOp::Write(arg),
                            }
                        } else {
                            Work::ClientT {
                                conn: cid,
                                req_id,
                                tree,
                                op: ReqOp::Write(arg),
                            }
                        });
                    }
                    Ok(Some((TAG_SUB, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let parsed = r.u64("sub id").and_then(|id| {
                            let tree = r.u32("sub tree id")?;
                            r.finish("sub trailing bytes")?;
                            Ok((id, tree))
                        });
                        let Ok((sub_id, tree)) = parsed else {
                            keep = false;
                            break;
                        };
                        // Counted like a client request: registering
                        // triggers a refresh combine whose messages must
                        // be charged before this item settles.
                        ctx.in_flight.add(1);
                        self.gauge.on_enqueue();
                        work.push(Work::Sub {
                            conn: cid,
                            sub_id,
                            tree,
                        });
                    }
                    Ok(Some((TAG_REQ_METRICS, payload))) => {
                        let mut r = WireReader::new(&payload);
                        let Ok(req_id) = r.u64("metrics req id") else {
                            keep = false;
                            break;
                        };
                        self.gauge.on_enqueue();
                        work.push(Work::Metrics { conn: cid, req_id });
                    }
                    Ok(Some((TAG_REQ_BATCH, payload))) => {
                        // All-or-nothing: every item must parse as a
                        // combine or write with a unique req id before
                        // anything is admitted, so a malformed batch
                        // can't half-execute.
                        let Ok(items) = decode_batch(&payload) else {
                            keep = false;
                            break;
                        };
                        let mut parsed: Vec<(u64, u32, ReqOp<A::Value>)> =
                            Vec::with_capacity(items.len());
                        let mut bad = items.is_empty();
                        for (tag, p) in &items {
                            let mut r = WireReader::new(p);
                            let item = match *tag {
                                TAG_REQ_COMBINE => r
                                    .u64("batched combine req id")
                                    .map(|id| (id, 0, ReqOp::Combine)),
                                TAG_REQ_WRITE => r.u64("batched write req id").and_then(|id| {
                                    let arg = A::Value::decode(&mut r)?;
                                    r.finish("batched write trailing bytes")?;
                                    Ok((id, 0, ReqOp::Write(arg)))
                                }),
                                TAG_REQ_COMBINE_T => {
                                    r.u64("batched tree combine req id").and_then(|id| {
                                        let tree = r.u32("batched tree combine tree id")?;
                                        r.finish("batched tree combine trailing bytes")?;
                                        Ok((id, tree, ReqOp::Combine))
                                    })
                                }
                                TAG_REQ_WRITE_T => {
                                    r.u64("batched tree write req id").and_then(|id| {
                                        let tree = r.u32("batched tree write tree id")?;
                                        let arg = A::Value::decode(&mut r)?;
                                        r.finish("batched tree write trailing bytes")?;
                                        Ok((id, tree, ReqOp::Write(arg)))
                                    })
                                }
                                _ => {
                                    bad = true;
                                    break;
                                }
                            };
                            match item {
                                Ok(it) => parsed.push(it),
                                Err(_) => {
                                    bad = true;
                                    break;
                                }
                            }
                        }
                        if !bad {
                            let mut ids: Vec<u64> = parsed.iter().map(|(id, ..)| *id).collect();
                            ids.sort_unstable();
                            ids.dedup();
                            bad = ids.len() != parsed.len();
                        }
                        if bad {
                            keep = false;
                            break;
                        }
                        let key = self.book.next_key;
                        self.book.next_key += 1;
                        self.book.accs.insert(
                            (cid, key),
                            BatchAcc {
                                remaining: parsed.len(),
                                items: Vec::with_capacity(parsed.len()),
                            },
                        );
                        for (req_id, tree, op) in parsed {
                            self.book.member.insert((cid, req_id), key);
                            ctx.in_flight.add(1);
                            self.gauge.on_enqueue();
                            oat_obs::trace_event!(
                                oat_obs::EventKind::ReqRecv,
                                self.id.0,
                                cid as u32,
                                req_id
                            );
                            work.push(if tree == 0 {
                                Work::Client {
                                    conn: cid,
                                    req_id,
                                    op,
                                }
                            } else {
                                Work::ClientT {
                                    conn: cid,
                                    req_id,
                                    tree,
                                    op,
                                }
                            });
                        }
                    }
                    Ok(Some(_)) => {
                        keep = false;
                        break;
                    }
                }
            }
        }
        for w in work {
            self.dispatch(w, ctx);
        }
        keep
    }

    /// Runs one work item through the automaton. Handler panics are
    /// caught and converted into a crash-restart; the in-flight debt
    /// settles either way.
    fn dispatch(&mut self, work: Work<A::Value>, ctx: &Ctx<'_, S, A>) {
        self.gauge.on_dequeue();
        match work {
            Work::Net { from, msg } => {
                self.delivered += 1;
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let completed = self.mech.handle_message(from, msg, &mut self.out);
                    self.send_outbox(ctx);
                    if let Some(v) = completed {
                        self.answer_waiters(v);
                    }
                }));
                if run.is_err() {
                    self.crash_restart(ctx);
                } else if self.crash_at == Some(self.delivered) {
                    // Injected crash, at a clean point: the message is
                    // fully processed and accounted. Fires once.
                    self.crash_at = None;
                    ctx.ledger.crashes.fetch_add(1, Ordering::Relaxed);
                    self.crash_restart(ctx);
                } else if self.kill9_at == Some(self.delivered) {
                    // Injected process kill. Unlike a crash this cannot
                    // run inline — it demolishes the very state the
                    // enclosing drain loop is iterating — so it is
                    // flagged and the reactor performs the teardown
                    // between dispatch passes.
                    self.kill9_at = None;
                    self.kill9_pending = true;
                }
            }
            Work::NetT { from, tree, msg } => {
                self.delivered += 1;
                let mut inst = self.take_inst(tree, ctx);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let completed = inst.mech.handle_message(from, msg, &mut self.out);
                    self.send_outbox_t(tree, ctx);
                    completed
                }));
                match run {
                    Ok(completed) => {
                        if let Some(v) = &completed {
                            self.answer_tree_waiters(&mut inst, v);
                        }
                        self.insts.insert(tree, inst);
                        match completed {
                            Some(v) => self.push_partial(tree, &v),
                            // Propagated updates/invalidates refresh any
                            // subscribers served at this node.
                            None => self.refresh_tree(tree, ctx),
                        }
                    }
                    Err(_) => self.crash_restart(ctx),
                }
                // Forest traffic advances the same injected-fault
                // schedules as tree 0: triggers count delivered
                // messages, whatever tree carried them.
                if self.crash_at == Some(self.delivered) {
                    self.crash_at = None;
                    ctx.ledger.crashes.fetch_add(1, Ordering::Relaxed);
                    self.crash_restart(ctx);
                } else if self.kill9_at == Some(self.delivered) {
                    self.kill9_at = None;
                    self.kill9_pending = true;
                }
            }
            Work::Reset { from } => {
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // The peer's automaton restarted: run the mechanism's
                    // peer-reset transition (re-probes land in the outbox)
                    // and start the revoke cascade toward unsound grants.
                    let revokes = self.mech.handle_peer_reset(from, &mut self.out);
                    self.send_outbox(ctx);
                    for t in revokes {
                        let wi = self.mech.nbr_index(t);
                        if send_seq(
                            self.id,
                            &mut self.links[wi],
                            &mut *self.backend,
                            INNER_REVOKE,
                            &[],
                            ctx,
                        ) {
                            self.downed.push(wi);
                        }
                    }
                }));
                if run.is_err() {
                    self.crash_restart(ctx);
                } else {
                    // The peer's whole automaton restarted, which took
                    // every forest instance it hosted with it: run the
                    // peer-reset transition on each of ours and cascade
                    // per-tree revokes the same way.
                    self.forest_peer_reset(from, ctx);
                }
            }
            Work::Revoke { from } => {
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let next_hops = self.mech.handle_revoke(from, &mut self.out);
                    self.send_outbox(ctx);
                    for t in next_hops {
                        let wi = self.mech.nbr_index(t);
                        if send_seq(
                            self.id,
                            &mut self.links[wi],
                            &mut *self.backend,
                            INNER_REVOKE,
                            &[],
                            ctx,
                        ) {
                            self.downed.push(wi);
                        }
                    }
                }));
                if run.is_err() {
                    self.crash_restart(ctx);
                }
            }
            Work::RevokeT { from, tree } => {
                // A revoke for a tree this node never instantiated has
                // nothing to tear down (and must not instantiate one).
                if self.insts.contains_key(&tree) {
                    let mut inst = self.take_inst(tree, ctx);
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let next_hops = inst.mech.handle_revoke(from, &mut self.out);
                        self.send_outbox_t(tree, ctx);
                        next_hops
                    }));
                    match run {
                        Ok(next_hops) => {
                            self.insts.insert(tree, inst);
                            for t in next_hops {
                                self.send_revoke_t(tree, t, ctx);
                            }
                            self.refresh_tree(tree, ctx);
                        }
                        Err(_) => self.crash_restart(ctx),
                    }
                }
            }
            Work::Client { conn, req_id, op } => {
                let _done = InFlightGuard(ctx.in_flight);
                let t0 = oat_obs::now_ns();
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                    ReqOp::Write(arg) => {
                        if self.durable {
                            // Logged (and fsynced — Write records force
                            // a sync) before the ack below can flush:
                            // an acknowledged write survives any kill.
                            let mut bytes = Vec::with_capacity(16);
                            arg.encode(&mut bytes);
                            self.backend.log_write(&bytes);
                        }
                        self.durable_val = arg.clone();
                        self.mech.handle_write(arg, &mut self.out);
                        self.send_outbox(ctx);
                        let mut payload = Vec::with_capacity(8);
                        put_u64(&mut payload, req_id);
                        respond(
                            &mut self.clients,
                            &mut self.book,
                            conn,
                            TAG_RESP_WRITE,
                            &payload,
                        );
                        oat_obs::trace_event!(
                            oat_obs::EventKind::RespTx,
                            self.id.0,
                            conn as u32,
                            req_id
                        );
                    }
                    ReqOp::Combine => {
                        let outcome = self.mech.handle_combine(&mut self.out);
                        self.send_outbox(ctx);
                        match outcome {
                            CombineOutcome::Done(v) => {
                                let mut payload = Vec::with_capacity(16);
                                put_u64(&mut payload, req_id);
                                v.encode(&mut payload);
                                respond(
                                    &mut self.clients,
                                    &mut self.book,
                                    conn,
                                    TAG_RESP_COMBINE,
                                    &payload,
                                );
                                oat_obs::trace_event!(
                                    oat_obs::EventKind::RespTx,
                                    self.id.0,
                                    conn as u32,
                                    req_id
                                );
                                self.completions.push((self.id, v));
                            }
                            CombineOutcome::Pending | CombineOutcome::Coalesced => {
                                // A retried request must not park a second
                                // waiter (one response per (conn, req-id)).
                                if !self.waiters.contains(&(conn, req_id)) {
                                    self.waiters.push((conn, req_id));
                                }
                            }
                        }
                    }
                }));
                oat_obs::trace_span!(
                    oat_obs::EventKind::ReqServe,
                    t0,
                    self.id.0,
                    conn as u32,
                    req_id
                );
                if run.is_err() {
                    self.crash_restart(ctx);
                }
            }
            Work::ClientT {
                conn,
                req_id,
                tree,
                op,
            } => {
                let _done = InFlightGuard(ctx.in_flight);
                let t0 = oat_obs::now_ns();
                let mut inst = self.take_inst(tree, ctx);
                // Forest writes are *volatile* (not WAL-logged): the
                // query engine owns healing them after a kill9, so the
                // durable-value hook is deliberately absent here.
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                    ReqOp::Write(arg) => {
                        inst.mech.handle_write(arg, &mut self.out);
                        self.send_outbox_t(tree, ctx);
                        let mut payload = Vec::with_capacity(8);
                        put_u64(&mut payload, req_id);
                        respond(
                            &mut self.clients,
                            &mut self.book,
                            conn,
                            TAG_RESP_WRITE,
                            &payload,
                        );
                        oat_obs::trace_event!(
                            oat_obs::EventKind::RespTx,
                            self.id.0,
                            conn as u32,
                            req_id
                        );
                        None
                    }
                    ReqOp::Combine => {
                        let outcome = inst.mech.handle_combine(&mut self.out);
                        self.send_outbox_t(tree, ctx);
                        match outcome {
                            CombineOutcome::Done(v) => {
                                let mut payload = Vec::with_capacity(16);
                                put_u64(&mut payload, req_id);
                                v.encode(&mut payload);
                                respond(
                                    &mut self.clients,
                                    &mut self.book,
                                    conn,
                                    TAG_RESP_COMBINE,
                                    &payload,
                                );
                                oat_obs::trace_event!(
                                    oat_obs::EventKind::RespTx,
                                    self.id.0,
                                    conn as u32,
                                    req_id
                                );
                                Some(v)
                            }
                            CombineOutcome::Pending | CombineOutcome::Coalesced => {
                                if !inst.waiters.contains(&(conn, req_id)) {
                                    inst.waiters.push((conn, req_id));
                                }
                                None
                            }
                        }
                    }
                }));
                oat_obs::trace_span!(
                    oat_obs::EventKind::ReqServe,
                    t0,
                    self.id.0,
                    conn as u32,
                    req_id
                );
                match run {
                    Ok(done) => {
                        self.insts.insert(tree, inst);
                        match done {
                            Some(v) => self.push_partial(tree, &v),
                            // A write (or a parked combine) may have
                            // changed what subscribers here should see.
                            None => self.refresh_tree(tree, ctx),
                        }
                    }
                    Err(_) => self.crash_restart(ctx),
                }
            }
            Work::Sub { conn, sub_id, tree } => {
                let _done = InFlightGuard(ctx.in_flight);
                let subs = self.tree_subs.entry(tree).or_default();
                // Idempotent per (conn, sub id): a retried subscribe
                // must not register twice.
                if !subs.subs.iter().any(|s| s.conn == conn && s.id == sub_id) {
                    subs.subs.push(Sub {
                        conn,
                        id: sub_id,
                        primed: false,
                    });
                }
                oat_obs::trace_event!(oat_obs::EventKind::SubStart, self.id.0, conn as u32, sub_id);
                // Prime the subscriber with the current value right away
                // rather than waiting for the next write to touch the
                // tree.
                self.refresh_tree(tree, ctx);
            }
            Work::Metrics { conn, req_id } => {
                let metrics = self.snapshot_metrics(ctx);
                let mut payload = Vec::with_capacity(64);
                put_u64(&mut payload, req_id);
                metrics.encode(&mut payload);
                respond(
                    &mut self.clients,
                    &mut self.book,
                    conn,
                    TAG_RESP_METRICS,
                    &payload,
                );
            }
        }
        self.settle_downed();
        if self.durable {
            self.sync_leases();
        }
    }

    /// Logs every lease transition since the last call as a diff against
    /// the cached bits. Called after each dispatch when durable.
    fn sync_leases(&mut self) {
        for vi in 0..self.degree {
            let bits = (u8::from(self.mech.granted(vi)) << 1) | u8::from(self.mech.taken(vi));
            if bits != self.lease_bits[vi] {
                self.lease_bits[vi] = bits;
                self.backend.log_lease(self.links[vi].peer.0, bits);
            }
        }
    }

    /// Buffers everything in the mechanism outbox onto the sequenced
    /// links, recording stats and in-flight accounting per frame.
    fn send_outbox(&mut self, ctx: &Ctx<'_, S, A>) {
        let mut payload = Vec::with_capacity(32);
        let out = std::mem::take(&mut self.out);
        for (to, msg) in out {
            self.stats
                .record(ctx.tree.dir_edge_index(self.id, to), msg.kind());
            // Relaxed is sufficient: every read that must observe
            // `total_sent` happens after `quiesce()` saw `in_flight == 0`,
            // and the SeqCst decrement concluding each handler is
            // sequenced after this increment in the same thread.
            ctx.total_sent.fetch_add(1, Ordering::Relaxed);
            payload.clear();
            msg.encode_wire(&mut payload);
            let wi = self.mech.nbr_index(to);
            if send_seq(
                self.id,
                &mut self.links[wi],
                &mut *self.backend,
                INNER_NET,
                &payload,
                ctx,
            ) {
                self.downed.push(wi);
            }
        }
    }

    /// Answers every parked combine waiter with the completed value.
    fn answer_waiters(&mut self, v: A::Value) {
        for (conn, req_id) in std::mem::take(&mut self.waiters) {
            let mut payload = Vec::with_capacity(16);
            put_u64(&mut payload, req_id);
            v.encode(&mut payload);
            respond(
                &mut self.clients,
                &mut self.book,
                conn,
                TAG_RESP_COMBINE,
                &payload,
            );
            oat_obs::trace_event!(oat_obs::EventKind::RespTx, self.id.0, conn as u32, req_id);
            self.completions.push((self.id, v.clone()));
        }
    }

    /// Takes the forest instance for `tree` out of the map — creating it
    /// lazily at the current incarnation epoch — so a handler can run
    /// against it while the rest of the node stays borrowable. The
    /// caller reinserts it on success; on a panic it is dropped and the
    /// node-level crash-restart clears the whole forest.
    fn take_inst(&mut self, tree: u32, ctx: &Ctx<'_, S, A>) -> Inst<S::Node, A> {
        self.insts.remove(&tree).unwrap_or_else(|| {
            let mut mech = MechNode::new(
                ctx.tree,
                self.id,
                ctx.op.clone(),
                ctx.spec.build(self.degree),
                false,
            );
            mech.set_epoch(self.epoch);
            Inst {
                mech,
                waiters: Vec::new(),
            }
        })
    }

    /// Drains the mechanism outbox for a forest tree: like
    /// [`NodeRt::send_outbox`] but frames ride `INNER_NET_T` with the
    /// tree id prefixed. Completions are *not* recorded — the completion
    /// log is a tree-0 sim-parity artifact.
    fn send_outbox_t(&mut self, tree: u32, ctx: &Ctx<'_, S, A>) {
        let mut payload = Vec::with_capacity(36);
        let out = std::mem::take(&mut self.out);
        for (to, msg) in out {
            self.stats
                .record(ctx.tree.dir_edge_index(self.id, to), msg.kind());
            ctx.total_sent.fetch_add(1, Ordering::Relaxed);
            payload.clear();
            put_u32(&mut payload, tree);
            msg.encode_wire(&mut payload);
            // Every forest tree shares the base tree's topology, so the
            // built-in instance's neighbour table routes for all of them.
            let wi = self.mech.nbr_index(to);
            if send_seq(
                self.id,
                &mut self.links[wi],
                &mut *self.backend,
                INNER_NET_T,
                &payload,
                ctx,
            ) {
                self.downed.push(wi);
            }
        }
    }

    /// Queues a per-tree revoke (4-byte tree-id body) toward `to`.
    fn send_revoke_t(&mut self, tree: u32, to: NodeId, ctx: &Ctx<'_, S, A>) {
        let mut body = Vec::with_capacity(4);
        put_u32(&mut body, tree);
        let wi = self.mech.nbr_index(to);
        if send_seq(
            self.id,
            &mut self.links[wi],
            &mut *self.backend,
            INNER_REVOKE,
            &body,
            ctx,
        ) {
            self.downed.push(wi);
        }
    }

    /// Answers every waiter parked on a forest instance.
    fn answer_tree_waiters(&mut self, inst: &mut Inst<S::Node, A>, v: &A::Value) {
        for (conn, req_id) in std::mem::take(&mut inst.waiters) {
            let mut payload = Vec::with_capacity(16);
            put_u64(&mut payload, req_id);
            v.encode(&mut payload);
            respond(
                &mut self.clients,
                &mut self.book,
                conn,
                TAG_RESP_COMBINE,
                &payload,
            );
            oat_obs::trace_event!(oat_obs::EventKind::RespTx, self.id.0, conn as u32, req_id);
        }
    }

    /// Pushes a `TAG_PARTIAL` refinement to every subscriber of `tree`.
    /// A value equal to the last push is not a refinement — it goes only
    /// to subscribers that were never primed, under the unchanged seq.
    fn push_partial(&mut self, tree: u32, v: &A::Value) {
        let Some(ts) = self.tree_subs.get_mut(&tree) else {
            return;
        };
        if ts.subs.is_empty() {
            return;
        }
        let changed = ts.last_push.as_ref() != Some(v);
        if changed {
            ts.push_seq += 1;
            ts.last_push = Some(v.clone());
        }
        for s in &mut ts.subs {
            if !changed && s.primed {
                continue;
            }
            s.primed = true;
            let mut p = Vec::with_capacity(28);
            put_u64(&mut p, s.id);
            put_u32(&mut p, tree);
            put_u64(&mut p, ts.push_seq);
            v.encode(&mut p);
            if let Some(c) = self.clients.get_mut(&s.conn) {
                c.out.frame(TAG_PARTIAL, &p);
            }
            oat_obs::trace_event!(
                oat_obs::EventKind::PartialTx,
                self.id.0,
                s.conn as u32,
                ts.push_seq
            );
        }
    }

    /// Re-runs the combine for a subscribed tree and pushes the result
    /// as a partial. Called whenever work touched `tree` at a node that
    /// holds subscriptions: a `Done` pushes immediately; a `Pending`
    /// probe's completion pushes from the `NetT` path when it lands.
    /// No-op on trees without subscribers, so non-serving nodes never
    /// issue extra combines.
    fn refresh_tree(&mut self, tree: u32, ctx: &Ctx<'_, S, A>) {
        if self
            .tree_subs
            .get(&tree)
            .is_none_or(|ts| ts.subs.is_empty())
        {
            return;
        }
        let mut inst = self.take_inst(tree, ctx);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let outcome = inst.mech.handle_combine(&mut self.out);
            self.send_outbox_t(tree, ctx);
            outcome
        }));
        match run {
            Ok(outcome) => {
                self.insts.insert(tree, inst);
                if let CombineOutcome::Done(v) = outcome {
                    self.push_partial(tree, &v);
                }
            }
            Err(_) => self.crash_restart(ctx),
        }
    }

    /// Runs the peer-reset transition on every forest instance after a
    /// neighbour's automaton restart, cascading per-tree revokes.
    fn forest_peer_reset(&mut self, from: NodeId, ctx: &Ctx<'_, S, A>) {
        let trees: Vec<u32> = self.insts.keys().copied().collect();
        for tree in trees {
            let mut inst = self.take_inst(tree, ctx);
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let revokes = inst.mech.handle_peer_reset(from, &mut self.out);
                self.send_outbox_t(tree, ctx);
                revokes
            }));
            match run {
                Ok(revokes) => {
                    self.insts.insert(tree, inst);
                    for t in revokes {
                        self.send_revoke_t(tree, t, ctx);
                    }
                    self.refresh_tree(tree, ctx);
                }
                Err(_) => {
                    self.crash_restart(ctx);
                    break;
                }
            }
        }
    }

    /// Destroys and rebuilds the automaton after a crash (injected or
    /// panicked). The transport and the durable value survive; waiters
    /// are dropped (clients recover via timeout + retry), and the fresh
    /// automaton's first act is a sequenced `RESET` on every edge — down
    /// edges queue it in the retransmit buffer, so the peer learns of
    /// the restart in FIFO position even across a connection failure.
    fn crash_restart(&mut self, ctx: &Ctx<'_, S, A>) {
        oat_obs::trace_event!(oat_obs::EventKind::Crash, self.id.0, 0, 0);
        self.counters.restarts += 1;
        self.waiters.clear();
        // The crash takes the whole forest with it (forest instances are
        // volatile). Subscriptions are transport state and survive, but
        // fresh instances may regress below the last pushed value, so
        // subscribers are re-primed at the next refresh; the refinement
        // seq itself stays monotone across the restart.
        self.abandoned += self
            .insts
            .values()
            .map(|i| i.waiters.len() as u64)
            .sum::<u64>();
        self.insts.clear();
        for ts in self.tree_subs.values_mut() {
            ts.last_push = None;
            for s in &mut ts.subs {
                s.primed = false;
            }
        }
        self.out.clear();
        self.mech = MechNode::new(
            ctx.tree,
            self.id,
            ctx.op.clone(),
            ctx.spec.build(self.degree),
            ctx.ghost,
        );
        // The replacement automaton's incarnation number lets it discard
        // responses addressed to the incarnation that just died (see the
        // epoch guard in `MechNode::handle_message`).
        self.epoch += 1;
        self.mech.set_epoch(self.epoch);
        if self.durable {
            self.backend.log_epoch(self.epoch);
        }
        oat_obs::trace_event!(oat_obs::EventKind::Restart, self.id.0, 0, self.epoch);
        // Restore the durable value. The fresh node holds no grants, so
        // this emits nothing.
        let mut sink = Vec::new();
        self.mech.handle_write(self.durable_val.clone(), &mut sink);
        debug_assert!(sink.is_empty());
        for wi in 0..self.links.len() {
            if send_seq(
                self.id,
                &mut self.links[wi],
                &mut *self.backend,
                INNER_RESET,
                &[],
                ctx,
            ) {
                self.downed.push(wi);
            }
        }
        self.settle_downed();
        if self.durable {
            self.sync_leases();
        }
    }

    /// Whether a kill9 fired during the last dispatch pass; consumes the
    /// flag. The reactor calls [`NodeRt::kill9_restart`] when true.
    pub(crate) fn take_kill9(&mut self) -> bool {
        std::mem::take(&mut self.kill9_pending)
    }

    /// Process-grade kill + recovery: demolish everything a SIGKILL
    /// would take — links, retransmit buffers, client connections, the
    /// automaton, the in-memory value — then rebuild the node from its
    /// durability backend as a cold-starting incarnation. The listener
    /// survives (the "new process" inherits the node's address) as do
    /// the pure observability accumulators (stats, counters, completion
    /// log), which belong to the harness, not the process.
    pub(crate) fn kill9_restart(&mut self, ctx: &Ctx<'_, S, A>) {
        oat_obs::trace_event!(oat_obs::EventKind::Crash, self.id.0, 1, 0);
        ctx.ledger.kill9s.fetch_add(1, Ordering::Relaxed);
        self.counters.restarts += 1;
        self.counters.kill9s += 1;
        // Sever every connection the dead process held.
        for (_, conn) in self.pending.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for (_, conn) in self.clients.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.book = BatchBook::default();
        self.abandoned += self.waiters.len() as u64;
        self.waiters.clear();
        // A process kill severs every client socket, and subscriptions
        // die with their connections — subscribers re-subscribe on
        // reconnect. The forest itself is volatile and vanishes.
        self.abandoned += self
            .insts
            .values()
            .map(|i| i.waiters.len() as u64)
            .sum::<u64>();
        self.insts.clear();
        self.tree_subs.clear();
        self.out.clear();
        self.downed.clear();
        self.stalled = false;
        // Forgive the dead incarnation's buffered frames: outstanding
        // edge debt equals Σ rtx lengths, so this is exact. Recovery
        // below re-charges whatever the WAL preserved.
        let mut forgiven = 0;
        for link in &mut self.links {
            if let Some(conn) = link.conn.take() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            if let Some(conn) = link.pending_dial.take() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            forgiven += link.rtx.len() as i64;
            link.rtx.clear();
            link.tx_seq = 0;
            link.acked = 0;
            link.acked_at_tick = 0;
            link.rx_seq = 0;
            link.rx_acked = 0;
            link.reack = false;
            link.redial_at = None;
        }
        if forgiven > 0 {
            ctx.in_flight.sub(forgiven);
        }
        self.connected = 0;
        self.durable_val = ctx.op.identity();
        self.lease_bits.iter_mut().for_each(|b| *b = 0);
        // Rebuild from the log, exactly like a cold start...
        let state = self.backend.recover().unwrap_or_default();
        self.restore_from(state, ctx);
        // ...and start redialing immediately on edges we own.
        let now = Instant::now();
        for link in &mut self.links {
            if link.dialer {
                link.backoff_ms = RECONNECT_BASE_MS;
                link.redial_at = Some(now);
            }
        }
    }

    /// Rebuilds the automaton + transport state from recovered durable
    /// state: the cold-start path, shared by spawn-over-existing-WAL and
    /// [`NodeRt::kill9_restart`]. Expects link sequence state to be at
    /// its zero value on entry.
    fn restore_from(&mut self, state: WalState, ctx: &Ctx<'_, S, A>) {
        // Restore the durable value (identity when nothing was written).
        if let Some(bytes) = &state.val {
            let mut r = WireReader::new(bytes);
            if let Ok(v) = A::Value::decode(&mut r) {
                self.durable_val = v;
            }
        }
        // Restore per-edge sequence state and re-charge the recovered
        // retransmit buffers into the in-flight gauge.
        let now = Instant::now();
        let mut recharged = 0;
        for ls in &state.links {
            let Some(wi) = self.links.iter().position(|l| l.peer.0 == ls.peer) else {
                continue;
            };
            let link = &mut self.links[wi];
            link.tx_seq = ls.tx_seq;
            link.acked = ls.acked;
            link.acked_at_tick = ls.acked;
            link.rx_seq = ls.rx_seq;
            link.rx_acked = ls.rx_seq;
            link.rtx = ls
                .rtx
                .iter()
                .map(|(seq, inner, body)| (*seq, *inner, body.clone(), now))
                .collect();
            recharged += link.rtx.len() as i64;
            self.lease_bits[wi] = ls.lease;
        }
        if recharged > 0 {
            ctx.in_flight.add(recharged);
        }
        // A fresh automaton at a strictly newer epoch than any the dead
        // incarnation could have used, persisted before anything else so
        // the *next* incarnation moves past it even on a torn tail.
        self.mech = MechNode::new(
            ctx.tree,
            self.id,
            ctx.op.clone(),
            ctx.spec.build(self.degree),
            ctx.ghost,
        );
        self.epoch = self.epoch.max(state.epoch) + 1;
        self.backend.log_epoch(self.epoch);
        self.mech.set_epoch(self.epoch);
        oat_obs::trace_event!(oat_obs::EventKind::Restart, self.id.0, 1, self.epoch);
        let mut sink = Vec::new();
        self.mech.handle_write(self.durable_val.clone(), &mut sink);
        debug_assert!(sink.is_empty());
        // Announce the new incarnation in FIFO position on every edge.
        for wi in 0..self.links.len() {
            if send_seq(
                self.id,
                &mut self.links[wi],
                &mut *self.backend,
                INNER_RESET,
                &[],
                ctx,
            ) {
                self.downed.push(wi);
            }
        }
        self.settle_downed();
        // The fresh mechanism holds no leases; log the zeroing of any
        // recovered lease bits so the WAL tracks the truth.
        self.sync_leases();
    }

    /// Marks every queued-down edge as down exactly once and arms the
    /// redial timer when this endpoint owns the edge's dialing.
    fn settle_downed(&mut self) {
        while let Some(wi) = self.downed.pop() {
            let link = &mut self.links[wi];
            let Some(conn) = link.conn.take() else {
                continue;
            };
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.connected -= 1;
            if link.dialer && link.pending_dial.is_none() {
                link.backoff_ms = RECONNECT_BASE_MS;
                link.redial_at = Some(Instant::now());
            }
        }
    }

    /// Fires due redial timers: a blocking `connect` to a pre-bound
    /// loopback listener completes (or fails) immediately, then the
    /// hello waits for its reply under poll like any other read.
    pub(crate) fn run_dial_timers(&mut self, ctx: &Ctx<'_, S, A>, now: Instant) {
        for wi in 0..self.links.len() {
            let link = &mut self.links[wi];
            if link.conn.is_some() || link.pending_dial.is_some() {
                link.redial_at = None;
                continue;
            }
            match link.redial_at {
                Some(at) if at <= now => {
                    link.redial_at = None;
                    self.try_dial(wi, ctx);
                }
                _ => {}
            }
        }
    }

    fn try_dial(&mut self, wi: usize, ctx: &Ctx<'_, S, A>) {
        let link = &mut self.links[wi];
        let attempt = Stream::connect(&ctx.addrs[link.peer.idx()]).and_then(Conn::new);
        match attempt {
            Ok(mut conn) => {
                let mut hello = Vec::with_capacity(20);
                put_u32(&mut hello, self.id.0);
                put_u64(&mut hello, link.rx_seq);
                put_u64(&mut hello, link.acked);
                conn.out.frame(TAG_HELLO_EDGE, &hello);
                link.pending_dial = Some(conn);
            }
            Err(_) => self.schedule_redial(wi),
        }
    }

    fn schedule_redial(&mut self, wi: usize) {
        let link = &mut self.links[wi];
        let backoff = link.backoff_ms;
        let jitter = link.next_jitter(backoff);
        link.redial_at = Some(Instant::now() + Duration::from_millis(backoff + jitter));
        link.backoff_ms = (backoff * 2).min(RECONNECT_CAP_MS);
    }

    /// Go-back-N on every up edge whose ack watermark stalled since the
    /// previous tick. A stalled watermark alone is not evidence of loss
    /// — the oldest unacked frame must also be at least one RTO old.
    pub(crate) fn rto_tick(&mut self) {
        let id = self.id;
        for link in self.links.iter_mut() {
            let stale = link
                .rtx
                .front()
                .is_some_and(|(_, _, _, sent)| sent.elapsed() >= RTO);
            if stale && link.acked == link.acked_at_tick {
                if let Some(conn) = link.conn.as_mut() {
                    self.counters.timeouts += 1;
                    self.counters.retransmits += link.rtx.len() as u64;
                    oat_obs::trace_event!(oat_obs::EventKind::RtoExpire, id.0, link.peer.0, 0);
                    oat_obs::trace_event!(
                        oat_obs::EventKind::Retransmit,
                        id.0,
                        link.peer.0,
                        link.rtx.len() as u64
                    );
                    let now = Instant::now();
                    for (seq, inner, body, sent) in link.rtx.iter_mut() {
                        queue_seq(&mut conn.out, *seq, *inner, body);
                        *sent = now;
                    }
                }
            }
            link.acked_at_tick = link.acked;
        }
    }

    /// The per-iteration flush: piggy-back a cumulative ack on every
    /// edge whose receive watermark advanced, push every write queue
    /// into its socket (edges before clients, so a flushed client
    /// response always trails the mechanism messages of the request
    /// that produced it), and update the backpressure stall state.
    pub(crate) fn flush(&mut self, ctx: &Ctx<'_, S, A>) {
        for (wi, link) in self.links.iter_mut().enumerate() {
            if let Some(conn) = link.pending_dial.as_mut() {
                if !conn.out.is_empty() && conn.flush().is_err() {
                    link.pending_dial = None;
                    let backoff = link.backoff_ms;
                    let jitter = link.next_jitter(backoff);
                    link.redial_at = Some(Instant::now() + Duration::from_millis(backoff + jitter));
                    link.backoff_ms = (backoff * 2).min(RECONNECT_CAP_MS);
                }
            }
            if let Some(conn) = link.conn.as_mut() {
                if link.rx_seq > link.rx_acked || link.reack {
                    let mut p = Vec::with_capacity(8);
                    put_u64(&mut p, link.rx_seq);
                    conn.out.frame(TAG_ACK, &p);
                    link.rx_acked = link.rx_seq;
                    link.reack = false;
                }
                if !conn.out.is_empty() && conn.flush().is_err() {
                    self.downed.push(wi);
                }
            }
        }
        self.settle_downed();
        // Stream whatever each in-progress batch gathered since the last
        // boundary, before the client write queues flush below.
        self.stream_batches();
        let mut dropped: Vec<ClientId> = Vec::new();
        self.clients.retain(|&cid, conn| {
            let keep = conn.out.is_empty() || conn.flush().is_ok();
            if !keep {
                dropped.push(cid);
            }
            keep
        });
        for cid in dropped {
            self.book.purge(cid);
            self.purge_subs(cid);
        }
        // Backpressure: enter a stall at the high watermark, leave only
        // once *every* edge drained below the low one (hysteresis).
        if !self.stalled {
            if self.links.iter().any(|l| l.rtx.len() >= ctx.rtx_high) {
                self.stalled = true;
                self.backpressure_stalls += 1;
            }
        } else if self.links.iter().all(|l| l.rtx.len() <= ctx.rtx_low) {
            self.stalled = false;
        }
        // Fold the log into a snapshot once enough has accumulated —
        // at the flush boundary the node's state is self-consistent.
        if self.durable && self.backend.wants_snapshot() {
            let state = self.wal_state();
            self.backend.snapshot(&state);
        }
    }

    /// Folds the node's durable state into a snapshot image.
    fn wal_state(&self) -> WalState {
        let mut val = Vec::with_capacity(16);
        self.durable_val.encode(&mut val);
        WalState {
            epoch: self.epoch,
            val: Some(val),
            links: self
                .links
                .iter()
                .enumerate()
                .map(|(vi, l)| LinkState {
                    peer: l.peer.0,
                    tx_seq: l.tx_seq,
                    acked: l.acked,
                    rx_seq: l.rx_seq,
                    lease: self.lease_bits[vi],
                    rtx: l
                        .rtx
                        .iter()
                        .map(|(seq, inner, body, _)| (*seq, *inner, body.clone()))
                        .collect(),
                })
                .collect(),
        }
    }

    fn snapshot_metrics(&self, ctx: &Ctx<'_, S, A>) -> NodeMetrics {
        let mut leases_taken = 0;
        let mut leases_granted = 0;
        let mut edges = Vec::with_capacity(self.mech.nbrs().len());
        let mut dup_drops = 0;
        for (vi, &v) in self.mech.nbrs().iter().enumerate() {
            if self.mech.taken(vi) {
                leases_taken += 1;
            }
            if self.mech.granted(vi) {
                leases_granted += 1;
            }
            edges.push((
                v.0,
                self.stats.per_edge_counts()[ctx.tree.dir_edge_index(self.id, v)],
            ));
            dup_drops += self.links[vi].dup_drops;
        }
        let (queue_depth, queue_peak) = self.gauge.read();
        let wal = self.backend.counters();
        NodeMetrics {
            node: self.id.0,
            sent_by_kind: self.stats.kind_totals(),
            delivered: self.delivered,
            edges,
            leases_taken,
            leases_granted,
            queue_depth,
            queue_peak,
            pending_combines: self.waiters.len() as u64,
            combines_served: self.completions.len() as u64,
            reconnects: self.counters.reconnects,
            retransmits: self.counters.retransmits,
            dup_drops,
            timeouts: self.counters.timeouts,
            restarts: self.counters.restarts,
            kill9s: self.counters.kill9s,
            backpressure_stalls: self.backpressure_stalls,
            wal_records: wal.records,
            wal_fsyncs: wal.fsyncs,
            wal_replays: wal.replays,
            wal_torn_bytes: wal.torn_bytes,
            wal_snapshots: wal.snapshots,
        }
    }

    /// Installs a freshly connected edge stream: replies to the hello
    /// when we are the accepting side, replaces any previous connection,
    /// and replays every unacknowledged frame past the peer's receive
    /// watermark. Returns the neighbour index on success.
    ///
    /// The peer's two hello watermarks also *heal* this side after a
    /// torn-tail recovery, where our own log may understate what the
    /// wire already saw: `peer_rx` (what the peer delivered from us)
    /// fast-forwards our `tx_seq` so no sequence number is ever reused,
    /// and `peer_acked` (the highest of the peer's own frames that a
    /// previous incarnation of this node acknowledged) fast-forwards our
    /// receive watermark so the peer never waits for an ack of frames it
    /// already trimmed. Both are monotone maxes — no-ops on every
    /// non-torn reconnect.
    fn install_edge(
        &mut self,
        peer: NodeId,
        mut conn: Conn,
        peer_rx: u64,
        peer_acked: u64,
        accepted: bool,
        ctx: &Ctx<'_, S, A>,
    ) -> Option<usize> {
        // An unknown peer id is a protocol violation from an untrusted
        // connection: drop it.
        let wi = ctx.tree.nbrs(self.id).iter().position(|&v| v == peer)?;
        let rx_before = self.links[wi].rx_seq;
        {
            // Apply the peer's watermarks *before* composing our reply,
            // so an accepting side's hello already reflects them.
            let link = &mut self.links[wi];
            if peer_acked > link.rx_seq {
                link.rx_seq = peer_acked;
            }
            if peer_acked > link.rx_acked {
                link.rx_acked = peer_acked;
            }
            if peer_rx > link.tx_seq {
                link.tx_seq = peer_rx;
            }
        }
        if accepted {
            // Reply with our id + watermarks so the dialer knows where
            // to resume. Queued first, so it precedes the replay.
            let link = &self.links[wi];
            let mut hello = Vec::with_capacity(20);
            put_u32(&mut hello, self.id.0);
            put_u64(&mut hello, link.rx_seq);
            put_u64(&mut hello, link.acked);
            conn.out.frame(TAG_HELLO_EDGE, &hello);
        }
        let link = &mut self.links[wi];
        let was_up = link.conn.is_some();
        if let Some(old) = link.conn.take() {
            // Sever the replaced connection. Frames still buffered in its
            // decoder or queues are dropped — the sequenced replay below
            // (and the peer's own) re-delivers everything unacknowledged.
            let _ = old.stream.shutdown(Shutdown::Both);
        }
        link.conn = Some(conn);
        link.pending_dial = None;
        link.redial_at = None;
        link.backoff_ms = RECONNECT_BASE_MS;
        if link.ever_up {
            self.counters.reconnects += 1;
            oat_obs::trace_event!(oat_obs::EventKind::Reconnect, self.id.0, peer.0, 0);
        }
        link.ever_up = true;
        // Resume the sequenced stream: everything the peer already has
        // is acknowledged by its hello watermark; replay the rest in
        // order (no fault actions — replays are recovery traffic). Each
        // trimmed frame settles its in-flight debt here, its only exit.
        let acked_before = link.acked;
        if peer_rx > link.acked {
            link.acked = peer_rx;
        }
        let mut settled = 0;
        while link.rtx.front().is_some_and(|(s, ..)| *s <= link.acked) {
            link.rtx.pop_front();
            settled += 1;
        }
        if settled > 0 {
            ctx.in_flight.sub(settled);
        }
        if self.durable {
            // Persist any watermark moves the hello produced.
            let (rx_now, acked_now) = (self.links[wi].rx_seq, self.links[wi].acked);
            if rx_now > rx_before {
                self.backend.log_rx(peer.0, rx_now);
            }
            if acked_now > acked_before {
                self.backend.log_ack(peer.0, acked_now);
            }
        }
        let link = &mut self.links[wi];
        if !link.rtx.is_empty() {
            self.counters.retransmits += link.rtx.len() as u64;
            oat_obs::trace_event!(
                oat_obs::EventKind::Retransmit,
                self.id.0,
                peer.0,
                link.rtx.len() as u64
            );
            let out = &mut link.conn.as_mut().expect("just installed").out;
            let now = Instant::now();
            for (seq, inner, body, sent) in link.rtx.iter_mut() {
                queue_seq(out, *seq, *inner, body);
                *sent = now;
            }
        }
        if !was_up {
            self.connected += 1;
            if self.connected == self.degree && !self.ready_sent {
                self.ready_sent = true;
                let _ = self.ready_tx.send(());
            }
        }
        Some(wi)
    }

    /// Orderly end of the node: record what the automaton still held.
    pub(crate) fn finish(mut self) -> NodeReport<A::Value> {
        // Under faults a client may have given up on a combine; dropping
        // the waiter lets shutdown proceed and the count surfaces here.
        self.abandoned += self.waiters.len() as u64;
        self.abandoned += self
            .insts
            .values()
            .map(|i| i.waiters.len() as u64)
            .sum::<u64>();
        NodeReport {
            stats: self.stats,
            completions: self.completions,
            log: self.mech.ghost().map(|g| g.log.clone()),
            delivered: self.delivered,
            abandoned: self.abandoned,
            faults: self.counters,
            wal: self.backend.counters(),
        }
    }
}

/// Encodes one sequenced frame onto a write queue.
fn queue_seq(out: &mut WriteQueue, seq: u64, inner: u8, body: &[u8]) {
    let mut payload = Vec::with_capacity(9 + body.len());
    put_u64(&mut payload, seq);
    payload.push(inner);
    payload.extend_from_slice(body);
    out.frame(TAG_SEQ, &payload);
}

/// Assigns the next sequence number on `link`, logs the send to the
/// durability backend, appends the frame to the retransmit buffer
/// (in-flight accounting happens here, exactly once per logical frame —
/// the debt settles when the frame is trimmed after acknowledgement),
/// and attempts first transmission — subject to the edge's
/// fault-decision stream and kill schedule. Returns `true` when the
/// connection must be marked down.
fn send_seq<S, A: AggOp>(
    from: NodeId,
    link: &mut EdgeLink,
    dur: &mut dyn Durability,
    inner: u8,
    body: &[u8],
    ctx: &Ctx<'_, S, A>,
) -> bool {
    ctx.in_flight.add(1);
    link.tx_seq += 1;
    let seq = link.tx_seq;
    dur.log_send(link.peer.0, seq, inner, body);
    oat_obs::trace_event!(
        oat_obs::EventKind::FrameTx,
        from.0,
        link.peer.0,
        (seq << 8) | u64::from(inner)
    );
    link.rtx
        .push_back((seq, inner, body.to_vec(), Instant::now()));
    let Some(conn) = link.conn.as_mut() else {
        // Edge down: the frame waits in the retransmit buffer and is
        // replayed when the connection comes back.
        return false;
    };
    let action = link
        .faults
        .as_mut()
        .map(|f| f.next_action())
        .unwrap_or(FaultAction::Deliver);
    match action {
        FaultAction::Deliver => queue_seq(&mut conn.out, seq, inner, body),
        FaultAction::Drop => {
            // First transmission suppressed; the RTO resend recovers it.
            ctx.ledger.drops.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Delay => {
            // Modeled as a suppressed first transmission too — the frame
            // arrives late, via the retransmission path, preserving
            // per-edge FIFO (a true in-stream delay would reorder).
            ctx.ledger.delays.fetch_add(1, Ordering::Relaxed);
        }
        FaultAction::Duplicate => {
            queue_seq(&mut conn.out, seq, inner, body);
            queue_seq(&mut conn.out, seq, inner, body);
            ctx.ledger.dups.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(f) = link.faults.as_mut() {
        if f.on_frame_carried() {
            // Scheduled connection kill: sever the socket with frames
            // potentially still in userspace/kernel buffers — they are
            // genuinely lost and must come back via reconnect replay.
            ctx.ledger.conns_killed.fetch_add(1, Ordering::Relaxed);
            let _ = conn.stream.shutdown(Shutdown::Both);
            return true;
        }
    }
    false
}

/// Queues one response frame for a client connection. A missing writer
/// means the client vanished; its responses are dropped — clients are
/// untrusted peers, their disappearance must not kill a node.
///
/// Responses owed to an in-progress batch are routed into its
/// accumulator instead; the gathered items *stream* out as
/// `TAG_RESP_BATCH` frames at flush boundaries (see [`BatchBook`] and
/// [`NodeRt::stream_batches`]), so a completed member never waits
/// behind the roster's slowest one.
fn respond(
    clients: &mut HashMap<ClientId, Conn>,
    book: &mut BatchBook,
    conn: ClientId,
    tag: u8,
    payload: &[u8],
) {
    if payload.len() >= 8 {
        let req_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        if let Some(key) = book.member.remove(&(conn, req_id)) {
            let acc = book.accs.get_mut(&(conn, key)).expect("member implies acc");
            acc.items.push((tag, payload.to_vec()));
            acc.remaining -= 1;
            return;
        }
    }
    if let Some(c) = clients.get_mut(&conn) {
        c.out.frame(tag, payload);
    }
}
