//! Per-node runtime metrics, served over the wire on request.
//!
//! Each node answers a metrics request with a [`NodeMetrics`] snapshot of
//! its *own* activity: messages it has sent per outgoing directed edge and
//! per kind, its current lease relationships, inbox gauge readings, and
//! combine bookkeeping. Cluster-wide views are client-side merges of these
//! per-node snapshots (see `Cluster::stats`).

use oat_core::message::MsgKind;
use oat_core::wire::{put_u32, put_u64, WireError, WireReader};

/// A snapshot of one node's runtime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The reporting node's id.
    pub node: u32,
    /// Messages this node has *sent*, per kind ([`MsgKind::ALL`] order).
    pub sent_by_kind: [u64; 4],
    /// Network messages this node has *received* and processed.
    pub delivered: u64,
    /// Per outgoing directed edge: `(neighbour, counts per kind)`.
    pub edges: Vec<(u32, [u64; 4])>,
    /// Neighbours this node currently holds a lease from (`taken`).
    pub leases_taken: u32,
    /// Neighbours this node has granted a lease to (`granted`).
    pub leases_granted: u32,
    /// Envelopes currently queued on the node's inbox.
    pub queue_depth: u64,
    /// High-water mark of the inbox queue.
    pub queue_peak: u64,
    /// Combine requests parked awaiting responses.
    pub pending_combines: u64,
    /// Combine requests this node has answered.
    pub combines_served: u64,
    /// Edge connections re-established after a failure.
    pub reconnects: u64,
    /// Sequenced frames re-sent (RTO expiry or post-reconnect replay).
    pub retransmits: u64,
    /// Frames discarded by the edge sequencer (duplicates, out-of-window
    /// arrivals, undecodable payloads).
    pub dup_drops: u64,
    /// Retransmission-timer expirations that triggered a resend.
    pub timeouts: u64,
    /// Times this node's automaton crashed and was restarted.
    pub restarts: u64,
    /// Times client intake was parked because an edge retransmit buffer
    /// crossed the backpressure high watermark.
    pub backpressure_stalls: u64,
    /// Times this node was killed process-style (state dropped) and
    /// recovered from its durability backend.
    pub kill9s: u64,
    /// WAL records appended by the durability backend (0 for `Memory`).
    pub wal_records: u64,
    /// WAL group-commit fsync batches issued.
    pub wal_fsyncs: u64,
    /// WAL recovery replays performed (cold start or kill9 restart).
    pub wal_replays: u64,
    /// Bytes discarded from the WAL tail on recovery (torn writes).
    pub wal_torn_bytes: u64,
    /// Snapshots written by the durability backend.
    pub wal_snapshots: u64,
}

impl NodeMetrics {
    /// Wire encoding (field order as declared; edge list length-prefixed).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.node);
        for c in self.sent_by_kind {
            put_u64(out, c);
        }
        put_u64(out, self.delivered);
        put_u32(out, self.edges.len() as u32);
        for (to, counts) in &self.edges {
            put_u32(out, *to);
            for c in counts {
                put_u64(out, *c);
            }
        }
        put_u32(out, self.leases_taken);
        put_u32(out, self.leases_granted);
        put_u64(out, self.queue_depth);
        put_u64(out, self.queue_peak);
        put_u64(out, self.pending_combines);
        put_u64(out, self.combines_served);
        put_u64(out, self.reconnects);
        put_u64(out, self.retransmits);
        put_u64(out, self.dup_drops);
        put_u64(out, self.timeouts);
        put_u64(out, self.restarts);
        put_u64(out, self.backpressure_stalls);
        put_u64(out, self.kill9s);
        put_u64(out, self.wal_records);
        put_u64(out, self.wal_fsyncs);
        put_u64(out, self.wal_replays);
        put_u64(out, self.wal_torn_bytes);
        put_u64(out, self.wal_snapshots);
    }

    /// Decodes a snapshot, requiring full consumption of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let node = r.u32("metrics node")?;
        let mut sent_by_kind = [0u64; 4];
        for c in &mut sent_by_kind {
            *c = r.u64("metrics sent_by_kind")?;
        }
        let delivered = r.u64("metrics delivered")?;
        let n_edges = r.u32("metrics edge count")? as usize;
        let mut edges = Vec::with_capacity(n_edges.min(4096));
        for _ in 0..n_edges {
            let to = r.u32("metrics edge peer")?;
            let mut counts = [0u64; 4];
            for c in &mut counts {
                *c = r.u64("metrics edge counts")?;
            }
            edges.push((to, counts));
        }
        let metrics = NodeMetrics {
            node,
            sent_by_kind,
            delivered,
            edges,
            leases_taken: r.u32("metrics leases_taken")?,
            leases_granted: r.u32("metrics leases_granted")?,
            queue_depth: r.u64("metrics queue_depth")?,
            queue_peak: r.u64("metrics queue_peak")?,
            pending_combines: r.u64("metrics pending_combines")?,
            combines_served: r.u64("metrics combines_served")?,
            reconnects: r.u64("metrics reconnects")?,
            retransmits: r.u64("metrics retransmits")?,
            dup_drops: r.u64("metrics dup_drops")?,
            timeouts: r.u64("metrics timeouts")?,
            restarts: r.u64("metrics restarts")?,
            backpressure_stalls: r.u64("metrics backpressure_stalls")?,
            kill9s: r.u64("metrics kill9s")?,
            wal_records: r.u64("metrics wal_records")?,
            wal_fsyncs: r.u64("metrics wal_fsyncs")?,
            wal_replays: r.u64("metrics wal_replays")?,
            wal_torn_bytes: r.u64("metrics wal_torn_bytes")?,
            wal_snapshots: r.u64("metrics wal_snapshots")?,
        };
        r.finish("metrics trailing bytes")?;
        Ok(metrics)
    }

    /// Total messages this node has sent.
    pub fn sent_total(&self) -> u64 {
        self.sent_by_kind.iter().sum()
    }

    /// JSON rendering, deterministic field and edge order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.edges.len());
        out.push_str(&format!(
            "{{\n  \"node\": {},\n  \"sent\": {{\"total\": {}",
            self.node,
            self.sent_total()
        ));
        for (kind, c) in MsgKind::ALL.iter().zip(self.sent_by_kind) {
            out.push_str(&format!(", \"{}\": {}", kind.name(), c));
        }
        out.push_str(&format!(
            "}},\n  \"delivered\": {},\n  \"edges\": [",
            self.delivered
        ));
        for (i, (to, counts)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"to\": {to}"));
            for (kind, c) in MsgKind::ALL.iter().zip(counts) {
                out.push_str(&format!(", \"{}\": {}", kind.name(), c));
            }
            out.push('}');
        }
        if !self.edges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"leases\": {{\"taken\": {}, \"granted\": {}}},\n  \"queue\": {{\"depth\": {}, \"peak\": {}}},\n  \"combines\": {{\"pending\": {}, \"served\": {}}},\n  \"faults\": {{\"reconnects\": {}, \"retransmits\": {}, \"dup_drops\": {}, \"timeouts\": {}, \"restarts\": {}, \"kill9s\": {}, \"backpressure_stalls\": {}}},\n  \"wal\": {{\"records\": {}, \"fsyncs\": {}, \"replays\": {}, \"torn_bytes\": {}, \"snapshots\": {}}}\n}}",
            self.leases_taken,
            self.leases_granted,
            self.queue_depth,
            self.queue_peak,
            self.pending_combines,
            self.combines_served,
            self.reconnects,
            self.retransmits,
            self.dup_drops,
            self.timeouts,
            self.restarts,
            self.kill9s,
            self.backpressure_stalls,
            self.wal_records,
            self.wal_fsyncs,
            self.wal_replays,
            self.wal_torn_bytes,
            self.wal_snapshots,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeMetrics {
        NodeMetrics {
            node: 3,
            sent_by_kind: [1, 2, 3, 4],
            delivered: 9,
            edges: vec![(0, [1, 0, 0, 0]), (7, [0, 2, 3, 4])],
            leases_taken: 2,
            leases_granted: 1,
            queue_depth: 0,
            queue_peak: 5,
            pending_combines: 0,
            combines_served: 6,
            reconnects: 1,
            retransmits: 2,
            dup_drops: 3,
            timeouts: 4,
            restarts: 5,
            backpressure_stalls: 6,
            kill9s: 7,
            wal_records: 80,
            wal_fsyncs: 9,
            wal_replays: 2,
            wal_torn_bytes: 11,
            wal_snapshots: 1,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let m = sample();
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(NodeMetrics::decode(&buf).unwrap(), m);
        // Strictness: trailing garbage rejected.
        buf.push(0);
        assert!(NodeMetrics::decode(&buf).is_err());
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.contains("\"node\": 3"));
        assert!(json.contains("\"total\": 10"));
        assert!(json.contains("\"taken\": 2, \"granted\": 1"));
        assert!(json.contains("\"to\": 7, \"probe\": 0, \"response\": 2"));
        assert!(json.contains(
            "\"faults\": {\"reconnects\": 1, \"retransmits\": 2, \"dup_drops\": 3, \"timeouts\": 4, \"restarts\": 5, \"kill9s\": 7, \"backpressure_stalls\": 6}"
        ));
        assert!(json.contains(
            "\"wal\": {\"records\": 80, \"fsyncs\": 9, \"replays\": 2, \"torn_bytes\": 11, \"snapshots\": 1}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
