//! The cluster harness and its blocking client.
//!
//! [`Cluster::spawn`] binds one listener per tree node on the
//! configured transport (loopback TCP, Unix-domain sockets, or
//! in-process SPSC rings — see [`TransportKind`]), starts a fixed pool
//! of reactor threads (default `min(cores, 4)`; see [`NetConfig`])
//! that share the nodes by `node_id % pool`, waits until every tree
//! edge has a live connection, and returns a handle that can mint
//! [`ClusterClient`]s, wait for quiescence, collect metrics, and shut
//! the whole thing down gracefully.
//!
//! ## Shutdown protocol
//!
//! 1. wait for quiescence (no mechanism message in flight),
//! 2. raise the cluster-wide `shutting_down` flag,
//! 3. wake every reactor through its waker socketpair — each reactor
//!    observes the flag at the top of its loop, flushes every write
//!    queue one final time, and returns its nodes' final reports,
//! 4. join the reactor threads and merge the reports.
//!
//! Client connections still open simply see EOF on their next read.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oat_core::agg::AggOp;
use oat_core::fault::{FaultPlan, InjectedFaults};
use oat_core::ghost::GhostReq;
use oat_core::message::MsgKind;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::{NodeId, Tree};
use oat_core::wire::{put_u32, put_u64, WireReader, WireValue};
use oat_sim::MsgStats;

use crate::durability::{Durability, MemoryDurability, WalCounters, WalDurability};
use crate::frame::{
    decode_batch, encode_batch, write_frame, FrameDecoder, TAG_HELLO_CLIENT, TAG_PARTIAL,
    TAG_REQ_BATCH, TAG_REQ_COMBINE, TAG_REQ_COMBINE_T, TAG_REQ_METRICS, TAG_REQ_WRITE,
    TAG_REQ_WRITE_T, TAG_RESP_BATCH, TAG_RESP_COMBINE, TAG_RESP_METRICS, TAG_RESP_WRITE, TAG_SUB,
};
use crate::metrics::NodeMetrics;
use crate::node::{FaultCounters, NodeReport, RTX_DEFAULT_HIGH, RTX_DEFAULT_LOW};
use crate::reactor::{reactor_main, waker_pair, InFlight, NodeSeed, ReactorCfg, Waker};
use crate::transport::{ring_listen, ClientStream, Listener, NodeAddr, TransportKind, UdsDir};

/// How long [`Cluster::shutdown`] waits for a reactor thread to exit
/// before declaring its nodes dead and abandoning the join (the thread
/// is leaked — a diagnosis aid, not a resource policy; the process is
/// ending anyway).
const JOIN_DEADLINE: Duration = Duration::from_secs(10);

/// Transport tuning knobs for [`Cluster::spawn_with`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Reactor threads serving the cluster. `None` (the default) uses
    /// `min(available cores, 4)`; any value is clamped to `[1, nodes]`.
    pub threads: Option<usize>,
    /// Backpressure high watermark: a node whose edge retransmit buffer
    /// reaches this many frames stops reading its client connections.
    pub rtx_high: usize,
    /// Backpressure low watermark: a stalled node resumes client intake
    /// once every edge's retransmit buffer is at or below this.
    pub rtx_low: usize,
    /// Durability backend for node state (default: in-memory).
    pub durability: DurabilityMode,
    /// Connection transport for edges and clients (default: TCP).
    /// Framing, sequencing, retransmit, and fault injection are
    /// identical across transports — only the byte substrate differs.
    pub transport: TransportKind,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            threads: None,
            rtx_high: RTX_DEFAULT_HIGH,
            rtx_low: RTX_DEFAULT_LOW,
            durability: DurabilityMode::Memory,
            transport: TransportKind::Tcp,
        }
    }
}

/// Which durability backend the cluster's nodes escrow state into.
#[derive(Clone, Debug, Default)]
pub enum DurabilityMode {
    /// In-memory escrow: survives automaton crash-restarts, not process
    /// kills. Exactly the pre-WAL behavior — the default, and the mode
    /// the simulator-parity tests run under.
    #[default]
    Memory,
    /// Write-ahead log + snapshots on disk; survives `kill9` process
    /// kills and supports cold-starting a cluster over existing logs.
    Wal(WalConfig),
}

/// Configuration of the write-ahead-log backend.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding one `node-N` subdirectory per node.
    pub dir: PathBuf,
    /// Group-commit batch: fsync after this many appended records.
    /// Write and epoch records always force an immediate sync (the
    /// write-ack durability contract). `1` = sync every record.
    pub fsync_every: u64,
    /// Fold the log into a snapshot (and truncate it) after this many
    /// records.
    pub snapshot_every: u64,
}

impl WalConfig {
    /// WAL under `dir` with default batching (fsync every 8 records,
    /// snapshot every 4096).
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync_every: 8,
            snapshot_every: 4096,
        }
    }
}

/// What a reactor thread returns at shutdown: the final report of every
/// node in its shard.
type ShardHandle<V> = JoinHandle<Vec<(NodeId, NodeReport<V>)>>;

/// A running cluster: a reactor pool serving one listener per node
/// over the configured transport.
pub struct Cluster<A: AggOp> {
    tree: Tree,
    addrs: Vec<NodeAddr>,
    wakers: Vec<Waker>,
    /// Node ids owned by each reactor, indexed like `handles`.
    shards: Vec<Vec<NodeId>>,
    in_flight: Arc<InFlight>,
    total_sent: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
    handles: Vec<ShardHandle<A::Value>>,
    policy_name: String,
    ledger: Arc<InjectedFaults>,
    threads_spawned: usize,
    /// Keeps the UDS socket directory alive (and removed on drop).
    _uds_dir: Option<UdsDir>,
}

/// Final state of a cluster after [`Cluster::shutdown`].
pub struct ClusterReport<V> {
    /// Merged per-directed-edge, per-kind message counters — directly
    /// comparable with [`oat_sim::Engine::stats`].
    pub stats: MsgStats,
    /// `(node, value)` for every answered combine, grouped by node.
    pub combines: Vec<(NodeId, V)>,
    /// Per-node ghost logs when ghost tracking was enabled.
    pub logs: Option<Vec<Vec<GhostReq<V>>>>,
    /// Network messages delivered across all nodes.
    pub delivered: u64,
    /// Nodes whose reactor did not exit within the join deadline (or
    /// panicked); their counters are missing from the other fields.
    pub dead_nodes: Vec<NodeId>,
    /// Combine waiters abandoned at shutdown across all nodes (clients
    /// that gave up under faults).
    pub abandoned: u64,
    /// Fault-recovery counters summed over all nodes.
    pub faults: FaultCounters,
    /// Durability-backend counters summed over all nodes (all zero with
    /// the Memory backend).
    pub wal: WalCounters,
    /// OS threads the cluster ran: the reactor pool size. Grows with
    /// the configured pool, *not* with the node count.
    pub threads_spawned: usize,
}

/// Result of [`Cluster::replay_sequential`] — the TCP analogue of
/// [`oat_sim::sequential::SeqChunk`].
pub struct NetSeqChunk<V> {
    /// `(request index, returned value)` for every combine, in order.
    pub combines: Vec<(usize, V)>,
    /// Mechanism messages sent while executing each request.
    pub per_request_msgs: Vec<u64>,
    /// Wall-clock latency of each request: submit → response received
    /// (the quiescence wait between requests is *not* included).
    pub latencies: Vec<Duration>,
}

impl<V> NetSeqChunk<V> {
    /// Total messages over the whole sequence — the paper's `C_A(σ)`.
    pub fn total_msgs(&self) -> u64 {
        self.per_request_msgs.iter().sum()
    }
}

/// Result of [`Cluster::replay_pipelined`] — the concurrent,
/// pipeline-depth-N counterpart of [`NetSeqChunk`]. Requests overlap,
/// so there is no per-request message attribution; combine values are
/// only comparable to the sequential oracle when the workload phase
/// structure makes them deterministic (e.g. no writes concurrent with
/// the combines).
pub struct PipelinedChunk<V> {
    /// `(request index, returned value)` for every combine, sorted by
    /// request index.
    pub combines: Vec<(usize, V)>,
    /// Wall-clock latency of each request (submit → response), indexed
    /// like the input sequence.
    pub latencies: Vec<Duration>,
    /// Wall time of the whole replay (all clients, first submit to last
    /// response).
    pub elapsed: Duration,
}

impl<A: AggOp> Cluster<A>
where
    A::Value: WireValue,
{
    /// Boots an `n`-node cluster for `tree` on loopback over a reliable
    /// substrate (no injected faults).
    ///
    /// Binds every listener first (so dial order cannot race), starts
    /// the reactor pool, and returns once every tree edge has a live
    /// TCP connection.
    pub fn spawn<S: PolicySpec>(tree: &Tree, op: A, spec: &S, ghost: bool) -> io::Result<Self>
    where
        S::Node: 'static,
    {
        Self::spawn_with(
            tree,
            op,
            spec,
            ghost,
            FaultPlan::default(),
            NetConfig::default(),
        )
    }

    /// Boots a cluster whose transport is subjected to `plan`: seeded
    /// drop/duplicate/delay decisions per directed edge, scheduled
    /// connection kills, and scheduled node crashes. An empty plan is
    /// exactly [`Cluster::spawn`] — the fault machinery stays disarmed
    /// and costs nothing per frame.
    pub fn spawn_with_faults<S: PolicySpec>(
        tree: &Tree,
        op: A,
        spec: &S,
        ghost: bool,
        plan: FaultPlan,
    ) -> io::Result<Self>
    where
        S::Node: 'static,
    {
        Self::spawn_with(tree, op, spec, ghost, plan, NetConfig::default())
    }

    /// Boots a cluster with explicit transport tuning: reactor pool
    /// size and backpressure watermarks (see [`NetConfig`]).
    pub fn spawn_with<S: PolicySpec>(
        tree: &Tree,
        op: A,
        spec: &S,
        ghost: bool,
        plan: FaultPlan,
        cfg: NetConfig,
    ) -> io::Result<Self>
    where
        S::Node: 'static,
    {
        let n = tree.len();
        if !plan.kill9s.is_empty() && matches!(cfg.durability, DurabilityMode::Memory) {
            // A kill9 destroys the in-memory escrow — with nothing on
            // disk the node could never rejoin. Refuse early instead of
            // wedging the cluster mid-run.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "kill9 faults require the Wal durability backend (NetConfig::durability)",
            ));
        }
        let uds_dir = match cfg.transport {
            TransportKind::Uds => Some(UdsDir::new()?),
            _ => None,
        };
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            match cfg.transport {
                TransportKind::Tcp => {
                    let listener = TcpListener::bind("127.0.0.1:0")?;
                    listener.set_nonblocking(true)?;
                    addrs.push(NodeAddr::Tcp(listener.local_addr()?));
                    listeners.push(Listener::Tcp(listener));
                }
                TransportKind::Uds => {
                    let path = uds_dir.as_ref().expect("uds dir").sock_path(i);
                    let listener = UnixListener::bind(&path)?;
                    listener.set_nonblocking(true)?;
                    addrs.push(NodeAddr::Uds(path));
                    listeners.push(Listener::Uds(listener));
                }
                TransportKind::Ring => {
                    let listener = ring_listen()?;
                    addrs.push(NodeAddr::Ring(listener.id()));
                    listeners.push(Listener::Ring(listener));
                }
            }
        }

        let pool = cfg
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(4)
            })
            .clamp(1, n.max(1));
        let rtx_high = cfg.rtx_high.max(1);
        let rtx_low = cfg.rtx_low.min(rtx_high);

        let in_flight = Arc::new(InFlight::new());
        let total_sent = Arc::new(AtomicU64::new(0));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let plan = Arc::new(plan);
        let ledger = Arc::new(InjectedFaults::default());
        let (ready_tx, ready_rx) = channel();

        let mut shard_seeds: Vec<Vec<NodeSeed>> = (0..pool).map(|_| Vec::new()).collect();
        for (u, listener) in tree.nodes().zip(listeners) {
            // Backends open on the main thread, where an unwritable WAL
            // directory can still fail the spawn with a real error.
            let backend: Box<dyn Durability> = match &cfg.durability {
                DurabilityMode::Memory => Box::new(MemoryDurability),
                DurabilityMode::Wal(wal) => Box::new(WalDurability::open(
                    &wal.dir.join(format!("node-{}", u.0)),
                    u,
                    wal.fsync_every,
                    wal.snapshot_every,
                    &plan,
                    Arc::clone(&ledger),
                )?),
            };
            shard_seeds[u.idx() % pool].push(NodeSeed {
                id: u,
                listener,
                backend,
            });
        }

        let mut wakers = Vec::with_capacity(pool);
        let mut shards = Vec::with_capacity(pool);
        let mut handles = Vec::with_capacity(pool);
        for (shard, seeds) in shard_seeds.into_iter().enumerate() {
            let (waker, waker_rx) = waker_pair()?;
            shards.push(seeds.iter().map(|s| s.id).collect::<Vec<_>>());
            let rcfg = ReactorCfg {
                shard: shard as u32,
                shard_nodes: seeds,
                tree: tree.clone(),
                addrs: addrs.clone(),
                op: op.clone(),
                // Reactors get the spec, not a built policy: every
                // crash-restart rebuilds a fresh policy state.
                spec: spec.clone(),
                ghost,
                in_flight: Arc::clone(&in_flight),
                total_sent: Arc::clone(&total_sent),
                shutting_down: Arc::clone(&shutting_down),
                plan: Arc::clone(&plan),
                ledger: Arc::clone(&ledger),
                ready_tx: ready_tx.clone(),
                waker_rx,
                rtx_high,
                rtx_low,
            };
            handles.push(std::thread::spawn(move || reactor_main::<S, A>(rcfg)));
            wakers.push(waker);
        }
        drop(ready_tx);

        // Every node signals once all of its edge connections are up.
        for _ in 0..n {
            ready_rx.recv().map_err(|_| {
                io::Error::new(io::ErrorKind::ConnectionAborted, "node died during setup")
            })?;
        }

        Ok(Cluster {
            tree: tree.clone(),
            addrs,
            wakers,
            shards,
            in_flight,
            total_sent,
            shutting_down,
            handles,
            policy_name: spec.name(),
            ledger,
            threads_spawned: pool,
            _uds_dir: uds_dir,
        })
    }

    /// Opens a client connection to `node`.
    pub fn client(&self, node: NodeId) -> io::Result<ClusterClient<A::Value>> {
        ClusterClient::connect(self.addrs[node.idx()].clone(), node)
    }

    /// Fetches one node's metrics snapshot over the cluster transport.
    pub fn node_metrics(&self, node: NodeId) -> io::Result<NodeMetrics> {
        self.client(node)?.metrics()
    }

    /// Merged message counters, assembled from per-node TCP metrics.
    /// After [`Cluster::quiesce`], comparable 1:1 with the simulator's
    /// [`oat_sim::Engine::stats`] on the same workload.
    pub fn stats(&self) -> io::Result<MsgStats> {
        let mut stats = MsgStats::new(&self.tree);
        for u in self.tree.nodes() {
            let m = self.node_metrics(u)?;
            for (to, counts) in m.edges {
                let edge = self.tree.dir_edge_index(u, NodeId(to));
                for (kind, count) in MsgKind::ALL.iter().zip(counts) {
                    stats.add(edge, *kind, count);
                }
            }
        }
        Ok(stats)
    }

    /// JSON export of the merged counters — same shape as
    /// [`oat_sim::Engine::stats_json`].
    pub fn stats_json(&self) -> io::Result<String> {
        Ok(self.stats()?.to_json(&self.tree))
    }

    /// JSON array of every node's metrics snapshot.
    pub fn metrics_json(&self) -> io::Result<String> {
        let mut out = String::from("[\n");
        for u in self.tree.nodes() {
            if u.0 > 0 {
                out.push_str(",\n");
            }
            out.push_str(&self.node_metrics(u)?.to_json());
        }
        out.push_str("\n]");
        Ok(out)
    }

    /// Replays `seq` as a sequential execution: each request is sent to
    /// its node over TCP, awaited, and the network drained to quiescence
    /// before the next — the setting in which the paper's (and the
    /// simulator's) message counts are defined.
    pub fn replay_sequential(
        &self,
        seq: &[Request<A::Value>],
    ) -> io::Result<NetSeqChunk<A::Value>> {
        let mut clients: Vec<Option<ClusterClient<A::Value>>> =
            (0..self.tree.len()).map(|_| None).collect();
        let mut combines = Vec::new();
        let mut per_request_msgs = Vec::with_capacity(seq.len());
        let mut latencies = Vec::with_capacity(seq.len());
        for (i, q) in seq.iter().enumerate() {
            let before = self.total_messages();
            let slot = &mut clients[q.node.idx()];
            let client = match slot {
                Some(c) => c,
                None => slot.insert(self.client(q.node)?),
            };
            let start = Instant::now();
            match &q.op {
                ReqOp::Combine => combines.push((i, client.combine()?)),
                ReqOp::Write(arg) => client.write(arg.clone())?,
            }
            latencies.push(start.elapsed());
            self.quiesce();
            per_request_msgs.push(self.total_messages() - before);
        }
        Ok(NetSeqChunk {
            combines,
            per_request_msgs,
            latencies,
        })
    }

    /// Replays `seq` with client-side pipelining: one client per node
    /// that appears in the sequence, each keeping up to `depth` requests
    /// in flight on its connection, all clients running concurrently.
    ///
    /// Per-node request order is preserved (each node's subsequence is
    /// submitted FIFO on one connection); cross-node order — which the
    /// network model leaves free anyway — is abandoned, and nothing
    /// quiesces between requests. This is the throughput mode: wall
    /// clock scales with pipeline depth instead of per-request
    /// round-trips. Call [`Cluster::quiesce`] afterwards before reading
    /// message counters — write responses do not imply the resulting
    /// updates have drained.
    pub fn replay_pipelined(
        &self,
        seq: &[Request<A::Value>],
        depth: usize,
    ) -> io::Result<PipelinedChunk<A::Value>>
    where
        A::Value: Send,
    {
        self.replay_pipelined_multi(seq, depth, 1)
    }

    /// [`Cluster::replay_pipelined`] with `clients` concurrent
    /// connections per node: each node's subsequence is dealt
    /// round-robin across its clients, every client keeping up to
    /// `depth` requests in flight. With `clients > 1` even per-node
    /// submission order is abandoned (each client's share is FIFO on
    /// its own connection); this is the contention mode for measuring
    /// how a node serves many independent frontends.
    pub fn replay_pipelined_multi(
        &self,
        seq: &[Request<A::Value>],
        depth: usize,
        clients: usize,
    ) -> io::Result<PipelinedChunk<A::Value>>
    where
        A::Value: Send,
    {
        let depth = depth.max(1);
        let clients = clients.max(1);
        let mut by_client: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); clients]; self.tree.len()];
        let mut counts = vec![0usize; self.tree.len()];
        for (i, q) in seq.iter().enumerate() {
            let u = q.node.idx();
            by_client[u][counts[u] % clients].push(i);
            counts[u] += 1;
        }
        let start = Instant::now();
        let mut results: Vec<io::Result<PerClientResults<A::Value>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (node_idx, shares) in by_client.iter().enumerate() {
                for indices in shares {
                    if indices.is_empty() {
                        continue;
                    }
                    let node = NodeId(node_idx as u32);
                    let addr = self.addrs[node_idx].clone();
                    handles.push(scope.spawn(move || {
                        let mut client = ClusterClient::<A::Value>::connect(addr, node)?;
                        client.run_window(seq, indices, depth)
                    }));
                }
            }
            for h in handles {
                results.push(h.join().expect("pipelined client thread panicked"));
            }
        });
        let elapsed = start.elapsed();
        let mut combines = Vec::new();
        let mut latencies = vec![Duration::ZERO; seq.len()];
        for r in results {
            let r = r?;
            combines.extend(r.combines);
            for (i, d) in r.latencies {
                latencies[i] = d;
            }
        }
        combines.sort_by_key(|&(i, _)| i);
        Ok(PipelinedChunk {
            combines,
            latencies,
            elapsed,
        })
    }

    /// Replays `seq` with client-side batching: one client per node
    /// that appears in the sequence, each slicing its subsequence into
    /// chunks of `batch` requests and sending every chunk as a single
    /// `REQ_BATCH` frame (one syscall carries N requests; the node
    /// answers with one `RESP_BATCH` once all N resolve). Per-node
    /// order is preserved inside and across chunks; cross-node order
    /// is abandoned, like [`Cluster::replay_pipelined`]. Latencies are
    /// per request but measured from the chunk's submit (batching
    /// trades individual latency for throughput).
    pub fn replay_batched(
        &self,
        seq: &[Request<A::Value>],
        batch: usize,
    ) -> io::Result<PipelinedChunk<A::Value>>
    where
        A::Value: Send,
    {
        let batch = batch.max(1);
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); self.tree.len()];
        for (i, q) in seq.iter().enumerate() {
            by_node[q.node.idx()].push(i);
        }
        let start = Instant::now();
        let mut results: Vec<io::Result<PerClientResults<A::Value>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (node_idx, indices) in by_node.iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                let node = NodeId(node_idx as u32);
                let addr = self.addrs[node_idx].clone();
                handles.push(scope.spawn(move || {
                    let mut client = ClusterClient::<A::Value>::connect(addr, node)?;
                    client.run_batches(seq, indices, batch)
                }));
            }
            for h in handles {
                results.push(h.join().expect("batched client thread panicked"));
            }
        });
        let elapsed = start.elapsed();
        let mut combines = Vec::new();
        let mut latencies = vec![Duration::ZERO; seq.len()];
        for r in results {
            let r = r?;
            combines.extend(r.combines);
            for (i, d) in r.latencies {
                latencies[i] = d;
            }
        }
        combines.sort_by_key(|&(i, _)| i);
        Ok(PipelinedChunk {
            combines,
            latencies,
            elapsed,
        })
    }

    /// Graceful shutdown; returns the merged final state. Never hangs:
    /// reactor threads that fail to exit within the join deadline have
    /// their nodes reported in [`ClusterReport::dead_nodes`] instead.
    pub fn shutdown(mut self) -> ClusterReport<A::Value> {
        self.shutdown_inner().expect("shutdown on a live cluster")
    }
}

// Methods that need no wire-codec bound (notably everything Drop uses).
impl<A: AggOp> Cluster<A> {
    /// The tree this cluster serves.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The policy the nodes run.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Listener addresses, indexed by node id.
    pub fn addrs(&self) -> &[NodeAddr] {
        &self.addrs
    }

    /// OS threads serving this cluster: the reactor pool size.
    pub fn threads_spawned(&self) -> usize {
        self.threads_spawned
    }

    /// Mechanism messages sent cluster-wide so far.
    ///
    /// Relaxed load: the count is only meaningful after
    /// [`Cluster::quiesce`], whose SeqCst read of `in_flight`
    /// synchronizes with the SeqCst handler-exit decrement that follows
    /// every (relaxed) `total_sent` increment in the sending thread, so
    /// all increments are visible here by then. Between quiescent points
    /// the value is a monotone lower bound — fine for progress display,
    /// not for exact windows.
    pub fn total_messages(&self) -> u64 {
        self.total_sent.load(Ordering::Relaxed)
    }

    /// Blocks until no mechanism message is queued or being handled.
    ///
    /// Meaningful when no client request is concurrently outstanding —
    /// the sequential-execution contract of the paper (and of
    /// [`Cluster::replay_sequential`]).
    ///
    /// `in_flight` stays SeqCst on both sides: it is the cluster's one
    /// true synchronizer — the acquire edge its zero-read provides is
    /// what licenses the relaxed orderings on `total_sent` and the
    /// queue gauges. The wait itself is event-driven: reactors notify
    /// a condvar when the count hits zero, so this parks instead of
    /// spinning (see `crate::reactor::InFlight`).
    pub fn quiesce(&self) {
        self.in_flight.wait_zero(None);
    }

    /// Bounded [`Cluster::quiesce`]: waits up to `deadline`, returning
    /// whether the cluster actually drained. Use instead of `quiesce`
    /// whenever a node might be wedged (shutdown does).
    pub fn quiesce_for(&self, deadline: Duration) -> bool {
        self.in_flight.wait_zero(Some(Instant::now() + deadline))
    }

    /// The cluster-wide ledger of injected fault events (all zero when
    /// the cluster was spawned without a fault plan).
    pub fn injected(&self) -> &InjectedFaults {
        &self.ledger
    }

    fn shutdown_inner(&mut self) -> Option<ClusterReport<A::Value>> {
        if self.handles.is_empty() {
            return None;
        }
        // Bounded: a wedged node must not turn shutdown (or Drop) into
        // a hang — it gets reported as dead below instead.
        self.quiesce_for(JOIN_DEADLINE);
        self.shutting_down.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        let mut stats = MsgStats::new(&self.tree);
        let mut combines = Vec::new();
        let mut logs: Vec<(NodeId, Vec<GhostReq<A::Value>>)> = Vec::new();
        let mut delivered = 0;
        let mut have_logs = true;
        let mut dead_nodes = Vec::new();
        let mut abandoned = 0;
        let mut faults = FaultCounters::default();
        let mut wal = WalCounters::default();
        let deadline = Instant::now() + JOIN_DEADLINE;
        for (shard, handle) in self.shards.drain(..).zip(self.handles.drain(..)) {
            // JoinHandle has no timed join; poll `is_finished` against
            // the deadline and leak the thread if it never exits — a
            // dead reactor must not turn shutdown into a hang.
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if !handle.is_finished() {
                dead_nodes.extend(shard);
                continue;
            }
            match handle.join() {
                Ok(reports) => {
                    for (u, report) in reports {
                        stats.merge(&report.stats);
                        combines.extend(report.completions);
                        delivered += report.delivered;
                        abandoned += report.abandoned;
                        faults.reconnects += report.faults.reconnects;
                        faults.retransmits += report.faults.retransmits;
                        faults.timeouts += report.faults.timeouts;
                        faults.restarts += report.faults.restarts;
                        faults.kill9s += report.faults.kill9s;
                        wal.merge(&report.wal);
                        match report.log {
                            Some(log) => logs.push((u, log)),
                            None => have_logs = false,
                        }
                    }
                }
                // The reactor itself panicked (it already absorbs
                // automaton panics, so this is a harness bug, not an
                // injected fault) — report, don't propagate.
                Err(_) => dead_nodes.extend(shard),
            }
        }
        // Reactors return their shards in node order within a shard but
        // shards interleave; restore global node order for the logs.
        logs.sort_by_key(|&(u, _)| u);
        Some(ClusterReport {
            stats,
            combines,
            logs: have_logs.then(|| logs.into_iter().map(|(_, l)| l).collect()),
            delivered,
            dead_nodes,
            abandoned,
            faults,
            wal,
            threads_spawned: self.threads_spawned,
        })
    }
}

impl<A: AggOp> Drop for Cluster<A> {
    fn drop(&mut self) {
        if !self.handles.is_empty() && !std::thread::panicking() {
            // Best-effort graceful teardown when shutdown() wasn't called.
            let _ = self.shutdown_inner();
        }
    }
}

/// One response frame received by a client.
#[derive(Clone, Debug, PartialEq)]
pub enum Response<V> {
    /// A combine result carrying the aggregate value.
    Combine(V),
    /// A write acknowledgement (the write's transitions have run).
    Write,
    /// An unsolicited pushed refinement for a subscribed forest tree
    /// (see [`ClusterClient::subscribe`]); paired with the sub id.
    Partial {
        /// Forest tree the refinement is for.
        tree: u32,
        /// The node's per-tree refinement sequence — monotone across
        /// automaton crash-restarts, reset only when a kill9 severs
        /// the subscription's connection itself.
        seq: u64,
        /// The refined aggregate value.
        value: V,
    },
}

/// Per-client outcome of one pipelined window run.
struct PerClientResults<V> {
    combines: Vec<(usize, V)>,
    latencies: Vec<(usize, Duration)>,
}

/// A blocking client bound to one node of a running cluster, over
/// whatever transport the cluster was spawned with.
///
/// Three usage modes share one connection:
///
/// * **Synchronous** ([`ClusterClient::combine`] /
///   [`ClusterClient::write`] / [`ClusterClient::metrics`]): strict
///   request/response, one outstanding request at a time.
/// * **Pipelined** ([`ClusterClient::submit_combine`] /
///   [`ClusterClient::submit_write`] + [`ClusterClient::next_response`]):
///   keep many requests in flight; responses are matched by request id,
///   because a node may answer a later write before an earlier combine
///   that is still waiting on the tree.
/// * **Batched** ([`ClusterClient::submit_batch`]): one `REQ_BATCH`
///   frame carries N requests; the node replies with one `RESP_BATCH`
///   once all N resolve. Ids are minted from the same sequence, and
///   [`ClusterClient::next_response`] unpacks batch responses
///   transparently — callers still consume one `(id, response)` at a
///   time.
///
/// Submissions are buffered — a burst of submits coalesces into one
/// wire write; [`ClusterClient::next_response`] flushes before reading,
/// so a client can never deadlock against its own unflushed requests.
///
/// ## Timeouts and idempotent retry
///
/// With [`ClusterClient::set_timeout`] armed, a read that waits longer
/// than the timeout re-sends every still-unanswered request frame —
/// *same request ids* — and keeps reading. Batched submissions retry
/// as *individual* frames: the node answers retried members directly
/// and strikes them from the batch's roster, so every request resolves
/// exactly once whether its batch response or its direct duplicate
/// arrives first. The ids make the retry
/// idempotent end to end: the node parks at most one combine waiter per
/// `(connection, id)`, writes of the same value re-apply harmlessly,
/// and the client discards any response whose id it no longer has
/// outstanding (the duplicate from a request that was merely slow, not
/// lost). This is the client-side half of crash recovery: a node
/// restart destroys parked waiters, and the retry re-drives them.
///
/// Reads go through an incremental [`FrameDecoder`], so a timeout that
/// fires mid-frame loses nothing: the partial bytes stay buffered and
/// the next read resumes exactly where the stream left off.
///
/// With the retry policy armed the client also survives the *connection
/// itself* dying (EOF/reset — what a `kill9`'d node does to its
/// clients): it redials the same address, re-hellos, re-sends every
/// unanswered request, and keeps reading. A partial frame from the old
/// connection is discarded — the new connection starts a fresh stream.
pub struct ClusterClient<V> {
    node: NodeId,
    /// The node's address, kept for retry-policy reconnects.
    addr: NodeAddr,
    /// The blocking connection (any transport).
    stream: ClientStream,
    /// Write buffer; submissions append frames here, flushed to the
    /// stream before every blocking read.
    wbuf: Vec<u8>,
    /// Responses unpacked from a `RESP_BATCH` frame, delivered before
    /// the next wire read.
    queued: VecDeque<(u8, Vec<u8>)>,
    /// Incremental decoder for the read half: partial frames survive
    /// read timeouts instead of desynchronizing the stream.
    dec: FrameDecoder,
    next_id: u64,
    /// Read timeout; `None` blocks forever (the default).
    timeout: Option<Duration>,
    /// Timed-out reads allowed per blocking call before giving up.
    max_retries: u32,
    /// Submitted, not yet answered: `id → (tag, payload)` for re-send.
    pending: HashMap<u64, (u8, Vec<u8>)>,
    /// Timed-out reads that triggered a retry, for reporting.
    timeouts: u64,
    /// Dead connections replaced under the retry policy.
    reconnects: u64,
    /// Live subscriptions `(sub id, tree)`, re-registered on reconnect
    /// (the fresh server-side connection knows nothing of the old subs).
    subs: Vec<(u64, u32)>,
    /// Partials that arrived while a synchronous call was draining the
    /// stream; surfaced by [`ClusterClient::try_next_response`].
    parked_partials: VecDeque<(u64, Response<V>)>,
    _value: std::marker::PhantomData<fn() -> V>,
}

impl<V: WireValue> ClusterClient<V> {
    /// Connects and announces itself as a client. Accepts anything
    /// convertible to a [`NodeAddr`] (a bare `SocketAddr` dials TCP).
    pub fn connect(addr: impl Into<NodeAddr>, node: NodeId) -> io::Result<Self> {
        let addr = addr.into();
        let mut stream = ClientStream::connect(&addr)?;
        let mut hello = Vec::with_capacity(8);
        write_frame(&mut hello, TAG_HELLO_CLIENT, &[])?;
        stream.write_all(&hello)?;
        Ok(ClusterClient {
            node,
            addr,
            stream,
            wbuf: Vec::with_capacity(16 * 1024),
            queued: VecDeque::new(),
            dec: FrameDecoder::new(),
            next_id: 0,
            timeout: None,
            max_retries: 0,
            pending: HashMap::new(),
            timeouts: 0,
            reconnects: 0,
            subs: Vec::new(),
            parked_partials: VecDeque::new(),
            _value: std::marker::PhantomData,
        })
    }

    /// The node this client talks to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Arms (or with `None` disarms) the per-read timeout: a blocking
    /// read that exceeds it re-sends every unanswered request (same
    /// ids) and retries, up to `max_retries` times per call before
    /// surfacing `TimedOut`.
    pub fn set_timeout(&mut self, timeout: Option<Duration>, max_retries: u32) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.timeout = timeout;
        self.max_retries = max_retries;
        Ok(())
    }

    /// Timed-out reads that triggered a retry over this client's life.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Dead connections replaced under the retry policy.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// True when `err` means the connection died (as opposed to a
    /// timeout or a protocol error) — recoverable by redialing.
    fn is_disconnect(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
        )
    }

    /// Replaces a dead connection: redial, re-hello, re-send every
    /// unanswered request. Bytes of a partially received frame are
    /// discarded with the old decoder — the new stream starts clean.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = ClientStream::connect(&self.addr)?;
        stream.set_read_timeout(self.timeout)?;
        self.stream = stream;
        self.dec = FrameDecoder::new();
        self.wbuf.clear();
        write_frame(&mut self.wbuf, TAG_HELLO_CLIENT, &[])?;
        self.reconnects += 1;
        self.resend_pending()?;
        self.resubscribe()
    }

    /// Re-registers every subscription on a fresh connection. The node
    /// side keys subs by `(connection, sub id)`, so re-registering the
    /// same sub id on the new connection resumes pushes; the per-tree
    /// refinement seq continues monotonically unless the node itself
    /// was kill9'd.
    fn resubscribe(&mut self) -> io::Result<()> {
        for &(id, tree) in &self.subs {
            let mut payload = Vec::with_capacity(12);
            put_u64(&mut payload, id);
            put_u32(&mut payload, tree);
            write_frame(&mut self.wbuf, TAG_SUB, &payload)?;
        }
        self.flush()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Reads the next frame through the incremental decoder. A timeout
    /// (or any error) leaves partially received bytes buffered, so the
    /// stream stays frame-aligned across retries.
    fn read_frame_buffered(&mut self) -> io::Result<(u8, Vec<u8>)> {
        loop {
            if let Some(frame) = self.dec.try_frame()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        if self.dec.is_empty() {
                            "connection closed"
                        } else {
                            "connection closed mid-frame"
                        },
                    ))
                }
                Ok(n) => self.dec.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits a combine without waiting; returns its request id.
    /// Buffered — the frame reaches the wire at the next
    /// [`ClusterClient::flush`] or [`ClusterClient::next_response`].
    pub fn submit_combine(&mut self) -> io::Result<u64> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(8);
        put_u64(&mut payload, id);
        write_frame(&mut self.wbuf, TAG_REQ_COMBINE, &payload)?;
        oat_obs::trace_event!(oat_obs::EventKind::ReqStart, self.node.0, 0, id);
        self.pending.insert(id, (TAG_REQ_COMBINE, payload));
        Ok(id)
    }

    /// Submits a write without waiting; returns its request id.
    pub fn submit_write(&mut self, arg: V) -> io::Result<u64> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(16);
        put_u64(&mut payload, id);
        arg.encode(&mut payload);
        write_frame(&mut self.wbuf, TAG_REQ_WRITE, &payload)?;
        oat_obs::trace_event!(oat_obs::EventKind::ReqStart, self.node.0, 0, id);
        self.pending.insert(id, (TAG_REQ_WRITE, payload));
        Ok(id)
    }

    /// Submits a combine against forest tree `tree` without waiting;
    /// returns its request id. Tree 0 is the node's built-in tree —
    /// `submit_combine_tree(0)` and [`ClusterClient::submit_combine`]
    /// are answered identically.
    pub fn submit_combine_tree(&mut self, tree: u32) -> io::Result<u64> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(12);
        put_u64(&mut payload, id);
        put_u32(&mut payload, tree);
        write_frame(&mut self.wbuf, TAG_REQ_COMBINE_T, &payload)?;
        oat_obs::trace_event!(oat_obs::EventKind::ReqStart, self.node.0, 0, id);
        self.pending.insert(id, (TAG_REQ_COMBINE_T, payload));
        Ok(id)
    }

    /// Submits a write against forest tree `tree` without waiting;
    /// returns its request id. Forest writes (tree ≥ 1) are volatile —
    /// not WAL-logged — so a kill9 loses them; drive forest trees with
    /// absolute values a caller can re-write to heal (the query engine
    /// does exactly that).
    pub fn submit_write_tree(&mut self, tree: u32, arg: V) -> io::Result<u64> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(20);
        put_u64(&mut payload, id);
        put_u32(&mut payload, tree);
        arg.encode(&mut payload);
        write_frame(&mut self.wbuf, TAG_REQ_WRITE_T, &payload)?;
        oat_obs::trace_event!(oat_obs::EventKind::ReqStart, self.node.0, 0, id);
        self.pending.insert(id, (TAG_REQ_WRITE_T, payload));
        Ok(id)
    }

    /// Subscribes to pushed partial refinements of forest tree `tree`
    /// served at this node. Every refinement arrives as an unsolicited
    /// frame surfaced as [`Response::Partial`] paired with the returned
    /// sub id (from [`ClusterClient::next_response`] or
    /// [`ClusterClient::try_next_response`]). Registration is
    /// fire-and-forget (no ack frame); the node answers with an
    /// immediate priming partial carrying the tree's current value.
    /// Subscriptions are re-registered automatically when the retry
    /// policy replaces a dead connection.
    pub fn subscribe(&mut self, tree: u32) -> io::Result<u64> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(12);
        put_u64(&mut payload, id);
        put_u32(&mut payload, tree);
        write_frame(&mut self.wbuf, TAG_SUB, &payload)?;
        self.subs.push((id, tree));
        self.flush_retry()?;
        Ok(id)
    }

    /// Submits `ops` as one `REQ_BATCH` frame; returns the request ids
    /// in op order. The node answers with a single `RESP_BATCH` once
    /// every member resolves; [`ClusterClient::next_response`] unpacks
    /// it into individual `(id, response)` pairs. Each member is also
    /// tracked in the pending set as its standalone frame, so the
    /// timeout policy retries stragglers individually.
    pub fn submit_batch(&mut self, ops: &[ReqOp<V>]) -> io::Result<Vec<u64>> {
        let mut ids = Vec::with_capacity(ops.len());
        let mut items = Vec::with_capacity(ops.len());
        for op in ops {
            let id = self.fresh_id();
            let (tag, payload) = match op {
                ReqOp::Combine => {
                    let mut p = Vec::with_capacity(8);
                    put_u64(&mut p, id);
                    (TAG_REQ_COMBINE, p)
                }
                ReqOp::Write(arg) => {
                    let mut p = Vec::with_capacity(16);
                    put_u64(&mut p, id);
                    arg.encode(&mut p);
                    (TAG_REQ_WRITE, p)
                }
            };
            oat_obs::trace_event!(oat_obs::EventKind::ReqStart, self.node.0, 0, id);
            ids.push(id);
            items.push((tag, payload));
        }
        write_frame(&mut self.wbuf, TAG_REQ_BATCH, &encode_batch(&items))?;
        for (&id, (tag, payload)) in ids.iter().zip(items) {
            self.pending.insert(id, (tag, payload));
        }
        Ok(ids)
    }

    /// Pushes all buffered submissions to the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Like [`ClusterClient::flush`], but a dead connection is replaced
    /// (pending requests re-driven, subscriptions re-registered)
    /// instead of surfacing the disconnect. Only pending-tracked frames
    /// survive the swap, so callers submitting untracked frames should
    /// use [`ClusterClient::flush`] and handle the error themselves.
    pub fn flush_retry(&mut self) -> io::Result<()> {
        match self.flush() {
            Err(e) if Self::is_disconnect(&e) => self.reconnect(),
            other => other,
        }
    }

    /// True when `err` is a read-timeout (platform-dependent kind).
    fn is_timeout(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// Re-sends every unanswered request, in submission (= id) order.
    /// Batch members go out as individual frames here — the node
    /// strikes them from the batch roster on direct answer, keeping
    /// retries exactly-once (see the struct docs).
    fn resend_pending(&mut self) -> io::Result<()> {
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (tag, payload) = &self.pending[&id];
            write_frame(&mut self.wbuf, *tag, payload)?;
        }
        self.flush()
    }

    /// Blocks for the next combine/write response on this connection,
    /// whatever request it answers. Flushes buffered submissions first;
    /// applies the timeout/retry policy when armed.
    pub fn next_response(&mut self) -> io::Result<(u64, Response<V>)> {
        let mut retries = 0;
        if let Err(e) = self.flush() {
            if Self::is_disconnect(&e) && retries < self.max_retries {
                retries += 1;
                self.reconnect()?;
            } else {
                return Err(e);
            }
        }
        loop {
            // Responses unpacked from an earlier RESP_BATCH come first.
            let (tag, payload) = match self.queued.pop_front() {
                Some(frame) => frame,
                None => match self.read_frame_buffered() {
                    Ok(frame) => frame,
                    Err(e) if Self::is_timeout(&e) && retries < self.max_retries => {
                        retries += 1;
                        self.timeouts += 1;
                        self.resend_pending()?;
                        continue;
                    }
                    Err(e) if Self::is_disconnect(&e) && retries < self.max_retries => {
                        // The node's process died under us (kill9) or the
                        // connection was severed; its listener survives, so
                        // redial and re-drive everything unanswered.
                        retries += 1;
                        self.reconnect()?;
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            if let Some(resolved) = self.accept_frame(tag, &payload)? {
                return Ok(resolved);
            }
        }
    }

    /// Decodes one response frame. `Ok(None)` means the frame was
    /// consumed without surfacing anything: a batch unpacked into the
    /// queue, or a duplicate answer to a request already retried and
    /// resolved (the client discards unknown ids).
    fn accept_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<Option<(u64, Response<V>)>> {
        if tag == TAG_RESP_BATCH {
            self.queued.extend(decode_batch(payload)?);
            return Ok(None);
        }
        let mut r = WireReader::new(payload);
        let id = r
            .u64("response req id")
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        match tag {
            TAG_RESP_COMBINE => {
                let v = V::decode(&mut r)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                if self.pending.remove(&id).is_some() {
                    oat_obs::trace_event!(oat_obs::EventKind::ReqEnd, self.node.0, 0, id);
                    return Ok(Some((id, Response::Combine(v))));
                }
                // Duplicate answer to a request we already retried
                // and resolved: discard, keep reading.
                Ok(None)
            }
            TAG_RESP_WRITE => {
                if self.pending.remove(&id).is_some() {
                    oat_obs::trace_event!(oat_obs::EventKind::ReqEnd, self.node.0, 0, id);
                    return Ok(Some((id, Response::Write)));
                }
                Ok(None)
            }
            TAG_PARTIAL => {
                // An unsolicited pushed refinement; `id` is the sub id.
                let parsed = r.u32("partial tree id").and_then(|tree| {
                    let seq = r.u64("partial refine seq")?;
                    let value = V::decode(&mut r)?;
                    Ok((tree, seq, value))
                });
                let (tree, seq, value) = parsed
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                oat_obs::trace_event!(oat_obs::EventKind::PartialRx, tree, 0, seq);
                Ok(Some((id, Response::Partial { tree, seq, value })))
            }
            TAG_RESP_METRICS => {
                // A duplicate answer to a metrics() call that was
                // retried under timeout and already returned:
                // discard, keep reading.
                Ok(None)
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response tag {other}"),
            )),
        }
    }

    /// Waits up to `wait` for the next response (pushed partials
    /// included); `Ok(None)` when nothing arrived in time. Unlike
    /// [`ClusterClient::next_response`] this never blocks indefinitely,
    /// so a subscriber can interleave polling for partials with
    /// submitting work. A dead connection is replaced (with pending
    /// requests re-driven and subscriptions re-registered) and reported
    /// as `Ok(None)` for this round.
    pub fn try_next_response(&mut self, wait: Duration) -> io::Result<Option<(u64, Response<V>)>> {
        if let Some(parked) = self.parked_partials.pop_front() {
            return Ok(Some(parked));
        }
        if let Err(e) = self.flush() {
            if Self::is_disconnect(&e) {
                self.reconnect()?;
                return Ok(None);
            }
            return Err(e);
        }
        // Swap the bounded wait in for this read only (zero is not a
        // valid read timeout — clamp up to a millisecond).
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        let got = self.try_read_response();
        self.stream.set_read_timeout(self.timeout)?;
        got
    }

    fn try_read_response(&mut self) -> io::Result<Option<(u64, Response<V>)>> {
        loop {
            let (tag, payload) = match self.queued.pop_front() {
                Some(frame) => frame,
                None => match self.read_frame_buffered() {
                    Ok(frame) => frame,
                    Err(e) if Self::is_timeout(&e) => return Ok(None),
                    Err(e) if Self::is_disconnect(&e) => {
                        self.reconnect()?;
                        return Ok(None);
                    }
                    Err(e) => return Err(e),
                },
            };
            if let Some(resolved) = self.accept_frame(tag, &payload)? {
                return Ok(Some(resolved));
            }
        }
    }

    /// Runs the subsequence `indices` of `seq` through this connection
    /// with a sliding window of `depth` outstanding requests.
    fn run_window(
        &mut self,
        seq: &[Request<V>],
        indices: &[usize],
        depth: usize,
    ) -> io::Result<PerClientResults<V>>
    where
        V: Clone,
    {
        let mut combines = Vec::new();
        let mut latencies = Vec::with_capacity(indices.len());
        let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::with_capacity(depth);
        let mut next = indices.iter();
        loop {
            while in_flight.len() < depth {
                let Some(&i) = next.next() else { break };
                let started = Instant::now();
                let id = match &seq[i].op {
                    ReqOp::Combine => self.submit_combine()?,
                    ReqOp::Write(arg) => self.submit_write(arg.clone())?,
                };
                in_flight.insert(id, (i, started));
            }
            if in_flight.is_empty() {
                break;
            }
            let (id, resp) = self.next_response()?;
            // next_response only surfaces ids it still had pending, and
            // pending mirrors this window's in_flight — but stay
            // defensive and skip rather than die on a mismatch.
            let Some((i, started)) = in_flight.remove(&id) else {
                continue;
            };
            latencies.push((i, started.elapsed()));
            if let Response::Combine(v) = resp {
                combines.push((i, v));
            }
        }
        Ok(PerClientResults {
            combines,
            latencies,
        })
    }

    /// Runs the subsequence `indices` of `seq` through this connection
    /// in batches of `batch` requests per `REQ_BATCH` frame.
    fn run_batches(
        &mut self,
        seq: &[Request<V>],
        indices: &[usize],
        batch: usize,
    ) -> io::Result<PerClientResults<V>>
    where
        V: Clone,
    {
        let mut combines = Vec::new();
        let mut latencies = Vec::with_capacity(indices.len());
        for chunk in indices.chunks(batch) {
            let started = Instant::now();
            let ops: Vec<ReqOp<V>> = chunk.iter().map(|&i| seq[i].op.clone()).collect();
            let ids = self.submit_batch(&ops)?;
            self.flush()?;
            let mut want: HashMap<u64, usize> =
                ids.into_iter().zip(chunk.iter().copied()).collect();
            while !want.is_empty() {
                let (id, resp) = self.next_response()?;
                // next_response only surfaces pending ids, but stay
                // defensive like run_window: skip, don't die.
                let Some(i) = want.remove(&id) else {
                    continue;
                };
                latencies.push((i, started.elapsed()));
                if let Response::Combine(v) = resp {
                    combines.push((i, v));
                }
            }
        }
        Ok(PerClientResults {
            combines,
            latencies,
        })
    }

    /// Issues a combine at this node and blocks for the aggregate value
    /// (retrying under the armed timeout policy).
    pub fn combine(&mut self) -> io::Result<V> {
        let id = self.submit_combine()?;
        self.await_combine(id)
    }

    /// Issues a combine against forest tree `tree` and blocks for the
    /// aggregate value (retrying under the armed timeout policy).
    pub fn combine_tree(&mut self, tree: u32) -> io::Result<V> {
        let id = self.submit_combine_tree(tree)?;
        self.await_combine(id)
    }

    fn await_combine(&mut self, id: u64) -> io::Result<V> {
        loop {
            let (got, resp) = self.next_response()?;
            if let Response::Partial { .. } = resp {
                // A pushed refinement arriving mid-call: park it for
                // try_next_response, don't drop a subscription event.
                self.parked_partials.push_back((got, resp));
                continue;
            }
            if got != id {
                // An older pipelined submission resolving late; the
                // caller of this sync API gave up on pairing those.
                continue;
            }
            return match resp {
                Response::Combine(v) => Ok(v),
                _ => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "write ack for a combine request id",
                )),
            };
        }
    }

    /// Issues a write at this node and blocks until it has been applied
    /// (its transitions have run; resulting updates may still be in
    /// flight — use [`Cluster::quiesce`] for sequential semantics).
    /// Retries under the armed timeout policy; the node re-applies the
    /// same value, so retried writes are idempotent.
    pub fn write(&mut self, arg: V) -> io::Result<()> {
        let id = self.submit_write(arg)?;
        self.await_write(id)
    }

    /// Issues a write against forest tree `tree` and blocks until it
    /// has been applied (see [`ClusterClient::write`] for semantics,
    /// [`ClusterClient::submit_write_tree`] for durability caveats).
    pub fn write_tree(&mut self, tree: u32, arg: V) -> io::Result<()> {
        let id = self.submit_write_tree(tree, arg)?;
        self.await_write(id)
    }

    fn await_write(&mut self, id: u64) -> io::Result<()> {
        loop {
            let (got, resp) = self.next_response()?;
            if let Response::Partial { .. } = resp {
                self.parked_partials.push_back((got, resp));
                continue;
            }
            if got != id {
                continue;
            }
            return match resp {
                Response::Write => Ok(()),
                _ => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "combine value for a write request id",
                )),
            };
        }
    }

    /// Fetches this node's metrics snapshot.
    ///
    /// Call with no combine/write outstanding on this connection: a
    /// late response to an earlier retried request is discarded here.
    pub fn metrics(&mut self) -> io::Result<NodeMetrics> {
        let id = self.fresh_id();
        let mut payload = Vec::with_capacity(8);
        put_u64(&mut payload, id);
        write_frame(&mut self.wbuf, TAG_REQ_METRICS, &payload)?;
        self.flush()?;
        let mut retries = 0;
        loop {
            let (tag, body) = match self.read_frame_buffered() {
                Ok(frame) => frame,
                Err(e) if Self::is_timeout(&e) && retries < self.max_retries => {
                    retries += 1;
                    self.timeouts += 1;
                    write_frame(&mut self.wbuf, TAG_REQ_METRICS, &payload)?;
                    self.resend_pending()?;
                    continue;
                }
                Err(e) if Self::is_disconnect(&e) && retries < self.max_retries => {
                    retries += 1;
                    self.reconnect()?;
                    write_frame(&mut self.wbuf, TAG_REQ_METRICS, &payload)?;
                    self.flush()?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if tag == TAG_RESP_BATCH {
                // A pipelined batch resolving while we wait for metrics:
                // park its members for the caller's next_response loop.
                self.queued.extend(decode_batch(&body)?);
                continue;
            }
            let mut r = WireReader::new(&body);
            let got = r
                .u64("response req id")
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            match tag {
                TAG_RESP_METRICS if got == id => {
                    return NodeMetrics::decode(&body[8..])
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                // Stale duplicates of earlier retried requests.
                TAG_RESP_METRICS => {}
                TAG_RESP_COMBINE | TAG_RESP_WRITE => {
                    self.pending.remove(&got);
                }
                TAG_PARTIAL => {
                    // A pushed refinement while waiting for metrics:
                    // park it, exactly like the sync combine/write path.
                    if let Some(resolved) = self.accept_frame(tag, &body)? {
                        self.parked_partials.push_back(resolved);
                    }
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected response tag {other}"),
                    ))
                }
            }
        }
    }

    /// Fetches this node's metrics as JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        Ok(self.metrics()?.to_json())
    }
}
