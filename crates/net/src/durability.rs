//! Pluggable durability backends for a node's escrowed state.
//!
//! PR 3's crash recovery escrows the durable value and link watermarks
//! *in memory* inside `NodeRt` — enough to survive an automaton panic,
//! useless against a process kill. The [`Durability`] trait makes the
//! escrow a backend decision:
//!
//! * [`MemoryDurability`] — today's behavior and the default. Every hook
//!   is a no-op ([`Durability::active`] is `false`, so the runtime skips
//!   the calls entirely); simulator parity stays byte-for-byte.
//! * [`WalDurability`] — wraps an [`oat_wal::Wal`]: write acks, edge
//!   sequence watermarks, lease transitions, and epoch bumps are logged
//!   write-ahead, so both `crash_restart` and the *cold-start* path
//!   (process kill, `kill9`) can rebuild the node from disk.
//!
//! Backends are selected per cluster via `NetConfig::durability` and
//! constructed per node in `Cluster::spawn_with`.

use std::io;
use std::path::Path;
use std::sync::Arc;

use oat_core::fault::{FaultPlan, InjectedFaults};
use oat_core::tree::NodeId;
use oat_wal::{DiskFaults, Record, Wal, WalOptions};

pub use oat_wal::{LinkState, WalCounters, WalState};

/// The durability escrow contract. Hooks are infallible by design: a
/// node that halts on a full disk takes its whole subtree's aggregate
/// with it, so the WAL backend counts I/O errors and keeps serving
/// (availability over durability — see `WalCounters::io_errors`).
pub trait Durability: Send {
    /// False when every hook is a no-op; the runtime then skips the
    /// calls (and their argument encoding) entirely.
    fn active(&self) -> bool {
        false
    }

    /// Whether a process-grade kill (`kill9`) can be recovered from
    /// this backend. `Cluster::spawn_with` rejects kill9 schedules when
    /// any node's backend answers false.
    fn cold_start_capable(&self) -> bool {
        false
    }

    /// A client write was accepted; `val` is the wire encoding of the
    /// new durable value. Must be durable before the ack goes out.
    fn log_write(&mut self, _val: &[u8]) {}

    /// Sequence number `seq` was assigned to an edge frame toward
    /// `peer`. Logged before the frame can reach a socket.
    fn log_send(&mut self, _peer: u32, _seq: u64, _inner: u8, _body: &[u8]) {}

    /// Frames from `peer` were delivered through `rx_seq`.
    fn log_rx(&mut self, _peer: u32, _rx_seq: u64) {}

    /// `peer` acknowledged our frames through `acked`.
    fn log_ack(&mut self, _peer: u32, _acked: u64) {}

    /// The lease state toward `peer` changed; `bits` packs
    /// `(granted << 1) | taken`.
    fn log_lease(&mut self, _peer: u32, _bits: u8) {}

    /// The incarnation epoch advanced.
    fn log_epoch(&mut self, _epoch: u64) {}

    /// True when enough log has accumulated that the runtime should
    /// fold its state and call [`Durability::snapshot`].
    fn wants_snapshot(&self) -> bool {
        false
    }

    /// Persist a full state image and truncate the log.
    fn snapshot(&mut self, _state: &WalState) {}

    /// Replay durable state. `None` when nothing was durable (first
    /// boot) or the backend cannot recover.
    fn recover(&mut self) -> Option<WalState> {
        None
    }

    /// Monotone counters for metrics.
    fn counters(&self) -> WalCounters {
        WalCounters::default()
    }
}

/// The in-memory escrow: exactly PR 3's behavior. `NodeRt` keeps its
/// own `durable_val` field for `crash_restart`, so this backend stores
/// nothing at all.
#[derive(Debug, Default)]
pub struct MemoryDurability;

impl Durability for MemoryDurability {}

/// The write-ahead-log escrow. All hooks delegate to [`oat_wal::Wal`];
/// disk-fault events (torn tails, failed fsyncs) are mirrored into the
/// cluster's [`InjectedFaults`] ledger as they surface.
pub struct WalDurability {
    wal: Wal,
    ledger: Arc<InjectedFaults>,
    seen_torn: u64,
    seen_fsync_fails: u64,
}

impl WalDurability {
    /// Opens (creating if needed) the log for `node` under `dir`, with
    /// disk faults armed from `plan`.
    pub fn open(
        dir: &Path,
        node: NodeId,
        fsync_every: u64,
        snapshot_every: u64,
        plan: &FaultPlan,
        ledger: Arc<InjectedFaults>,
    ) -> io::Result<WalDurability> {
        let faults = (plan.torn_tail_max > 0 || plan.fsync_fail_p > 0.0).then(|| DiskFaults {
            seed: plan.disk_seed(node),
            torn_tail_max: plan.torn_tail_max,
            fsync_fail_p: plan.fsync_fail_p,
        });
        let wal = Wal::open(
            dir,
            WalOptions {
                node: node.0,
                fsync_every,
                snapshot_every,
                faults,
            },
        )?;
        Ok(WalDurability {
            wal,
            ledger,
            seen_torn: 0,
            seen_fsync_fails: 0,
        })
    }

    /// Mirrors newly-surfaced disk-fault events into the shared ledger.
    fn publish_faults(&mut self) {
        let c = self.wal.counters();
        if c.torn_events > self.seen_torn {
            self.ledger.torn_tails.fetch_add(
                c.torn_events - self.seen_torn,
                std::sync::atomic::Ordering::Relaxed,
            );
            self.seen_torn = c.torn_events;
        }
        if c.fsync_failures > self.seen_fsync_fails {
            self.ledger.fsync_fails.fetch_add(
                c.fsync_failures - self.seen_fsync_fails,
                std::sync::atomic::Ordering::Relaxed,
            );
            self.seen_fsync_fails = c.fsync_failures;
        }
    }
}

impl Durability for WalDurability {
    fn active(&self) -> bool {
        true
    }

    fn cold_start_capable(&self) -> bool {
        true
    }

    fn log_write(&mut self, val: &[u8]) {
        let _ = self.wal.append(&Record::Write { val: val.to_vec() });
        self.publish_faults();
    }

    fn log_send(&mut self, peer: u32, seq: u64, inner: u8, body: &[u8]) {
        let _ = self.wal.append(&Record::Send {
            peer,
            seq,
            inner,
            body: body.to_vec(),
        });
        self.publish_faults();
    }

    fn log_rx(&mut self, peer: u32, rx_seq: u64) {
        let _ = self.wal.append(&Record::Rx { peer, rx_seq });
        self.publish_faults();
    }

    fn log_ack(&mut self, peer: u32, acked: u64) {
        let _ = self.wal.append(&Record::Ack { peer, acked });
        self.publish_faults();
    }

    fn log_lease(&mut self, peer: u32, bits: u8) {
        let _ = self.wal.append(&Record::Lease { peer, bits });
        self.publish_faults();
    }

    fn log_epoch(&mut self, epoch: u64) {
        let _ = self.wal.append(&Record::Epoch { epoch });
        self.publish_faults();
    }

    fn wants_snapshot(&self) -> bool {
        self.wal.wants_snapshot()
    }

    fn snapshot(&mut self, state: &WalState) {
        let _ = self.wal.snapshot(state);
    }

    fn recover(&mut self) -> Option<WalState> {
        let rec = self.wal.recover().ok()?;
        self.publish_faults();
        rec.found.then_some(rec.state)
    }

    fn counters(&self) -> WalCounters {
        self.wal.counters()
    }
}
