//! Figure 4: the OPT × RWW product state machine.
//!
//! For one ordered pair of neighbours `(u, v)`, a state `S(x, y)` records
//! `x = F_OPT(u,v) ∈ {0, 1}` (does the offline algorithm hold the lease?)
//! and `y = F_RWW(u,v) ∈ {0, 1, 2}` (RWW's configuration: 0 = no lease,
//! 2 = fresh, 1 = one write absorbed; Lemma 4.4 ties `y > 0` to
//! `u.granted[v]`).
//!
//! On each event of `σ'(u,v)` (`R`, `W`, or `N`), RWW moves
//! deterministically (Figure 3) while OPT may take any legal Figure-2
//! transition — so the product machine is nondeterministic in the OPT
//! coordinate. [`enumerate_transitions`] generates the full transition
//! relation; the Figure-5 LP has one row per non-trivial transition.

use oat_core::request::EdgeEvent;
use oat_offline::cost_model::{edge_cost, RwwAutomaton};

/// A product state `S(opt, rww)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProductState {
    /// `F_OPT(u,v)`: whether OPT holds the lease.
    pub opt: bool,
    /// `F_RWW(u,v) ∈ {0, 1, 2}`.
    pub rww: u8,
}

impl ProductState {
    /// All six states in Figure-4 order: `(0,0) (0,1) (0,2) (1,0) (1,1)
    /// (1,2)`.
    pub fn all() -> [ProductState; 6] {
        let mut out = [ProductState { opt: false, rww: 0 }; 6];
        let mut i = 0;
        for opt in [false, true] {
            for rww in 0..3u8 {
                out[i] = ProductState { opt, rww };
                i += 1;
            }
        }
        out
    }

    /// Dense index `0..6` (column order of the potential vector).
    pub fn index(&self) -> usize {
        (self.opt as usize) * 3 + self.rww as usize
    }

    /// Display form `S(x,y)` as in the paper.
    pub fn label(&self) -> String {
        format!("S({},{})", self.opt as u8, self.rww)
    }
}

/// One transition of the product machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state.
    pub from: ProductState,
    /// Triggering event.
    pub event: EdgeEvent,
    /// Destination state.
    pub to: ProductState,
    /// RWW's Figure-2 cost on this event.
    pub rww_cost: u64,
    /// OPT's Figure-2 cost for its chosen move.
    pub opt_cost: u64,
}

impl Transition {
    /// True when the transition contributes nothing to the LP
    /// (`from == to` and both costs are zero: the inequality is `0 ≤ 0`).
    pub fn is_trivial(&self) -> bool {
        self.from == self.to && self.rww_cost == 0 && self.opt_cost == 0
    }
}

/// RWW's deterministic move on an event, as `(next_y, cost)`.
pub fn rww_step(y: u8, ev: EdgeEvent) -> (u8, u64) {
    let mut a = RwwAutomaton { f: y };
    let cost = a.step(ev);
    (a.f, cost)
}

/// Enumerates the full transition relation of the product machine,
/// deduplicated. RWW is deterministic; each OPT option yields one
/// transition.
pub fn enumerate_transitions() -> Vec<Transition> {
    let mut out = Vec::new();
    for from in ProductState::all() {
        for ev in [EdgeEvent::R, EdgeEvent::W, EdgeEvent::N] {
            let (ry, rcost) = rww_step(from.rww, ev);
            for opt_next in [false, true] {
                if let Some(ocost) = edge_cost(from.opt, ev, opt_next) {
                    let t = Transition {
                        from,
                        event: ev,
                        to: ProductState {
                            opt: opt_next,
                            rww: ry,
                        },
                        rww_cost: rcost,
                        opt_cost: ocost,
                    };
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::EdgeEvent::*;

    #[test]
    fn six_states_with_distinct_indices() {
        let states = ProductState::all();
        let mut seen = [false; 6];
        for s in states {
            assert!(!seen[s.index()]);
            seen[s.index()] = true;
        }
        assert_eq!(states[0].label(), "S(0,0)");
        assert_eq!(states[5].label(), "S(1,2)");
    }

    #[test]
    fn rww_moves_match_figure3() {
        assert_eq!(rww_step(0, R), (2, 2));
        assert_eq!(rww_step(0, W), (0, 0));
        assert_eq!(rww_step(0, N), (0, 0));
        assert_eq!(rww_step(1, R), (2, 0));
        assert_eq!(rww_step(1, W), (0, 2));
        assert_eq!(rww_step(1, N), (1, 0));
        assert_eq!(rww_step(2, R), (2, 0));
        assert_eq!(rww_step(2, W), (1, 1));
        assert_eq!(rww_step(2, N), (2, 0));
    }

    #[test]
    fn transition_count_and_structure() {
        let ts = enumerate_transitions();
        // 6 states × (R,W,N) with OPT options (opt=0: 2+1+1, opt=1:
        // 1+2+2) = 3·4 + 3·5 = 27 raw; a few coincide after dedup.
        assert!(ts.len() >= 21, "at least the paper's 21 rows: {}", ts.len());
        assert!(ts.len() <= 27);
        // Every transition is a legal Figure-2 row for OPT and follows
        // RWW determinism.
        for t in &ts {
            assert_eq!(
                oat_offline::cost_model::edge_cost(t.from.opt, t.event, t.to.opt),
                Some(t.opt_cost)
            );
            let (ry, rc) = rww_step(t.from.rww, t.event);
            assert_eq!((ry, rc), (t.to.rww, t.rww_cost));
        }
    }

    #[test]
    fn closure_every_state_reachable() {
        // From S(0,0) the machine reaches all six states.
        let ts = enumerate_transitions();
        let mut reach = [false; 6];
        reach[0] = true;
        for _ in 0..6 {
            for t in &ts {
                if reach[t.from.index()] {
                    reach[t.to.index()] = true;
                }
            }
        }
        assert!(reach.iter().all(|&r| r), "unreachable product states");
    }
}
